//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace points
//! `rayon` at this local implementation. It provides genuine data
//! parallelism (not a serial fake) on top of `std::thread::scope`, covering
//! the surface this workspace uses:
//!
//! * [`prelude`]: `par_iter().map(..).collect()`, `par_chunks_mut(..)` with
//!   `enumerate()` / `for_each(..)`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to bound parallelism
//!   for a region of code;
//! * [`current_num_threads`].
//!
//! Differences from upstream rayon: threads are spawned per parallel region
//! rather than pooled (regions in this workspace are coarse — one per batch
//! shard fan-out or per large kernel — so spawn cost is noise), and nested
//! parallel regions run serially instead of work-stealing, which also
//! prevents oversubscription when tensor kernels run inside an already
//! parallel training executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Per-thread parallelism override installed by [`ThreadPool::install`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside worker threads so nested parallel calls degrade to serial.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel regions started from this thread will use.
pub fn current_num_threads() -> usize {
    if IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    })
}

/// Runs `items` through `f` on up to [`current_num_threads`] worker threads.
///
/// Items are assigned round-robin; the function returns once every item has
/// been processed. Panics in workers propagate to the caller.
fn run_partitioned<I: Send, F: Fn(I) + Sync>(items: Vec<I>, f: &F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let mut buckets: Vec<Vec<I>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push(item);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                IN_PARALLEL.with(|flag| flag.set(true));
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

/// As [`run_partitioned`], but collects one output per item, in input order
/// regardless of which thread computed it (deterministic reassembly).
fn run_indexed_map<I: Send, R: Send, F: Fn(I) -> R + Sync>(items: Vec<I>, f: &F) -> Vec<R> {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut buckets: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let n: usize = buckets.iter().map(Vec::len).sum();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("rayon worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker skipped an item"))
        .collect()
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element; the result is consumed with [`ParMap::collect`]
    /// or [`ParMap::for_each`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// Mapped parallel iterator (see [`ParIter::map`]).
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed_map(self.slice.iter().collect(), &|t| (self.f)(t))
            .into_iter()
            .collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each<R>(self)
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let _: Vec<R> = self.collect();
    }
}

/// Parallel mutable chunks of a slice (see
/// [`prelude::ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunks: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk)
            .enumerate()
            .collect();
        run_partitioned(chunks, &f);
    }
}

/// The traits a `use rayon::prelude::*` import brings into scope.
pub mod prelude {
    use super::{ParChunksMut, ParIter};

    /// `par_iter` entry point for shared slices.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: Sync + 'a;

        /// A parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    /// `par_chunks_mut` entry point for mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over non-overlapping mutable chunks of length
        /// `chunk` (last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
            assert!(chunk > 0, "chunk size must be non-zero");
            ParChunksMut { slice: self, chunk }
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim;
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded-parallelism [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (`0` = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        });
        Ok(ThreadPool {
            num_threads: n.max(1),
        })
    }
}

/// A parallelism bound that can be `install`ed around a region of code.
///
/// Unlike upstream rayon this shim does not keep worker threads alive
/// between regions; `install` only scopes the thread-count used by parallel
/// calls made from the closure.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing parallel calls.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        struct Reset(Option<usize>);
        impl Drop for Reset {
            fn drop(&mut self) {
                OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _reset = Reset(prev);
        op()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_map_collect_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<usize> = pool.install(|| items.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 103];
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
        });
        assert!(data.iter().all(|&x| x >= 1));
        assert_eq!(data[0], 1);
        assert_eq!(data[100], 11, "chunk index reaches the tail");
    }

    #[test]
    fn parallel_region_uses_multiple_threads_when_allowed() {
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            items
                .par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .for_each()
        });
        // With 4 requested workers at least 2 distinct threads must appear
        // (the machine may have a single core, but scoped threads still get
        // distinct ids).
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn nested_parallelism_degrades_to_serial() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner_counts: Vec<usize> = pool.install(|| {
            vec![0usize; 4]
                .par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            inner_counts.iter().all(|&c| c == 1),
            "nested regions must be serial"
        );
    }

    #[test]
    fn install_restores_outer_thread_count() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        assert_eq!(current_num_threads(), outer);
    }
}

//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace points
//! `proptest` at this local implementation. It keeps the property-test
//! suites compiling and genuinely randomized: the [`proptest!`] macro runs
//! each property for `ProptestConfig::cases` deterministic pseudo-random
//! cases. Unlike upstream proptest there is **no shrinking** — a failing
//! case reports its case index and message and panics immediately.
//!
//! Supported surface: [`Strategy`] (with `prop_map` / `prop_flat_map`),
//! range strategies over the numeric primitives, tuple strategies,
//! `prop::collection::vec`, [`ProptestConfig::with_cases`],
//! [`prop_assert!`] and [`prop_assert_eq!`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Test-runner types referenced by the assertion macros.
pub mod test_runner {
    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start().to_owned()..=self.end().to_owned())
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// The `prop::` namespace (`prop::collection::vec` et al.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Acceptable size specifications for [`vec`].
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.start..self.end)
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec`s whose elements come from `element` and whose
        /// length comes from `size`.
        pub fn vec<S: Strategy>(
            element: S,
            size: impl IntoSizeRange,
        ) -> VecStrategy<S, impl Fn(&mut StdRng) -> usize> {
            VecStrategy {
                element,
                len: move |rng: &mut StdRng| size.sample_len(rng),
            }
        }

        /// Output of [`vec`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: Fn(&mut StdRng) -> usize> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = (self.len)(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Asserts a condition inside a property, failing the current case with a
/// formatted message (the enclosing block must return
/// `Result<_, TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
                )
                .into(),
            );
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-property stream: derived from the property
            // name so unrelated properties explore different cases.
            let seed = stringify!($name).bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
            let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("property {} failed on case {}/{}: {}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn dims() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..5, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.5f32..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_and_tuples((r, c) in (1usize..4, 1usize..4).prop_map(|t| t),
                               d in dims().prop_flat_map(|d| {
                                   let n = d.len();
                                   prop::collection::vec(0.0f32..1.0, n..=n)
                               })) {
            prop_assert!(r < 4 && c < 4);
            prop_assert!(!d.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn always_fails(x in 0usize..3) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}

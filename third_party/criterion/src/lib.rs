//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace points
//! `criterion` at this local implementation. Benchmarks compile and run:
//! each [`Bencher::iter`] call times `sample_size` batches with a short
//! warm-up and prints the median batch time. There is no statistical
//! analysis, outlier detection, or HTML reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export of `std::hint::black_box` for parity with upstream criterion.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_median_ns: 0.0,
        };
        f(&mut b);
        report(name, b.last_median_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group, parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            last_median_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.last_median_ns);
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering the parameter itself as the benchmark name.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    last_median_ns: f64,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, median_ns: f64) {
    let (value, unit) = if median_ns >= 1e9 {
        (median_ns / 1e9, "s")
    } else if median_ns >= 1e6 {
        (median_ns / 1e6, "ms")
    } else if median_ns >= 1e3 {
        (median_ns / 1e3, "µs")
    } else {
        (median_ns, "ns")
    };
    println!("{name:<40} median {value:>9.3} {unit}");
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the long form with a `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        for n in [10usize, 20] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n as u64).product::<u64>())
            });
        }
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_records_nonzero_time() {
        let mut b = Bencher {
            sample_size: 3,
            last_median_ns: 0.0,
        };
        b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        assert!(b.last_median_ns > 0.0);
    }
}

//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace points `rand` at this local implementation. It covers
//! exactly the surface the repo uses — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`] — with a deterministic xoshiro256**
//! generator. Streams differ from upstream `rand`'s `StdRng` (which is
//! explicitly *not* a stability guarantee of the real crate either); all
//! seeded behaviour in this workspace is self-consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleUniform` this workspace needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Successor, used to turn inclusive ranges into half-open ones.
    fn next_up(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo reduction: bias is < 2^-64 per draw for the spans
                // used in this workspace, far below f32 noise levels.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn next_up(self) -> Self {
                self.checked_add(1).expect("gen_range: inclusive range overflows")
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn next_up(self) -> Self {
                self
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.next_up())
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`]:
/// floats in `[0, 1)`, uniform integers, fair booleans.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
    ///
    /// Stands in for `rand::rngs::StdRng`; deterministic given the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (avoids all-zero and low-entropy states).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** word state, for checkpointing. Feeding the
        /// returned words back through [`StdRng::from_state_words`] yields a
        /// generator that continues the exact same stream.
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from [`StdRng::state_words`] output.
        ///
        /// Returns `None` for the all-zero state, which is not a valid
        /// xoshiro256** state (the generator would emit zeros forever).
        pub fn from_state_words(s: [u64; 4]) -> Option<Self> {
            if s == [0, 0, 0, 0] {
                None
            } else {
                Some(StdRng { s })
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions (subset: in-place Fisher–Yates shuffle, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let v = r.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
            seen_high |= v == 6;
            let w = r.gen_range(0..=1);
            assert!((0..=1).contains(&w));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_low && seen_high, "range endpoints never sampled");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn state_words_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state_words(a.state_words()).expect("valid state");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(StdRng::from_state_words([0; 4]).is_none());
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (1_800..3_200).contains(&hits),
            "p=0.25 produced {hits}/10000"
        );
    }
}

//! Production-style pipeline on a real interaction log: load a CSV, apply
//! the paper's preprocessing, train Meta-SGCL, checkpoint it, reload, and
//! serve top-k recommendations.
//!
//! For the real Amazon/MovieLens files, point `--` at your download; this
//! demo writes a small synthetic CSV first so it runs out of the box:
//!
//! ```sh
//! cargo run --release --example real_data_pipeline [-- path/to/interactions.csv]
//! ```

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{
    evaluate_test, recommend_top_k, NetConfig, SequentialRecommender, TrainConfig,
};
use meta_sgcl_repro::recdata::io::{load_interactions_csv, CsvOptions};
use meta_sgcl_repro::recdata::{synth, LeaveOneOut};
use std::io::Write;

fn main() {
    // 1. Obtain a CSV: user-supplied or generated on the spot.
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            let data = synth::generate(&synth::SynthConfig::toys_like(7));
            let path = std::env::temp_dir().join("msgc_demo_interactions.csv");
            let mut f = std::fs::File::create(&path).expect("create demo csv");
            for (u, seq) in data.sequences.iter().enumerate() {
                for (t, item) in seq.iter().enumerate() {
                    writeln!(f, "user{u},item{item},5,{t}").unwrap();
                }
            }
            println!("(no CSV given; wrote a demo log to {})", path.display());
            path.to_string_lossy().into_owned()
        }
    };

    // 2. Load with the paper's preprocessing: binarize ratings ≥ 4, sort
    //    chronologically, 5-core filter.
    let data = load_interactions_csv(&path, &CsvOptions::default()).expect("load csv");
    println!("loaded {}: {}", data.name, data.stats());

    // 3. Leave-one-out split + training.
    let split = LeaveOneOut::split(&data);
    let mut model = MetaSgcl::new(MetaSgclConfig {
        net: NetConfig::for_items(data.num_items),
        ..MetaSgclConfig::for_items(data.num_items)
    });
    model.fit(
        &split.train_sequences(),
        &TrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );

    // 4. Checkpoint round trip.
    let ckpt = std::env::temp_dir().join("msgc_demo_model.msgc");
    model.save(&ckpt).expect("save checkpoint");
    let mut served = MetaSgcl::new(MetaSgclConfig {
        net: NetConfig::for_items(data.num_items),
        ..MetaSgclConfig::for_items(data.num_items)
    });
    served.load(&ckpt).expect("load checkpoint");
    println!(
        "checkpoint round trip OK ({} bytes)",
        std::fs::metadata(&ckpt).unwrap().len()
    );

    // 5. Evaluate and serve.
    let report = evaluate_test(&mut served, &split, &[5, 10]);
    println!("test: {report}");
    let user = 0usize;
    let history = split.users[user].test_input();
    println!("top-5 for user {user} (excluding history):");
    for (rank, (item, score)) in recommend_top_k(&mut served, user, &history, 5, true)
        .iter()
        .enumerate()
    {
        println!("  {}. item {item} ({score:.4})", rank + 1);
    }
}

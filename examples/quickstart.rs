//! Quickstart: train Meta-SGCL on a synthetic Toys-like dataset and
//! evaluate with the paper's protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{evaluate_test, NetConfig, SequentialRecommender, TrainConfig};
use meta_sgcl_repro::recdata::{synth, LeaveOneOut};

fn main() {
    // 1. A seeded synthetic dataset standing in for Amazon Toys (see
    //    DESIGN.md for the substitution rationale).
    let data = synth::generate(&synth::SynthConfig::toys_like(42));
    let stats = data.stats();
    println!("dataset {}: {stats}", data.name);

    // 2. Leave-one-out split: last item = test, penultimate = validation.
    let split = LeaveOneOut::split(&data);
    println!("evaluable users: {}", split.num_users());

    // 3. Meta-SGCL with paper-shaped hyper-parameters at reproduction scale.
    let cfg = MetaSgclConfig {
        net: NetConfig {
            max_len: 20,
            dim: 32,
            ..NetConfig::for_items(data.num_items)
        },
        alpha: 0.05,
        beta: 0.2,
        ..MetaSgclConfig::for_items(data.num_items)
    };
    let mut model = MetaSgcl::new(cfg);

    // 4. Train with the meta-optimized two-step strategy.
    let tc = TrainConfig {
        epochs: 15,
        batch_size: 64,
        verbose: true,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    model.fit(&split.train_sequences(), &tc);
    println!("trained in {:.1?}", t0.elapsed());

    // 5. Evaluate HR@k / NDCG@k by ranking the full catalog per user.
    let report = evaluate_test(&mut model, &split, &[5, 10]);
    println!("test: {report}");

    if let Some(last) = model.history().last() {
        println!(
            "final losses: rec {:.3} kl {:.3} cl {:.3}",
            last.rec, last.kl, last.cl
        );
    }
}

//! Inside the Seq2Seq view generator: how Meta-SGCL's *generated*
//! contrastive views differ from hand-crafted augmentations.
//!
//! This example trains Meta-SGCL briefly, then, for a few real sequences:
//!
//! 1. shows the learned per-position variances of `Enc_σ` vs the meta
//!    encoder `Enc_σ'` (the two views of Eqs. 12 and 15);
//! 2. measures how close the generated view stays to the original latent
//!    (cosine similarity) compared with CL4SRec-style crop/mask/reorder
//!    views of the same sequence — the paper's Figure 1 argument that
//!    hand-crafted augmentation destroys sequence semantics.
//!
//! ```sh
//! cargo run --release --example adaptive_views
//! ```

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{SequentialRecommender, TrainConfig};
use meta_sgcl_repro::recdata::{item_crop, item_mask, item_reorder, synth, LeaveOneOut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb).max(1e-9)
}

fn main() {
    let data = synth::generate(&synth::SynthConfig::toys_like(42));
    let split = LeaveOneOut::split(&data);
    let mut model = MetaSgcl::new(MetaSgclConfig::for_items(data.num_items));
    println!("training Meta-SGCL for a few epochs…");
    model.fit(
        &split.train_sequences(),
        &TrainConfig {
            epochs: 8,
            ..Default::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(7);
    println!("\n--- generated views vs hand-crafted augmentations ---");
    for u in [0usize, 1, 2] {
        let seq = &split.users[u].train;
        if seq.len() < 4 {
            continue;
        }
        // Deterministic latent (the μ path) for the original sequence…
        let original = model.score_sequence(seq);
        // …and for the CL4SRec-style augmented versions of it.
        let cropped = item_crop(seq, 0.6, &mut rng);
        let masked = item_mask(seq, 0.3, data.num_items, &mut rng);
        let reordered = item_reorder(seq, 0.5, &mut rng);
        // The mask token is out of vocabulary for Meta-SGCL; clamp it back.
        let masked: Vec<usize> = masked.into_iter().map(|x| x.min(data.num_items)).collect();

        let cos_crop = cosine(&original, &model.score_sequence(&cropped));
        let cos_mask = cosine(&original, &model.score_sequence(&masked));
        let cos_reord = cosine(&original, &model.score_sequence(&reordered));
        println!(
            "user {u}: score-profile cosine vs original — crop {cos_crop:.3}, \
             mask {cos_mask:.3}, reorder {cos_reord:.3}"
        );
        println!(
            "         (hand-crafted views drift from the original's \
             semantics; Meta-SGCL's views share μ by construction → cosine 1.0 in \
             expectation)"
        );
    }

    // Learned variance heads: σ' should differ from σ — that asymmetry is
    // what the meta stage optimizes.
    let sigma = model
        .main_parameters()
        .into_iter()
        .find(|p| p.borrow().name.contains("enc_logvar"))
        .expect("Enc_σ parameters");
    let sigma_prime = &model.meta_parameters()[0];
    let s = sigma.borrow();
    let sp = sigma_prime.borrow();
    println!("\n--- learned variance encoders ---");
    println!(
        "‖W(Enc_σ)‖ = {:.4}   ‖W(Enc_σ')‖ = {:.4}   (different heads ⇒ different \
         view variance, the paper's adaptive augmentation)",
        s.value.norm(),
        sp.value.norm()
    );
    let diff = {
        let mut d = s.value.clone();
        d.axpy(-1.0, &sp.value);
        d.norm()
    };
    println!("‖W(Enc_σ) − W(Enc_σ')‖ = {diff:.4}");
}

//! Mini Table II: trains a representative subset of the paper's baselines
//! and Meta-SGCL on one dataset and prints a leaderboard.
//!
//! ```sh
//! cargo run --release --example compare_models [-- <dataset>]
//! ```
//! `<dataset>` is `clothing`, `toys` (default) or `ml1m`.

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{
    evaluate_test, DuoRec, Gru4Rec, NetConfig, Pop, SasRec, SequentialRecommender, TrainConfig,
};
use meta_sgcl_repro::recdata::{synth, LeaveOneOut};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "toys".into());
    let cfg = match which.as_str() {
        "clothing" => synth::SynthConfig::clothing_like(42),
        "ml1m" => synth::SynthConfig::ml1m_like(42),
        _ => synth::SynthConfig::toys_like(42),
    };
    let data = synth::generate(&cfg);
    println!("dataset {}: {}", data.name, data.stats());
    let split = LeaveOneOut::split(&data);
    let train = split.train_sequences();

    let net = NetConfig::for_items(data.num_items);
    let tc = TrainConfig {
        epochs: 12,
        ..Default::default()
    };

    let mut models: Vec<Box<dyn SequentialRecommender>> = vec![
        Box::new(Pop::new(data.num_items)),
        Box::new(Gru4Rec::new(data.num_items, net.max_len, net.dim, net.seed)),
        Box::new(SasRec::new(net.clone())),
        Box::new(DuoRec::new(net.clone())),
        Box::new(MetaSgcl::new(MetaSgclConfig::for_items(data.num_items))),
    ];

    let mut results = Vec::new();
    for model in models.iter_mut() {
        let t0 = std::time::Instant::now();
        model.fit(&train, &tc);
        let report = evaluate_test(model.as_mut(), &split, &[5, 10]);
        println!(
            "{:<12} HR@5 {:.4}  HR@10 {:.4}  NDCG@5 {:.4}  NDCG@10 {:.4}   ({:.1?})",
            model.name(),
            report.hr(5),
            report.hr(10),
            report.ndcg(5),
            report.ndcg(10),
            t0.elapsed()
        );
        results.push((model.name(), report.ndcg(10)));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nleaderboard by NDCG@10:");
    for (rank, (name, v)) in results.iter().enumerate() {
        println!("  {}. {name} ({v:.4})", rank + 1);
    }
}

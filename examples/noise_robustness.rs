//! RQ5 in miniature: how gracefully do SASRec and Meta-SGCL degrade when
//! random items are injected into the training sequences?
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{
    evaluate_test, NetConfig, SasRec, SequentialRecommender, TrainConfig,
};
use meta_sgcl_repro::recdata::{inject_noise, synth, LeaveOneOut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = synth::generate(&synth::SynthConfig::toys_like(42));
    let split = LeaveOneOut::split(&data);
    let clean = split.train_sequences();
    let tc = TrainConfig {
        epochs: 10,
        ..Default::default()
    };

    println!("noise  SASRec-NDCG@10  Meta-SGCL-NDCG@10");
    for ratio in [0.0f64, 0.2, 0.4] {
        let mut rng = StdRng::seed_from_u64(42 + (ratio * 10.0) as u64);
        let noisy = inject_noise(&clean, ratio, data.num_items, &mut rng);

        let mut sasrec = SasRec::new(NetConfig::for_items(data.num_items));
        sasrec.fit(&noisy, &tc);
        let rs = evaluate_test(&mut sasrec, &split, &[10]);

        let mut meta = MetaSgcl::new(MetaSgclConfig::for_items(data.num_items));
        meta.fit(&noisy, &tc);
        let rm = evaluate_test(&mut meta, &split, &[10]);

        println!(
            "{:>4.0}%        {:.4}             {:.4}",
            ratio * 100.0,
            rs.ndcg(10),
            rm.ndcg(10)
        );
    }
    println!(
        "\npaper's finding: the self-supervised auxiliary task makes the model \
         degrade more gracefully under training noise (Fig. 5)."
    );
}

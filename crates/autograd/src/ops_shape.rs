//! Shape-manipulation ops for [`Var`]: reshape, transpose, permute, concat,
//! slice, and row gathering (embedding lookup).

use tensor::bug::OrBug;
use tensor::{ops, Tensor};

use crate::graph::Var;
use crate::meta::ShapeSig;

impl Var {
    /// Reshape to a new shape of equal element count.
    pub fn reshape(&self, dims: impl Into<Vec<usize>>) -> Var {
        let dims = dims.into();
        let in_dims = self.dims();
        let value = self
            .with_value(|a| a.reshape(dims.clone()))
            .or_bug("reshape");
        let aid = self.id;
        self.unary(
            "reshape",
            ShapeSig::Reshape(dims.clone()),
            value,
            move |g, sink| {
                sink(aid, g.reshape(in_dims.clone()).or_bug("reshape-back"));
            },
        )
    }

    /// Swaps the last two axes.
    pub fn transpose_last2(&self) -> Var {
        let value = self.with_value(ops::transpose_last2).or_bug("transpose");
        let aid = self.id;
        self.unary(
            "transpose_last2",
            ShapeSig::TransposeLast2,
            value,
            move |g, sink| {
                sink(aid, ops::transpose_last2(g).or_bug("transpose-back"));
            },
        )
    }

    /// Reorders axes by `perm`.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let value = self.with_value(|a| ops::permute(a, perm)).or_bug("permute");
        let aid = self.id;
        // Inverse permutation: inv[perm[i]] = i.
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        self.unary(
            "permute",
            ShapeSig::Permute(perm.to_vec()),
            value,
            move |g, sink| {
                sink(aid, ops::permute(g, &inv).or_bug("permute-back"));
            },
        )
    }

    /// Concatenates vars along `axis`.
    pub fn concat(parts: &[&Var], axis: usize) -> Var {
        assert!(!parts.is_empty());
        let values: Vec<Tensor> = parts.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = ops::concat(&refs, axis).or_bug("concat");
        let ids: Vec<usize> = parts.iter().map(|v| v.id).collect();
        let sizes: Vec<usize> = values.iter().map(|t| t.dim(axis)).collect();
        let first = parts[0];
        let requires = parts.iter().any(|p| p.requires_grad());
        for p in &parts[1..] {
            assert!(
                std::rc::Rc::ptr_eq(&first.graph.inner, &p.graph.inner),
                "vars belong to different graphs"
            );
        }
        let inputs = ids.clone();
        first.graph.push(crate::graph::Node {
            value,
            requires_grad: requires,
            backward: if requires {
                Some(
                    Box::new(move |g: &Tensor, sink: &mut crate::graph::GradSink| {
                        let mut start = 0usize;
                        for (pid, &len) in ids.iter().zip(sizes.iter()) {
                            let part =
                                ops::slice_axis(g, axis, start, start + len).or_bug("concat-back");
                            sink(*pid, part);
                            start += len;
                        }
                    }) as crate::graph::BackFn,
                )
            } else {
                None
            },
            param: None,
            op: "concat",
            sig: ShapeSig::Concat { axis },
            inputs,
        })
    }

    /// Slices `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Var {
        let in_dims = self.dims();
        let value = self
            .with_value(|a| ops::slice_axis(a, axis, start, end))
            .or_bug("slice_axis");
        let aid = self.id;
        self.unary(
            "slice_axis",
            ShapeSig::SliceAxis { axis, start, end },
            value,
            move |g, sink| {
                // Embed the slice gradient into a zero tensor of the input shape.
                let mut full = Tensor::zeros(in_dims.clone());
                let outer: usize = in_dims[..axis].iter().product();
                let inner: usize = in_dims[axis + 1..].iter().product();
                let axis_dim = in_dims[axis];
                let len = end - start;
                let gd = g.data();
                let fd = full.data_mut();
                for o in 0..outer {
                    let src = o * len * inner;
                    let dst = (o * axis_dim + start) * inner;
                    fd[dst..dst + len * inner].copy_from_slice(&gd[src..src + len * inner]);
                }
                sink(aid, full);
            },
        )
    }

    /// Gathers rows of a rank-2 var: `out[i] = self[indices[i]]`.
    ///
    /// This is the embedding-lookup primitive; its adjoint scatter-adds the
    /// upstream gradient into the selected rows.
    pub fn index_select_rows(&self, indices: &[usize]) -> Var {
        let in_dims = self.dims();
        let value = self
            .with_value(|a| ops::index_select_rows(a, indices))
            .or_bug("index_select_rows");
        let aid = self.id;
        let indices = indices.to_vec();
        self.unary(
            "index_select_rows",
            ShapeSig::GatherRows {
                count: indices.len(),
            },
            value,
            move |g, sink| {
                let mut full = Tensor::zeros(in_dims.clone());
                ops::scatter_add_rows(&mut full, &indices, g);
                sink(aid, full);
            },
        )
    }
}

//! Reverse-mode automatic differentiation over [`tensor::Tensor`].
//!
//! The engine is a classic define-by-run tape: every operation appends a node
//! to a [`Graph`] arena and returns a lightweight [`Var`] handle. Calling
//! [`Var::backward`] walks the tape in reverse, accumulating gradients, and
//! finally deposits leaf gradients into their [`Parameter`]s.
//!
//! Design choices (documented for contributors):
//!
//! * **Graphs are per-step and thread-local.** A fresh `Graph` is created for
//!   every training step (or shard) and dropped afterwards; tapes are never
//!   shared across threads. Parameters live *outside* the graph in
//!   thread-safe [`ParamRef`] cells (`Arc<RwLock<Parameter>>`) so optimizers
//!   can see accumulated gradients across steps and worker threads can run
//!   forward/backward on shards concurrently.
//! * **Data-parallel gradients go through [`GradientSet`].** Workers call
//!   [`Graph::backward_collect`] to gather shard gradients locally; the
//!   coordinator merges the sets in fixed shard order (deterministic
//!   regardless of thread count) and deposits them once.
//! * **This makes the paper's meta-optimized two-step schedule trivial**: in
//!   stage 2 the same forward computation is rebuilt with the frozen modules'
//!   parameters entered as *constants* ([`Graph::constant`]) and only the
//!   meta encoder `Enc_σ'` entered as trainable leaves.
//! * **Backward closures capture cloned inputs.** Each op stores a boxed
//!   closure holding clones of whatever it needs for its adjoint. This costs
//!   memory proportional to the graph but removes all borrow gymnastics.
//! * Shape errors during graph construction are programming errors and panic.
//!
//! ```
//! use autograd::{Graph, Parameter};
//! use tensor::Tensor;
//!
//! let w = Parameter::shared("w", Tensor::from_vec(vec![2.0, 3.0], vec![2, 1]));
//! let g = Graph::new();
//! let x = g.constant(Tensor::from_vec(vec![1.0, 4.0], vec![1, 2]));
//! let out = x.matmul(&g.param(&w)).sum_all();
//! out.backward();
//! assert_eq!(w.borrow().grad.data(), &[1.0, 4.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod graph;
pub mod meta;
pub mod numeric;
mod ops_basic;
mod ops_matmul;
mod ops_reduce;
mod ops_shape;

pub use accum::GradientSet;
pub use graph::{Graph, ParamRef, Parameter, Var};
pub use meta::{capture_bytes, NodeInfo, ParamInfo, ShapeSig};
pub use ops_reduce::IGNORE_INDEX;

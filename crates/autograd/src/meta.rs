//! Op metadata for static analysis of recorded tapes.
//!
//! Every op pushed onto a [`Graph`] records, next to its value and adjoint,
//! a declarative [`ShapeSig`] plus the tape ids of its inputs. A recorded
//! tape can then be exported with [`Graph::snapshot`] as a list of
//! [`NodeInfo`]s — a pure-data view with no closures — and analysed without
//! re-executing the forward pass:
//!
//! * the *shape-inference pass* re-derives every node's output shape from
//!   its inputs' shapes via [`ShapeSig::infer`] (backed by the shared
//!   [`tensor::rules`] module) and compares against what the kernel actually
//!   produced;
//! * the *gradient-flow pass* walks the `inputs` edges in reverse from a
//!   loss head, mirroring the traversal of the backward pass, to classify
//!   parameters as reached / frozen / dead.

use tensor::{Result, TensorError};

use crate::graph::{Graph, Var};

/// Declarative shape signature of a tape op: how its output shape is
/// derived from its input shapes.
///
/// Signatures carry only *static* op attributes (axes, target dims,
/// constant shapes) — never data — so shape inference needs no tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeSig {
    /// A leaf (constant or parameter): its shape is given, not derived.
    Leaf,
    /// Output shape equals the (sole) input's shape.
    Elementwise,
    /// NumPy-style broadcast of the two inputs.
    Broadcast,
    /// Broadcast of the sole input with a constant of the recorded dims
    /// (`add_const` / `mul_const` — the constant is not a tape node).
    BroadcastWith(Vec<usize>),
    /// Matrix product; see [`tensor::rules::matmul`] for supported ranks.
    Matmul,
    /// Fused `A·Bᵀ`; see [`tensor::rules::matmul_transb`] for supported
    /// ranks.
    MatmulTransB,
    /// Fused `Aᵀ·B`; see [`tensor::rules::matmul_transa`] for supported
    /// ranks.
    MatmulTransA,
    /// Scalar (rank-0) output regardless of input shape.
    Scalar,
    /// Reduction along one axis.
    Reduce {
        /// The reduced axis.
        axis: usize,
        /// Whether the reduced axis is kept with size 1.
        keepdim: bool,
    },
    /// Reshape to the recorded dims (element count must match).
    Reshape(Vec<usize>),
    /// Swap of the last two axes.
    TransposeLast2,
    /// Axis reordering by the recorded permutation.
    Permute(Vec<usize>),
    /// Concatenation of all inputs along an axis.
    Concat {
        /// The concatenation axis.
        axis: usize,
    },
    /// Slice `[start, end)` along an axis.
    SliceAxis {
        /// The sliced axis.
        axis: usize,
        /// Start of the slice (inclusive).
        start: usize,
        /// End of the slice (exclusive).
        end: usize,
    },
    /// Row gather from a rank-2 table, selecting `count` rows.
    GatherRows {
        /// Number of selected rows.
        count: usize,
    },
}

impl ShapeSig {
    /// Infers the output shape from the input shapes.
    ///
    /// Returns `Ok(None)` for [`ShapeSig::Leaf`] (a leaf's shape is an
    /// input to inference, not a result of it). Errors are the same
    /// structured [`TensorError`]s the runtime kernels produce for the
    /// corresponding invalid shapes.
    pub fn infer(&self, inputs: &[&[usize]]) -> Result<Option<Vec<usize>>> {
        use tensor::rules;
        let sole = |op: &'static str| -> Result<&[usize]> {
            inputs.first().copied().ok_or(TensorError::ShapeMismatch {
                op,
                lhs: Vec::new(),
                rhs: Vec::new(),
            })
        };
        let pair = |op: &'static str| -> Result<(&[usize], &[usize])> {
            match inputs {
                [a, b] => Ok((a, b)),
                _ => Err(TensorError::ShapeMismatch {
                    op,
                    lhs: inputs.first().map(|d| d.to_vec()).unwrap_or_default(),
                    rhs: Vec::new(),
                }),
            }
        };
        match self {
            ShapeSig::Leaf => Ok(None),
            ShapeSig::Elementwise => Ok(Some(sole("elementwise")?.to_vec())),
            ShapeSig::Broadcast => {
                let (a, b) = pair("broadcast")?;
                rules::broadcast("broadcast", a, b).map(Some)
            }
            ShapeSig::BroadcastWith(c) => {
                rules::broadcast("broadcast_const", sole("broadcast_const")?, c).map(Some)
            }
            ShapeSig::Matmul => {
                let (a, b) = pair("matmul")?;
                rules::matmul(a, b).map(Some)
            }
            ShapeSig::MatmulTransB => {
                let (a, b) = pair("matmul_transb")?;
                rules::matmul_transb(a, b).map(Some)
            }
            ShapeSig::MatmulTransA => {
                let (a, b) = pair("matmul_transa")?;
                rules::matmul_transa(a, b).map(Some)
            }
            ShapeSig::Scalar => Ok(Some(Vec::new())),
            ShapeSig::Reduce { axis, keepdim } => {
                rules::reduce_axis(sole("reduce")?, *axis, *keepdim).map(Some)
            }
            ShapeSig::Reshape(dims) => rules::reshape(sole("reshape")?, dims).map(Some),
            ShapeSig::TransposeLast2 => rules::transpose_last2(sole("transpose_last2")?).map(Some),
            ShapeSig::Permute(perm) => rules::permute(sole("permute")?, perm).map(Some),
            ShapeSig::Concat { axis } => rules::concat(inputs, *axis).map(Some),
            ShapeSig::SliceAxis { axis, start, end } => {
                rules::slice_axis(sole("slice_axis")?, *axis, *start, *end).map(Some)
            }
            ShapeSig::GatherRows { count } => {
                rules::gather_rows(sole("gather_rows")?, *count).map(Some)
            }
        }
    }
}

impl ShapeSig {
    /// Estimated floating-point operations to produce `out` from `inputs`
    /// (a fused multiply-add counts as 2 FLOPs, the HPC convention).
    ///
    /// The estimate is *signature-driven*: matmul families charge
    /// `2·(output elements)·k`, reductions and scalar heads charge one op
    /// per reduced input element, elementwise/broadcast ops charge one op
    /// per output element, and pure data movement (reshape, permute,
    /// slice, concat, gather) charges zero — copies move bytes, covered by
    /// [`ShapeSig::out_bytes`], not arithmetic.
    pub fn flops(&self, inputs: &[&[usize]], out: &[usize]) -> u64 {
        let numel = |d: &[usize]| d.iter().product::<usize>() as u64;
        let in_numel = |i: usize| inputs.get(i).map_or(0, |d| numel(d));
        match self {
            ShapeSig::Leaf => 0,
            ShapeSig::Elementwise | ShapeSig::Broadcast | ShapeSig::BroadcastWith(_) => numel(out),
            // k is the contracted dimension: the last axis of A for NN/NT
            // layouts, the first axis of A for the TN layout.
            ShapeSig::Matmul | ShapeSig::MatmulTransB => {
                let k = inputs.first().and_then(|a| a.last()).copied().unwrap_or(0) as u64;
                2 * numel(out) * k
            }
            ShapeSig::MatmulTransA => {
                let k = inputs.first().and_then(|a| a.first()).copied().unwrap_or(0) as u64;
                2 * numel(out) * k
            }
            // Global/axis reductions and the fused loss heads touch every
            // input element once.
            ShapeSig::Scalar | ShapeSig::Reduce { .. } => in_numel(0),
            ShapeSig::Reshape(_)
            | ShapeSig::TransposeLast2
            | ShapeSig::Permute(_)
            | ShapeSig::Concat { .. }
            | ShapeSig::SliceAxis { .. }
            | ShapeSig::GatherRows { .. } => 0,
        }
    }

    /// Bytes of the output buffer a kernel with this signature allocates
    /// for the recorded output shape (`f32` storage).
    pub fn out_bytes(out: &[usize]) -> u64 {
        out.iter().product::<usize>() as u64 * std::mem::size_of::<f32>() as u64
    }
}

/// Bytes a node's backward closure *retains* for the lifetime of the tape
/// (beyond the output buffer itself): the tensor clones each `Var` op
/// moves into its adjoint closure. `None` means the op has no declared
/// capture model — the cost pass refuses to price such a tape.
///
/// This table is contractual with the closures in the `ops_*` modules:
/// change what an op captures and this entry must change with it (the
/// `peak_alloc` counting-allocator test pins the sum against reality).
/// Captures only exist when the node requires grad — recording drops the
/// closure (and its captures) otherwise.
pub fn capture_bytes(op: &str, sig: &ShapeSig, inputs: &[&[usize]], out: &[usize]) -> Option<u64> {
    let bytes = |d: &[usize]| ShapeSig::out_bytes(d);
    let in0 = inputs.first().map_or(0, |d| bytes(d));
    let in1 = inputs.get(1).map_or(0, |d| bytes(d));
    Some(match op {
        // Leaves, gradient markers, pass-through adjoints, data movement,
        // and plain sums capture shapes only (usize vectors, not priced).
        "constant" | "param" | "detach" | "add" | "sub" | "scale" | "add_scalar" | "add_const"
        | "reshape" | "transpose_last2" | "permute" | "concat" | "slice_axis"
        | "index_select_rows" | "sum_all" | "mean_all" | "sum_axis" => 0,
        // Product rules keep both operand values.
        "mul" | "matmul" | "matmul_transb" | "matmul_transa" => in0 + in1,
        // The quotient rule keeps both operands plus the output.
        "div" => in0 + in1 + bytes(out),
        // Output-form derivatives keep a clone of the output.
        "exp" | "sqrt" | "tanh" | "sigmoid" | "softmax_last" | "log_softmax_last" => bytes(out),
        // Input-form derivatives keep a clone of the input; the fused
        // cross-entropy keeps the softmax probabilities (input-shaped).
        "log" | "square" | "relu" | "gelu" | "clamp" | "cross_entropy" => in0,
        // The masked product keeps its constant operand (shape in the sig).
        "mul_const" => match sig {
            ShapeSig::BroadcastWith(c) => bytes(c),
            _ => return None,
        },
        _ => return None,
    })
}

/// Identity of a parameter leaf in a [`NodeInfo`].
#[derive(Debug, Clone)]
pub struct ParamInfo {
    /// The parameter's human-readable name.
    pub name: String,
    /// Stable identity key ([`crate::ParamRef::key`]) for cross-referencing
    /// with a model's parameter list.
    pub key: usize,
    /// Whether the parameter was entered as trainable (`requires_grad`)
    /// when this tape was recorded.
    pub trainable: bool,
}

/// A closure-free view of one tape node, exported by [`Graph::snapshot`].
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Tape id (position on the tape; inputs always have smaller ids).
    pub id: usize,
    /// Op name, e.g. `"matmul"` — the provenance label in diagnostics.
    pub op: &'static str,
    /// Declarative shape signature.
    pub sig: ShapeSig,
    /// Tape ids of the op's inputs (empty for leaves).
    pub inputs: Vec<usize>,
    /// The shape the kernel actually produced at record time.
    pub dims: Vec<usize>,
    /// Whether gradients flow through this node.
    pub requires_grad: bool,
    /// Set when this node is a parameter leaf (trainable *or* frozen).
    pub param: Option<ParamInfo>,
}

impl Graph {
    /// Exports the tape as pure data for static analysis.
    ///
    /// The returned list is topologically ordered (a node's inputs precede
    /// it) and contains no closures or tensor payloads beyond the recorded
    /// output shapes, so it can be moved across threads and inspected long
    /// after the graph itself is dropped.
    pub fn snapshot(&self) -> Vec<NodeInfo> {
        let inner = self.inner.borrow();
        inner
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| NodeInfo {
                id,
                op: n.op,
                sig: n.sig.clone(),
                inputs: n.inputs.clone(),
                dims: n.value.dims().to_vec(),
                requires_grad: n.requires_grad,
                param: n.param.as_ref().map(|p| {
                    let pb = p.borrow();
                    ParamInfo {
                        name: pb.name.clone(),
                        key: p.key(),
                        trainable: pb.trainable,
                    }
                }),
            })
            .collect()
    }

    /// The tape's *compute* op names in recording order: every non-leaf
    /// node's `op`, with `constant`/`param` leaves elided (they read
    /// inputs into the graph, they don't compute).
    ///
    /// This is the autograd side of the frozen-parity contract: a
    /// `Frozen*` module declares the op sequence its twin's forward must
    /// record, and the static parity pass diffs that declaration against
    /// this trace.
    pub fn op_trace(&self) -> Vec<&'static str> {
        let inner = self.inner.borrow();
        inner
            .nodes
            .iter()
            .filter(|n| !matches!(n.sig, ShapeSig::Leaf))
            .map(|n| n.op)
            .collect()
    }
}

impl Var {
    /// The tape id of this var's node, for cross-referencing with
    /// [`Graph::snapshot`] output (e.g. naming a loss head).
    pub fn node_id(&self) -> usize {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Parameter;
    use tensor::Tensor;

    #[test]
    fn snapshot_records_ops_inputs_and_shapes() {
        let p = Parameter::shared("w", Tensor::ones(vec![3, 2]));
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![4, 3]));
        let w = g.param(&p);
        let y = x.matmul(&w);
        let loss = y.sum_all();

        let snap = g.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].op, "constant");
        assert_eq!(snap[1].op, "param");
        assert_eq!(snap[1].param.as_ref().map(|p| p.name.as_str()), Some("w"));
        assert_eq!(snap[2].op, "matmul");
        assert_eq!(snap[2].inputs, vec![x.node_id(), w.node_id()]);
        assert_eq!(snap[2].dims, vec![4, 2]);
        assert_eq!(snap[3].op, "sum_all");
        assert_eq!(snap[3].inputs, vec![y.node_id()]);
        assert_eq!(loss.node_id(), 3);
    }

    #[test]
    fn frozen_param_still_carries_provenance() {
        let p = Parameter::shared("frozen", Tensor::ones(vec![2]));
        p.borrow_mut().trainable = false;
        let g = Graph::new();
        let v = g.param(&p);
        assert!(!v.requires_grad());
        let snap = g.snapshot();
        let info = snap[0].param.as_ref().expect("param provenance recorded");
        assert_eq!(info.name, "frozen");
        assert!(!info.trainable);
        assert_eq!(info.key, p.key());
    }

    #[test]
    fn inference_matches_recorded_shapes() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3, 4]));
        let b = g.constant(Tensor::ones(vec![4, 5]));
        let c = a.matmul(&b).relu().sum_axis(1, false);
        let _ = c.reshape(vec![10]).mean_all();

        for info in g.snapshot() {
            let snap = g.snapshot();
            let in_dims: Vec<&[usize]> = info
                .inputs
                .iter()
                .map(|&i| snap[i].dims.as_slice())
                .collect();
            if let Some(inferred) = info.sig.infer(&in_dims).expect("rule applies") {
                assert_eq!(inferred, info.dims, "op {}", info.op);
            }
        }
    }

    #[test]
    fn detach_records_edge_but_blocks_grad() {
        let p = Parameter::shared("p", Tensor::scalar(1.0));
        let g = Graph::new();
        let v = g.param(&p).detach();
        let snap = g.snapshot();
        assert_eq!(snap[v.node_id()].op, "detach");
        assert_eq!(snap[v.node_id()].inputs, vec![0]);
        assert!(!snap[v.node_id()].requires_grad);
    }
}

//! Local gradient accumulation for data-parallel training.
//!
//! A [`GradientSet`] holds `(parameter, gradient)` pairs collected by
//! [`Graph::backward_collect`](crate::Graph::backward_collect) without
//! touching the shared [`Parameter::grad`](crate::Parameter) buffers. Worker
//! threads each produce one set per shard; the coordinator merges them with
//! [`GradientSet::merge_scaled`] **in fixed shard order** and deposits the
//! result once via [`GradientSet::apply`]. Because floating-point addition is
//! not associative, this fixed-order reduction is what makes training with
//! `threads = 1` and `threads = N` produce bitwise-identical updates: thread
//! count affects only which worker computes each shard, never the order in
//! which shard gradients are combined.

use std::collections::HashMap;

use tensor::Tensor;

use crate::graph::ParamRef;

/// An ordered collection of per-parameter gradients.
///
/// Entries keep their first-touch order (reverse-tape order within a shard,
/// merge order across shards), so every reduction over a `GradientSet` is
/// deterministic. The set is `Send`: it owns tensors and thread-safe
/// parameter handles only, so workers can build sets on worker threads and
/// move them back to the coordinator.
#[derive(Default)]
pub struct GradientSet {
    entries: Vec<(ParamRef, Tensor)>,
    /// Identity key ([`ParamRef::key`]) → index into `entries`.
    index: HashMap<usize, usize>,
}

impl GradientSet {
    /// Creates an empty set.
    pub fn new() -> GradientSet {
        GradientSet::default()
    }

    /// Number of parameters with a gradient in this set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no gradients have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `weight * grad` to the entry for `param`, creating it if absent.
    pub fn accumulate(&mut self, param: &ParamRef, grad: &Tensor, weight: f32) {
        match self.index.get(&param.key()) {
            Some(&i) => self.entries[i].1.axpy(weight, grad),
            None => {
                // Pooled storage: zeroed on take, so bitwise identical to a
                // fresh allocation (see `tensor::pool`).
                let mut g = Tensor::pooled_zeros(grad.dims().to_vec());
                g.axpy(weight, grad);
                self.index.insert(param.key(), self.entries.len());
                self.entries.push((param.clone(), g));
            }
        }
    }

    /// Merges `other` into `self`, scaling every gradient by `weight`.
    ///
    /// Shard reduction: the coordinator calls this once per shard, in shard
    /// order, with `weight = shard_len / batch_len`. The weights sum to one
    /// across shards, so the merged set is the *mean* gradient over the batch
    /// and downstream consumers (optimizer, clipping) are agnostic to how
    /// many shards produced it.
    pub fn merge_scaled(&mut self, other: &GradientSet, weight: f32) {
        for (p, g) in &other.entries {
            self.accumulate(p, g, weight);
        }
    }

    /// Gradient for `param`, if one was accumulated.
    pub fn get(&self, param: &ParamRef) -> Option<&Tensor> {
        self.index.get(&param.key()).map(|&i| &self.entries[i].1)
    }

    /// Iterates `(parameter, gradient)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&ParamRef, &Tensor)> {
        self.entries.iter().map(|(p, g)| (p, g))
    }

    /// Deposits every gradient into its parameter's shared `grad` buffer
    /// (adding to whatever is already accumulated there).
    pub fn apply(&self) {
        for (p, g) in &self.entries {
            p.borrow_mut().grad.add_assign(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Parameter};

    fn assert_send<T: Send>() {}

    #[test]
    fn gradient_set_is_send() {
        assert_send::<GradientSet>();
    }

    #[test]
    fn collect_matches_direct_backward() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![1.0, 2.0], vec![2]));
        let g = Graph::new();
        let loss = g.param(&p).mul(&g.param(&p)).sum_all();
        let set = g.backward_collect(&loss);
        assert_eq!(
            p.borrow().grad.data(),
            &[0.0, 0.0],
            "collect must not touch shared grads"
        );

        let g2 = Graph::new();
        let loss2 = g2.param(&p).mul(&g2.param(&p)).sum_all();
        g2.backward_from(&loss2);
        assert_eq!(set.get(&p).unwrap().data(), p.borrow().grad.data());
    }

    #[test]
    fn apply_deposits_into_shared_grads() {
        let p = Parameter::shared("p", Tensor::scalar(3.0));
        let g = Graph::new();
        let loss = g.param(&p).scale(2.0);
        let set = g.backward_collect(&loss);
        set.apply();
        set.apply();
        assert_eq!(
            p.borrow().grad.item(),
            4.0,
            "apply accumulates, twice = 2 + 2"
        );
    }

    #[test]
    fn merge_scaled_weights_sum_to_mean() {
        let p = Parameter::shared("p", Tensor::scalar(1.0));
        let shard = |factor: f32| {
            let g = Graph::new();
            let loss = g.param(&p).scale(factor);
            g.backward_collect(&loss)
        };
        // Two shards of sizes 3 and 1 over a batch of 4.
        let mut merged = GradientSet::new();
        merged.merge_scaled(&shard(2.0), 3.0 / 4.0);
        merged.merge_scaled(&shard(6.0), 1.0 / 4.0);
        assert_eq!(merged.get(&p).unwrap().item(), 3.0); // 0.75*2 + 0.25*6
    }
}

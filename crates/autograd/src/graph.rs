//! The tape: [`Graph`], [`Var`], [`Parameter`], and the backward pass.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use tensor::bug::OrBug;
use tensor::Tensor;

use crate::accum::GradientSet;
use crate::meta::ShapeSig;

/// A trainable tensor with an accumulated gradient.
///
/// Parameters outlive graphs: a model owns `ParamRef`s, every training step
/// enters them into a fresh [`Graph`] via [`Graph::param`], and after
/// `backward` the gradient sits in [`Parameter::grad`] ready for an
/// optimizer.
#[derive(Debug)]
pub struct Parameter {
    /// Human-readable name (used in optimizer state and debugging).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// When false, [`Graph::param`] enters this parameter as a constant and
    /// no gradient is accumulated. Used by the meta-optimized second stage
    /// to freeze `Enc_μ`, `Enc_σ` and the decoder.
    pub trainable: bool,
}

/// Shared, thread-safe handle to a [`Parameter`].
///
/// Internally `Arc<RwLock<Parameter>>`, so models holding `ParamRef`s are
/// `Send + Sync` and the data-parallel executor can run forward/backward on
/// shards from worker threads. The accessors keep the `borrow`/`borrow_mut`
/// names from the earlier `Rc<RefCell<_>>` representation so call sites read
/// the same; they panic if the lock is poisoned (a worker panicked mid-write),
/// which is already a fatal state for training.
#[derive(Debug, Clone)]
pub struct ParamRef(Arc<RwLock<Parameter>>);

impl ParamRef {
    /// Wraps a parameter in a shared handle.
    pub fn new(p: Parameter) -> ParamRef {
        ParamRef(Arc::new(RwLock::new(p)))
    }

    /// Read access. Multiple simultaneous reads are fine; blocks on a writer.
    pub fn borrow(&self) -> RwLockReadGuard<'_, Parameter> {
        self.0.read().or_bug("parameter lock poisoned")
    }

    /// Exclusive write access.
    pub fn borrow_mut(&self) -> RwLockWriteGuard<'_, Parameter> {
        self.0.write().or_bug("parameter lock poisoned")
    }

    /// True if both handles refer to the same parameter allocation.
    pub fn ptr_eq(a: &ParamRef, b: &ParamRef) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Stable identity key for this allocation, usable in hash maps.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

impl Parameter {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Parameter {
        let grad = Tensor::zeros(value.dims().to_vec());
        Parameter {
            name: name.into(),
            value,
            grad,
            trainable: true,
        }
    }

    /// Creates a shared [`ParamRef`] parameter.
    pub fn shared(name: impl Into<String>, value: Tensor) -> ParamRef {
        ParamRef::new(Parameter::new(name, value))
    }

    /// Zeroes the accumulated gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Gradient sink passed to backward closures: `sink(parent_id, grad)`.
pub(crate) type GradSink<'a> = dyn FnMut(usize, Tensor) + 'a;

/// Adjoint function of one tape node.
pub(crate) type BackFn = Box<dyn Fn(&Tensor, &mut GradSink)>;

pub(crate) struct Node {
    pub value: Tensor,
    pub requires_grad: bool,
    /// None for leaves (constants and parameters).
    pub backward: Option<BackFn>,
    /// Set for parameter leaves — trainable *or* frozen — so static
    /// analysis can attribute the leaf to its parameter. The backward pass
    /// only deposits into it when `requires_grad` is true.
    pub param: Option<ParamRef>,
    /// Op name for diagnostics (e.g. `"matmul"`).
    pub op: &'static str,
    /// Declarative shape signature (see [`crate::meta::ShapeSig`]).
    pub sig: ShapeSig,
    /// Tape ids of this op's inputs (empty for leaves).
    pub inputs: Vec<usize>,
}

#[derive(Default)]
pub(crate) struct GraphInner {
    pub nodes: Vec<Node>,
}

impl Drop for GraphInner {
    fn drop(&mut self) {
        // A graph is dropped at the end of every training step; its node
        // values are exactly the activation buffers the next step will
        // allocate again, so hand them to the tensor pool instead of the
        // system allocator.
        for node in self.nodes.drain(..) {
            tensor::pool::recycle(node.value.into_vec());
        }
    }
}

/// A dynamic computation graph (tape).
///
/// Cheap to clone (shared `Rc`); create one per training step.
#[derive(Clone, Default)]
pub struct Graph {
    pub(crate) inner: Rc<RefCell<GraphInner>>,
}

/// A handle to a node in a [`Graph`].
///
/// `Var` is `Clone` and cheap to copy around; all tensor ops are methods on
/// `Var` (see the `ops_*` modules) and panic on shape errors, which are
/// programming bugs in model code.
#[derive(Clone)]
pub struct Var {
    pub(crate) graph: Graph,
    pub(crate) id: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, node: Node) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(node);
        Var {
            graph: self.clone(),
            id,
        }
    }

    /// Enters a tensor as a non-differentiable leaf.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            requires_grad: false,
            backward: None,
            param: None,
            op: "constant",
            sig: ShapeSig::Leaf,
            inputs: Vec::new(),
        })
    }

    /// Enters a parameter as a leaf. If the parameter is trainable its
    /// gradient is accumulated by [`Var::backward`]; otherwise it behaves as
    /// a constant (the freezing mechanism for the meta stage). Either way
    /// the node keeps a handle to the parameter so static analysis can
    /// distinguish *frozen* parameters from plain constants.
    pub fn param(&self, p: &ParamRef) -> Var {
        let (value, trainable) = {
            let pb = p.borrow();
            (pb.value.clone(), pb.trainable)
        };
        self.push(Node {
            value,
            requires_grad: trainable,
            backward: None,
            param: Some(p.clone()),
            op: "param",
            sig: ShapeSig::Leaf,
            inputs: Vec::new(),
        })
    }

    /// Runs the backward pass from `root` (which must be a scalar), seeding
    /// `d root / d root = 1`, and deposits gradients into trainable
    /// parameter leaves.
    pub fn backward_from(&self, root: &Var) {
        self.backward_with(root, &mut |p, grad| p.borrow_mut().grad.add_assign(&grad));
    }

    /// Like [`Graph::backward_from`], but instead of writing into the shared
    /// [`Parameter::grad`] buffers, collects the gradients into a local
    /// [`GradientSet`]. This is the primitive behind data-parallel training:
    /// each shard runs `backward_collect` on its own tape without touching
    /// shared state, and the coordinator merges the per-shard sets in a fixed
    /// order (see [`GradientSet::merge_scaled`]).
    pub fn backward_collect(&self, root: &Var) -> GradientSet {
        let mut set = GradientSet::new();
        self.backward_with(root, &mut |p, grad| set.accumulate(p, &grad, 1.0));
        set
    }

    /// Backward-pass core: walks the tape in reverse and hands each trainable
    /// parameter leaf's gradient to `deposit`.
    ///
    /// Telemetry: counts backward invocations and traversed tape nodes
    /// (deterministic — the tape a shard builds is a pure function of its
    /// slice of the batch), and records wall time into a nondeterministic
    /// histogram. The clock is only read when telemetry is enabled.
    fn backward_with(&self, root: &Var, deposit: &mut dyn FnMut(&ParamRef, Tensor)) {
        use std::sync::OnceLock;
        static CALLS: OnceLock<&'static telemetry::Counter> = OnceLock::new();
        static NODES: OnceLock<&'static telemetry::Counter> = OnceLock::new();
        static WALL: OnceLock<&'static telemetry::Histogram> = OnceLock::new();
        let timer = if telemetry::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };

        let inner = self.inner.borrow();
        let n = inner.nodes.len();
        CALLS
            .get_or_init(|| telemetry::metrics::counter("autograd.backward.calls", true))
            .inc();
        NODES
            .get_or_init(|| telemetry::metrics::counter("autograd.tape.nodes", true))
            .add((root.id + 1) as u64);
        assert!(root.id < n);
        assert_eq!(
            inner.nodes[root.id].value.numel(),
            1,
            "backward() root must be a scalar, got shape {:?}",
            inner.nodes[root.id].value.dims()
        );
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let seed_dims = inner.nodes[root.id].value.dims().to_vec();
        grads[root.id] = Some(Tensor::ones(seed_dims));

        for id in (0..=root.id).rev() {
            let node = &inner.nodes[id];
            if !node.requires_grad {
                grads[id] = None;
                continue;
            }
            let Some(grad) = grads[id].take() else {
                continue;
            };
            if let Some(back) = &node.backward {
                // Split borrow: the sink writes only to ids < id because
                // parents always precede children on the tape.
                let (lo, _hi) = grads.split_at_mut(id);
                let mut sink = |pid: usize, g: Tensor| {
                    debug_assert!(pid < id, "parent id {pid} >= node id {id}");
                    if !inner.nodes[pid].requires_grad {
                        return;
                    }
                    match &mut lo[pid] {
                        Some(acc) => acc.add_assign(&g),
                        slot @ None => *slot = Some(g),
                    }
                };
                back(&grad, &mut sink);
                // This node's upstream gradient is fully consumed; recycle
                // its storage for the sink's downstream allocations.
                grad.recycle();
            } else if let Some(p) = &node.param {
                deposit(p, grad);
            }
        }
        if let Some(t) = timer {
            WALL.get_or_init(|| telemetry::metrics::histogram("autograd.backward.wall_ns", false))
                .record(t.elapsed().as_nanos() as u64);
        }
    }
}

impl Var {
    /// The node's current value (cloned).
    pub fn value(&self) -> Tensor {
        self.graph.inner.borrow().nodes[self.id].value.clone()
    }

    /// Runs `f` on the node's value without cloning.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.graph.inner.borrow().nodes[self.id].value)
    }

    /// Shape of the node's value.
    pub fn dims(&self) -> Vec<usize> {
        self.with_value(|t| t.dims().to_vec())
    }

    /// Whether gradients flow through this node.
    pub fn requires_grad(&self) -> bool {
        self.graph.inner.borrow().nodes[self.id].requires_grad
    }

    /// Scalar value of a one-element node.
    pub fn item(&self) -> f32 {
        self.with_value(|t| t.item())
    }

    /// Backpropagates from this (scalar) node; see [`Graph::backward_from`].
    pub fn backward(&self) {
        self.graph.backward_from(self);
    }

    /// Backpropagates from this (scalar) node into a local [`GradientSet`]
    /// instead of the shared parameter gradients; see
    /// [`Graph::backward_collect`].
    pub fn backward_collect(&self) -> GradientSet {
        self.graph.backward_collect(self)
    }

    /// Detaches the value from the tape: returns a leaf-like node with the
    /// same value on the same graph. Gradients do not flow past it, but the
    /// edge to the source node is recorded so static analysis can see
    /// *where* the flow was cut.
    pub fn detach(&self) -> Var {
        let v = self.value();
        self.graph.push(Node {
            value: v,
            requires_grad: false,
            backward: None,
            param: None,
            op: "detach",
            sig: ShapeSig::Elementwise,
            inputs: vec![self.id],
        })
    }

    pub(crate) fn unary(
        &self,
        op: &'static str,
        sig: ShapeSig,
        value: Tensor,
        back: impl Fn(&Tensor, &mut GradSink) + 'static,
    ) -> Var {
        let requires = self.requires_grad();
        self.graph.push(Node {
            value,
            requires_grad: requires,
            backward: if requires { Some(Box::new(back)) } else { None },
            param: None,
            op,
            sig,
            inputs: vec![self.id],
        })
    }

    pub(crate) fn binary(
        &self,
        other: &Var,
        op: &'static str,
        sig: ShapeSig,
        value: Tensor,
        back: impl Fn(&Tensor, &mut GradSink) + 'static,
    ) -> Var {
        assert!(
            Rc::ptr_eq(&self.graph.inner, &other.graph.inner),
            "vars belong to different graphs"
        );
        let requires = self.requires_grad() || other.requires_grad();
        self.graph.push(Node {
            value,
            requires_grad: requires,
            backward: if requires { Some(Box::new(back)) } else { None },
            param: None,
            op,
            sig,
            inputs: vec![self.id, other.id],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_no_grad() {
        let g = Graph::new();
        let c = g.constant(Tensor::ones(vec![2]));
        assert!(!c.requires_grad());
        assert_eq!(c.dims(), vec![2]);
    }

    #[test]
    fn param_leaf_accumulates_identity_grad() {
        let p = Parameter::shared("p", Tensor::scalar(3.0));
        let g = Graph::new();
        let v = g.param(&p);
        v.backward();
        assert_eq!(p.borrow().grad.item(), 1.0);
        // Backward again on a fresh graph accumulates.
        let g2 = Graph::new();
        g2.param(&p).backward();
        assert_eq!(p.borrow().grad.item(), 2.0);
    }

    #[test]
    fn frozen_param_is_constant() {
        let p = Parameter::shared("p", Tensor::scalar(3.0));
        p.borrow_mut().trainable = false;
        let g = Graph::new();
        let v = g.param(&p);
        assert!(!v.requires_grad());
        v.backward();
        assert_eq!(p.borrow().grad.item(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be a scalar")]
    fn backward_requires_scalar_root() {
        let p = Parameter::shared("p", Tensor::ones(vec![2]));
        let g = Graph::new();
        g.param(&p).backward();
    }

    #[test]
    fn detach_blocks_gradient() {
        let p = Parameter::shared("p", Tensor::scalar(3.0));
        let g = Graph::new();
        let v = g.param(&p).detach();
        assert!(!v.requires_grad());
    }
}

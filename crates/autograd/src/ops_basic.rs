//! Elementwise arithmetic and unary math ops for [`Var`].

use tensor::bug::OrBug;
use tensor::{ops, Tensor};

use crate::graph::Var;
use crate::meta::ShapeSig;

impl Var {
    // -- binary arithmetic (broadcasting) ---------------------------------

    /// Elementwise `self + other` with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let value = self
            .with_value(|a| other.with_value(|b| ops::add(a, b)))
            .or_bug("add");
        let (aid, bid) = (self.id, other.id);
        let (ad, bd) = (self.dims(), other.dims());
        self.binary(other, "add", ShapeSig::Broadcast, value, move |g, sink| {
            sink(aid, ops::unbroadcast(g, &ad));
            sink(bid, ops::unbroadcast(g, &bd));
        })
    }

    /// Elementwise `self - other` with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self
            .with_value(|a| other.with_value(|b| ops::sub(a, b)))
            .or_bug("sub");
        let (aid, bid) = (self.id, other.id);
        let (ad, bd) = (self.dims(), other.dims());
        self.binary(other, "sub", ShapeSig::Broadcast, value, move |g, sink| {
            sink(aid, ops::unbroadcast(g, &ad));
            let mut gb = ops::unbroadcast(g, &bd);
            gb.scale_inplace(-1.0);
            sink(bid, gb);
        })
    }

    /// Elementwise `self * other` with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::mul(&a_val, &b_val).or_bug("mul");
        let (aid, bid) = (self.id, other.id);
        self.binary(other, "mul", ShapeSig::Broadcast, value, move |g, sink| {
            let ga = ops::mul(g, &b_val).or_bug("mul-back");
            sink(aid, ops::unbroadcast(&ga, a_val.dims()));
            let gb = ops::mul(g, &a_val).or_bug("mul-back");
            sink(bid, ops::unbroadcast(&gb, b_val.dims()));
        })
    }

    /// Elementwise `self / other` with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::div(&a_val, &b_val).or_bug("div");
        let (aid, bid) = (self.id, other.id);
        let out_val = value.clone();
        self.binary(other, "div", ShapeSig::Broadcast, value, move |g, sink| {
            // d/da (a/b) = 1/b ; d/db (a/b) = -a/b² = -(a/b)/b
            let ga = ops::div(g, &b_val).or_bug("div-back");
            sink(aid, ops::unbroadcast(&ga, a_val.dims()));
            let gb_full =
                ops::div(&ops::mul(g, &out_val).or_bug("div-back"), &b_val).or_bug("div-back");
            let mut gb = ops::unbroadcast(&gb_full, b_val.dims());
            gb.scale_inplace(-1.0);
            sink(bid, gb);
        })
    }

    // -- scalar ops --------------------------------------------------------

    /// `self * c`.
    pub fn scale(&self, c: f32) -> Var {
        let value = self.with_value(|a| a.map(|x| x * c));
        let aid = self.id;
        self.unary("scale", ShapeSig::Elementwise, value, move |g, sink| {
            let mut ga = g.clone();
            ga.scale_inplace(c);
            sink(aid, ga);
        })
    }

    /// `self + c`.
    pub fn add_scalar(&self, c: f32) -> Var {
        let value = self.with_value(|a| a.map(|x| x + c));
        let aid = self.id;
        self.unary(
            "add_scalar",
            ShapeSig::Elementwise,
            value,
            move |g, sink| sink(aid, g.clone()),
        )
    }

    /// `-self`.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    // -- unary math --------------------------------------------------------

    /// Elementwise `exp`.
    pub fn exp(&self) -> Var {
        let value = self.with_value(|a| a.map(f32::exp));
        let out = value.clone();
        let aid = self.id;
        self.unary("exp", ShapeSig::Elementwise, value, move |g, sink| {
            sink(aid, ops::mul(g, &out).or_bug("exp-back"));
        })
    }

    /// Elementwise natural log.
    pub fn log(&self) -> Var {
        let a_val = self.value();
        let value = a_val.map(f32::ln);
        let aid = self.id;
        self.unary("log", ShapeSig::Elementwise, value, move |g, sink| {
            sink(aid, ops::div(g, &a_val).or_bug("log-back"));
        })
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let value = self.with_value(|a| a.map(f32::sqrt));
        let out = value.clone();
        let aid = self.id;
        self.unary("sqrt", ShapeSig::Elementwise, value, move |g, sink| {
            // d sqrt(x) = 1/(2 sqrt(x))
            let denom = out.map(|y| 2.0 * y);
            sink(aid, ops::div(g, &denom).or_bug("sqrt-back"));
        })
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let a_val = self.value();
        let value = a_val.map(|x| x * x);
        let aid = self.id;
        self.unary("square", ShapeSig::Elementwise, value, move |g, sink| {
            let two_a = a_val.map(|x| 2.0 * x);
            sink(aid, ops::mul(g, &two_a).or_bug("square-back"));
        })
    }

    /// Elementwise ReLU.
    pub fn relu(&self) -> Var {
        let a_val = self.value();
        let value = a_val.map(|x| x.max(0.0));
        let aid = self.id;
        self.unary("relu", ShapeSig::Elementwise, value, move |g, sink| {
            let mask = a_val.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            sink(aid, ops::mul(g, &mask).or_bug("relu-back"));
        })
    }

    /// Elementwise GELU (tanh approximation).
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let a_val = self.value();
        let value = a_val.map(|x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()));
        let aid = self.id;
        self.unary("gelu", ShapeSig::Elementwise, value, move |g, sink| {
            let dgelu = a_val.map(|x| {
                let inner = C * (x + 0.044715 * x * x * x);
                let t = inner.tanh();
                let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * dt
            });
            sink(aid, ops::mul(g, &dgelu).or_bug("gelu-back"));
        })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.with_value(|a| a.map(f32::tanh));
        let out = value.clone();
        let aid = self.id;
        self.unary("tanh", ShapeSig::Elementwise, value, move |g, sink| {
            let d = out.map(|y| 1.0 - y * y);
            sink(aid, ops::mul(g, &d).or_bug("tanh-back"));
        })
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.with_value(|a| a.map(|x| 1.0 / (1.0 + (-x).exp())));
        let out = value.clone();
        let aid = self.id;
        self.unary("sigmoid", ShapeSig::Elementwise, value, move |g, sink| {
            let d = out.map(|y| y * (1.0 - y));
            sink(aid, ops::mul(g, &d).or_bug("sigmoid-back"));
        })
    }

    /// Clamps values into `[lo, hi]`; gradient is passed through inside the
    /// range and zeroed outside (straight-through at the boundary).
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        let a_val = self.value();
        let value = a_val.map(|x| x.clamp(lo, hi));
        let aid = self.id;
        self.unary("clamp", ShapeSig::Elementwise, value, move |g, sink| {
            let mask = a_val.map(|x| if x > lo && x < hi { 1.0 } else { 0.0 });
            sink(aid, ops::mul(g, &mask).or_bug("clamp-back"));
        })
    }

    /// Adds a constant tensor (no gradient for the constant), broadcasting.
    /// Convenience for additive attention masks.
    pub fn add_const(&self, c: &Tensor) -> Var {
        let value = self.with_value(|a| ops::add(a, c)).or_bug("add_const");
        let aid = self.id;
        let ad = self.dims();
        self.unary(
            "add_const",
            ShapeSig::BroadcastWith(c.dims().to_vec()),
            value,
            move |g, sink| {
                sink(aid, ops::unbroadcast(g, &ad));
            },
        )
    }

    /// Elementwise product with a constant tensor (broadcasting); the
    /// constant receives no gradient. Used for padding masks and dropout.
    pub fn mul_const(&self, c: &Tensor) -> Var {
        let value = self.with_value(|a| ops::mul(a, c)).or_bug("mul_const");
        let aid = self.id;
        let ad = self.dims();
        let c = c.clone();
        self.unary(
            "mul_const",
            ShapeSig::BroadcastWith(c.dims().to_vec()),
            value,
            move |g, sink| {
                let gm = ops::mul(g, &c).or_bug("mul_const-back");
                sink(aid, ops::unbroadcast(&gm, &ad));
            },
        )
    }
}

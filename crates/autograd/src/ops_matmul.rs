//! Matrix multiplication for [`Var`], with adjoints.
//!
//! The three products — `matmul` (NN), [`Var::matmul_transb`] (NT) and
//! [`Var::matmul_transa`] (TN) — are closed under differentiation: every
//! adjoint below is itself one of the three, so no transpose is ever
//! materialized in the forward *or* backward pass. The fused kernels in
//! [`tensor::ops`] are bitwise identical to their transpose-then-matmul
//! compositions, so switching a model between the spellings cannot change
//! its checkpoints.

use tensor::bug::OrBug;
use tensor::ops;

use crate::graph::Var;
use crate::meta::ShapeSig;

impl Var {
    /// Matrix product. Supports the same operand ranks as
    /// [`tensor::ops::matmul`]: `(m,k)·(k,n)`, `(b,m,k)·(b,k,n)` and
    /// `(b,m,k)·(k,n)` (shared right operand).
    pub fn matmul(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::matmul(&a_val, &b_val).or_bug("matmul");
        let (aid, bid) = (self.id, other.id);
        let (a_nd, b_nd) = (a_val.ndim(), b_val.ndim());
        self.binary(other, "matmul", ShapeSig::Matmul, value, move |g, sink| {
            match (a_nd, b_nd) {
                (2, 2) | (3, 3) => {
                    // gA = g · Bᵀ (fused NT); gB = Aᵀ · g (fused TN).
                    sink(aid, ops::matmul_transb(g, &b_val).or_bug("matmul-back"));
                    sink(bid, ops::matmul_transa(&a_val, g).or_bug("matmul-back"));
                }
                (3, 2) => {
                    // A: (b,m,k), B: (k,n), g: (b,m,n).
                    // gA = g · Bᵀ — the shared-B NT rank handles the batch.
                    sink(aid, ops::matmul_transb(g, &b_val).or_bug("matmul-back"));
                    // gB = Σ_b Aᵀ_b · g_b = (flatten A)ᵀ · (flatten g).
                    let (b, m, k) = (a_val.dim(0), a_val.dim(1), a_val.dim(2));
                    let n = g.dim(2);
                    let a_flat = a_val.reshape(vec![b * m, k]).or_bug("matmul-back");
                    let g_flat = g.reshape(vec![b * m, n]).or_bug("matmul-back");
                    sink(
                        bid,
                        ops::matmul_transa(&a_flat, &g_flat).or_bug("matmul-back"),
                    );
                }
                _ => unreachable!("forward validated operand ranks"),
            }
        })
    }

    /// Fused `self · otherᵀ` — [`tensor::ops::matmul_transb`] as a tape op.
    ///
    /// Supports `(m,k)·(n,k)ᵀ`, `(b,m,k)·(b,n,k)ᵀ` and `(b,m,k)·(n,k)ᵀ`
    /// (shared right operand, e.g. logits against the embedding table).
    /// Bitwise identical to `self.matmul(&other.transpose_last2())`, forward
    /// and backward, without materializing the transpose in either pass.
    pub fn matmul_transb(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::matmul_transb(&a_val, &b_val).or_bug("matmul_transb");
        let (aid, bid) = (self.id, other.id);
        let (a_nd, b_nd) = (a_val.ndim(), b_val.ndim());
        self.binary(
            other,
            "matmul_transb",
            ShapeSig::MatmulTransB,
            value,
            move |g, sink| match (a_nd, b_nd) {
                (2, 2) | (3, 3) => {
                    // out = A·Bᵀ ⇒ gA = g·B (plain NN); gB = gᵀ·A (fused TN).
                    sink(aid, ops::matmul(g, &b_val).or_bug("matmul_transb-back"));
                    sink(
                        bid,
                        ops::matmul_transa(g, &a_val).or_bug("matmul_transb-back"),
                    );
                }
                (3, 2) => {
                    // A: (b,m,k), B: (n,k), g: (b,m,n).
                    sink(aid, ops::matmul(g, &b_val).or_bug("matmul_transb-back"));
                    // gB = Σ_b gᵀ_b · A_b = (flatten g)ᵀ · (flatten A).
                    let (b, m, k) = (a_val.dim(0), a_val.dim(1), a_val.dim(2));
                    let n = g.dim(2);
                    let a_flat = a_val.reshape(vec![b * m, k]).or_bug("matmul_transb-back");
                    let g_flat = g.reshape(vec![b * m, n]).or_bug("matmul_transb-back");
                    sink(
                        bid,
                        ops::matmul_transa(&g_flat, &a_flat).or_bug("matmul_transb-back"),
                    );
                }
                _ => unreachable!("forward validated operand ranks"),
            },
        )
    }

    /// Fused `selfᵀ · other` — [`tensor::ops::matmul_transa`] as a tape op.
    ///
    /// Supports `(k,m)ᵀ·(k,n)` and `(b,k,m)ᵀ·(b,k,n)`. Bitwise identical to
    /// `self.transpose_last2().matmul(&other)`, forward and backward,
    /// without materializing the transpose in either pass.
    pub fn matmul_transa(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::matmul_transa(&a_val, &b_val).or_bug("matmul_transa");
        let (aid, bid) = (self.id, other.id);
        self.binary(
            other,
            "matmul_transa",
            ShapeSig::MatmulTransA,
            value,
            move |g, sink| {
                // out = Aᵀ·B ⇒ gA = B·gᵀ (fused NT); gB = A·g (plain NN).
                sink(
                    aid,
                    ops::matmul_transb(&b_val, g).or_bug("matmul_transa-back"),
                );
                sink(bid, ops::matmul(&a_val, g).or_bug("matmul_transa-back"));
            },
        )
    }
}

//! Matrix multiplication for [`Var`], with adjoints.

use tensor::ops;

use crate::graph::Var;
use crate::meta::ShapeSig;

impl Var {
    /// Matrix product. Supports the same operand ranks as
    /// [`tensor::ops::matmul`]: `(m,k)·(k,n)`, `(b,m,k)·(b,k,n)` and
    /// `(b,m,k)·(k,n)` (shared right operand).
    pub fn matmul(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = ops::matmul(&a_val, &b_val).expect("matmul");
        let (aid, bid) = (self.id, other.id);
        let (a_nd, b_nd) = (a_val.ndim(), b_val.ndim());
        self.binary(other, "matmul", ShapeSig::Matmul, value, move |g, sink| {
            match (a_nd, b_nd) {
                (2, 2) | (3, 3) => {
                    // gA = g · Bᵀ ; gB = Aᵀ · g (per batch for rank 3).
                    let bt = ops::transpose_last2(&b_val).expect("matmul-back");
                    sink(aid, ops::matmul(g, &bt).expect("matmul-back"));
                    let at = ops::transpose_last2(&a_val).expect("matmul-back");
                    sink(bid, ops::matmul(&at, g).expect("matmul-back"));
                }
                (3, 2) => {
                    // A: (b,m,k), B: (k,n), g: (b,m,n).
                    let bt = ops::transpose_last2(&b_val).expect("matmul-back");
                    sink(aid, ops::matmul(g, &bt).expect("matmul-back"));
                    // gB = Σ_b Aᵀ_b · g_b = (flatten A)ᵀ · (flatten g).
                    let (b, m, k) = (a_val.dim(0), a_val.dim(1), a_val.dim(2));
                    let n = g.dim(2);
                    let a_flat = a_val.reshape(vec![b * m, k]).expect("matmul-back");
                    let g_flat = g.reshape(vec![b * m, n]).expect("matmul-back");
                    let at = ops::transpose_last2(&a_flat).expect("matmul-back");
                    sink(bid, ops::matmul(&at, &g_flat).expect("matmul-back"));
                }
                _ => unreachable!("forward validated operand ranks"),
            }
        })
    }
}

//! Finite-difference gradient checking (a numerical oracle for every
//! autograd op) and the runtime numeric sanitizer behind
//! `TrainConfig.sanitize`.

use crate::{GradientSet, Graph, ParamRef};

/// Compares analytic gradients against central finite differences.
///
/// `f` rebuilds the scalar loss from scratch on the supplied graph (it is
/// called many times with perturbed parameter values). Returns the maximum
/// relative error observed across all parameter elements.
///
/// The relative error for element `i` is
/// `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
pub fn max_grad_rel_error(params: &[ParamRef], eps: f32, f: impl Fn(&Graph) -> crate::Var) -> f32 {
    // Analytic pass.
    for p in params {
        p.borrow_mut().zero_grad();
    }
    let g = Graph::new();
    let loss = f(&g);
    loss.backward();
    let analytic: Vec<Vec<f32>> = params
        .iter()
        .map(|p| p.borrow().grad.data().to_vec())
        .collect();

    let mut max_err = 0.0f32;
    for (pi, p) in params.iter().enumerate() {
        let n = p.borrow().value.numel();
        // An index loop is the natural shape here: each step perturbs the
        // parameter buffer at `i` and re-runs the closure.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let orig = p.borrow().value.data()[i];
            p.borrow_mut().value.data_mut()[i] = orig + eps;
            let plus = f(&Graph::new()).item();
            p.borrow_mut().value.data_mut()[i] = orig - eps;
            let minus = f(&Graph::new()).item();
            p.borrow_mut().value.data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let err = (a - numeric).abs() / denom;
            if err > max_err {
                max_err = err;
            }
        }
    }
    max_err
}

/// Asserts that gradients of `f` match finite differences to within `tol`.
///
/// Panics with a diagnostic message otherwise. A good default is
/// `eps = 1e-2, tol = 1e-2` for f32.
pub fn assert_grads_close(
    params: &[ParamRef],
    eps: f32,
    tol: f32,
    f: impl Fn(&Graph) -> crate::Var,
) {
    let err = max_grad_rel_error(params, eps, f);
    assert!(
        err <= tol,
        "max gradient relative error {err} exceeds tolerance {tol}"
    );
}

// ---------------------------------------------------------------------------
// Numeric sanitizer
// ---------------------------------------------------------------------------

/// What the sanitizer found wrong with one tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericIssueKind {
    /// At least one element is NaN.
    NaN,
    /// At least one element is ±∞ (and none is NaN).
    Inf,
    /// All elements finite, but the Frobenius norm exceeds the limit.
    ExplodingNorm {
        /// The observed norm.
        norm: f32,
        /// The configured limit.
        limit: f32,
    },
}

impl std::fmt::Display for NumericIssueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericIssueKind::NaN => write!(f, "NaN"),
            NumericIssueKind::Inf => write!(f, "Inf"),
            NumericIssueKind::ExplodingNorm { norm, limit } => {
                write!(f, "exploding norm {norm:.3e} > {limit:.3e}")
            }
        }
    }
}

/// One sanitizer finding, with per-op blame.
#[derive(Debug, Clone)]
pub struct NumericIssue {
    /// Tape id of the offending node (`usize::MAX` for gradient findings
    /// that have no tape node).
    pub node: usize,
    /// Op name of the offending node, or `"grad"` for gradient findings.
    pub op: &'static str,
    /// Shape of the offending tensor.
    pub dims: Vec<usize>,
    /// Parameter name, when the tensor belongs to a parameter leaf or a
    /// collected parameter gradient.
    pub param: Option<String>,
    /// What was wrong.
    pub kind: NumericIssueKind,
}

impl std::fmt::Display for NumericIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind)?;
        if self.node == usize::MAX {
            write!(f, " in gradient")?;
        } else {
            write!(f, " in op `{}` (node {})", self.op, self.node)?;
        }
        if let Some(p) = &self.param {
            write!(f, " for parameter `{p}`")?;
        }
        write!(f, ", shape {:?}", self.dims)
    }
}

fn classify(t: &tensor::Tensor, norm_limit: f32) -> Option<NumericIssueKind> {
    if t.has_non_finite() {
        let has_nan = t.data().iter().any(|x| x.is_nan());
        return Some(if has_nan {
            NumericIssueKind::NaN
        } else {
            NumericIssueKind::Inf
        });
    }
    let norm = t.norm();
    if norm > norm_limit {
        return Some(NumericIssueKind::ExplodingNorm {
            norm,
            limit: norm_limit,
        });
    }
    None
}

/// Ops that inject constants into the tape. Additive attention masks and
/// false-negative masks use them to write −1e9 into padded/self slots, so
/// huge finite magnitudes at (and downstream of) these ops are by
/// construction, not divergence.
const MASK_INJECTING_OPS: &[&str] = &["add_const", "mul_const"];

/// Ops with intrinsically bounded outputs: they wash out inherited mask
/// magnitudes, so the exploding-norm ceiling applies again downstream.
const BOUNDED_OPS: &[&str] = &["softmax_last", "sigmoid", "tanh", "cross_entropy"];

/// Scans every activation on the tape for NaN/Inf/exploding norms.
///
/// Returns one issue per offending node, in tape order, each blaming the op
/// that produced the value. An empty result means the forward pass is
/// numerically healthy.
///
/// NaN/Inf are flagged unconditionally. The exploding-norm ceiling skips
/// values tainted by mask constants: a node is tainted if it is a
/// [`MASK_INJECTING_OPS`] op or any input is tainted, until a
/// [`BOUNDED_OPS`] op clears the taint. Masked attention logits therefore
/// never false-positive, while genuine pre-Inf divergence elsewhere on
/// the tape is still caught.
pub fn scan_graph(g: &Graph, norm_limit: f32) -> Vec<NumericIssue> {
    let inner = g.inner.borrow();
    let mut tainted = vec![false; inner.nodes.len()];
    inner
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| {
            tainted[id] = if BOUNDED_OPS.contains(&n.op) {
                false
            } else {
                MASK_INJECTING_OPS.contains(&n.op) || n.inputs.iter().any(|&i| tainted[i])
            };
            let limit = if tainted[id] {
                f32::INFINITY
            } else {
                norm_limit
            };
            classify(&n.value, limit).map(|kind| NumericIssue {
                node: id,
                op: n.op,
                dims: n.value.dims().to_vec(),
                param: n.param.as_ref().map(|p| p.borrow().name.clone()),
                kind,
            })
        })
        .collect()
}

/// Scans collected parameter gradients for NaN/Inf/exploding norms,
/// blaming each finding on its parameter by name.
pub fn scan_gradients(set: &GradientSet, norm_limit: f32) -> Vec<NumericIssue> {
    set.iter()
        .filter_map(|(p, grad)| {
            classify(grad, norm_limit).map(|kind| NumericIssue {
                node: usize::MAX,
                op: "grad",
                dims: grad.dims().to_vec(),
                param: Some(p.borrow().name.clone()),
                kind,
            })
        })
        .collect()
}

#[cfg(test)]
mod sanitizer_tests {
    use super::*;
    use crate::Parameter;
    use tensor::Tensor;

    #[test]
    fn clean_graph_has_no_issues() {
        let p = Parameter::shared("w", Tensor::ones(vec![2]));
        let g = Graph::new();
        let loss = g.param(&p).square().sum_all();
        let set = g.backward_collect(&loss);
        assert!(scan_graph(&g, 1e4).is_empty());
        assert!(scan_gradients(&set, 1e4).is_empty());
    }

    #[test]
    fn nan_blamed_on_producing_op() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![-1.0, 4.0], vec![2]));
        let bad = x.log(); // log(-1) = NaN
        let issues = scan_graph(&g, 1e4);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].node, bad.node_id());
        assert_eq!(issues[0].op, "log");
        assert_eq!(issues[0].kind, NumericIssueKind::NaN);
        assert!(issues[0].to_string().contains("op `log`"));
    }

    #[test]
    fn inf_and_norm_limits_detected() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1000.0], vec![1]));
        let _ = x.exp(); // overflows to +inf
        let issues = scan_graph(&g, 1e4);
        assert!(issues
            .iter()
            .any(|i| i.op == "exp" && i.kind == NumericIssueKind::Inf));

        let g2 = Graph::new();
        let _ = g2.constant(Tensor::full(vec![4], 100.0));
        let issues = scan_graph(&g2, 10.0);
        assert!(matches!(
            issues[0].kind,
            NumericIssueKind::ExplodingNorm { .. }
        ));
    }

    #[test]
    fn gradient_issues_name_the_parameter() {
        let p = Parameter::shared("theta", Tensor::from_vec(vec![0.0], vec![1]));
        let g = Graph::new();
        // d/dx log(x) at 0 = inf.
        let loss = g.param(&p).log().sum_all();
        let set = g.backward_collect(&loss);
        let issues = scan_gradients(&set, 1e4);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].param.as_deref(), Some("theta"));
    }
}

//! Finite-difference gradient checking, used throughout the test suites to
//! validate every autograd op against a numerical oracle.

use crate::{Graph, ParamRef};

/// Compares analytic gradients against central finite differences.
///
/// `f` rebuilds the scalar loss from scratch on the supplied graph (it is
/// called many times with perturbed parameter values). Returns the maximum
/// relative error observed across all parameter elements.
///
/// The relative error for element `i` is
/// `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
pub fn max_grad_rel_error(params: &[ParamRef], eps: f32, f: impl Fn(&Graph) -> crate::Var) -> f32 {
    // Analytic pass.
    for p in params {
        p.borrow_mut().zero_grad();
    }
    let g = Graph::new();
    let loss = f(&g);
    loss.backward();
    let analytic: Vec<Vec<f32>> = params
        .iter()
        .map(|p| p.borrow().grad.data().to_vec())
        .collect();

    let mut max_err = 0.0f32;
    for (pi, p) in params.iter().enumerate() {
        let n = p.borrow().value.numel();
        // An index loop is the natural shape here: each step perturbs the
        // parameter buffer at `i` and re-runs the closure.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let orig = p.borrow().value.data()[i];
            p.borrow_mut().value.data_mut()[i] = orig + eps;
            let plus = f(&Graph::new()).item();
            p.borrow_mut().value.data_mut()[i] = orig - eps;
            let minus = f(&Graph::new()).item();
            p.borrow_mut().value.data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let err = (a - numeric).abs() / denom;
            if err > max_err {
                max_err = err;
            }
        }
    }
    max_err
}

/// Asserts that gradients of `f` match finite differences to within `tol`.
///
/// Panics with a diagnostic message otherwise. A good default is
/// `eps = 1e-2, tol = 1e-2` for f32.
pub fn assert_grads_close(
    params: &[ParamRef],
    eps: f32,
    tol: f32,
    f: impl Fn(&Graph) -> crate::Var,
) {
    let err = max_grad_rel_error(params, eps, f);
    assert!(
        err <= tol,
        "max gradient relative error {err} exceeds tolerance {tol}"
    );
}

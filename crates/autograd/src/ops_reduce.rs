//! Reductions, softmax, and the fused cross-entropy loss for [`Var`].

use tensor::bug::OrBug;
use tensor::{ops, Tensor};

use crate::graph::Var;
use crate::meta::ShapeSig;

/// Sentinel target meaning "ignore this row" in
/// [`Var::cross_entropy_with_logits`] (padded positions).
pub const IGNORE_INDEX: usize = usize::MAX;

impl Var {
    /// Sum of all elements (scalar output).
    pub fn sum_all(&self) -> Var {
        let in_dims = self.dims();
        let value = Tensor::scalar(self.with_value(|a| a.sum_all()));
        let aid = self.id;
        self.unary("sum_all", ShapeSig::Scalar, value, move |g, sink| {
            sink(aid, Tensor::full(in_dims.clone(), g.item()));
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&self) -> Var {
        let in_dims = self.dims();
        let n: usize = in_dims.iter().product::<usize>().max(1);
        let value = Tensor::scalar(self.with_value(|a| a.mean_all()));
        let aid = self.id;
        self.unary("mean_all", ShapeSig::Scalar, value, move |g, sink| {
            sink(aid, Tensor::full(in_dims.clone(), g.item() / n as f32));
        })
    }

    /// Sum along `axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Var {
        let in_dims = self.dims();
        let value = self
            .with_value(|a| ops::sum_axis(a, axis, keepdim))
            .or_bug("sum_axis");
        let aid = self.id;
        self.unary(
            "sum_axis",
            ShapeSig::Reduce { axis, keepdim },
            value,
            move |g, sink| {
                let mut kd = in_dims.clone();
                kd[axis] = 1;
                let gk = g.reshape(kd).or_bug("sum_axis-back");
                let zeros = Tensor::zeros(in_dims.clone());
                sink(aid, ops::add(&zeros, &gk).or_bug("sum_axis-back"));
            },
        )
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Var {
        let n = self.dims()[axis] as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Numerically stable softmax along the last axis.
    pub fn softmax_last(&self) -> Var {
        let value = self.with_value(ops::softmax_last);
        let y = value.clone();
        let aid = self.id;
        self.unary(
            "softmax_last",
            ShapeSig::Elementwise,
            value,
            move |g, sink| {
                // dx = (g − Σ_last(g·y)) · y
                let gy = ops::mul(g, &y).or_bug("softmax-back");
                let nd = gy.ndim();
                let s = ops::sum_axis(&gy, nd - 1, true).or_bug("softmax-back");
                let centered = ops::sub(g, &s).or_bug("softmax-back");
                sink(aid, ops::mul(&centered, &y).or_bug("softmax-back"));
            },
        )
    }

    /// Numerically stable log-softmax along the last axis.
    pub fn log_softmax_last(&self) -> Var {
        let (value, y) = self.with_value(|a| (ops::log_softmax_last(a), ops::softmax_last(a)));
        let aid = self.id;
        self.unary(
            "log_softmax_last",
            ShapeSig::Elementwise,
            value,
            move |g, sink| {
                // dx = g − y · Σ_last(g)
                let nd = g.ndim();
                let s = ops::sum_axis(g, nd - 1, true).or_bug("log_softmax-back");
                let ys = ops::mul(&y, &s).or_bug("log_softmax-back");
                sink(aid, ops::sub(g, &ys).or_bug("log_softmax-back"));
            },
        )
    }

    /// Fused mean cross-entropy over rows of a `[rows, classes]` logits
    /// matrix. `targets[i]` is the class index for row `i`;
    /// [`IGNORE_INDEX`] rows (padding) contribute neither loss nor gradient.
    ///
    /// Forward: `mean_over_valid(−log_softmax(logits)[i, targets[i]])`.
    /// Backward: `(softmax − onehot) / n_valid` per valid row — computed in
    /// one pass, which matters when `classes` is the item-vocabulary size.
    pub fn cross_entropy_with_logits(&self, targets: &[usize]) -> Var {
        let logits = self.value();
        assert_eq!(logits.ndim(), 2, "cross_entropy expects [rows, classes]");
        let rows = logits.dim(0);
        let classes = logits.dim(1);
        assert_eq!(targets.len(), rows, "one target per row");
        let probs = ops::softmax_last(&logits);
        let mut n_valid = 0usize;
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            assert!(t < classes, "target {t} out of range {classes}");
            n_valid += 1;
            loss -= (probs.row(i)[t].max(1e-12) as f64).ln();
        }
        let n_valid = n_valid.max(1);
        let value = Tensor::scalar((loss / n_valid as f64) as f32);
        let aid = self.id;
        let targets = targets.to_vec();
        self.unary("cross_entropy", ShapeSig::Scalar, value, move |g, sink| {
            let scale = g.item() / n_valid as f32;
            let mut grad = Tensor::zeros(vec![rows, classes]);
            for (i, &t) in targets.iter().enumerate() {
                if t == IGNORE_INDEX {
                    continue;
                }
                let p = probs.row(i);
                let gr = grad.row_mut(i);
                for (o, &pv) in gr.iter_mut().zip(p.iter()) {
                    *o = pv * scale;
                }
                gr[t] -= scale;
            }
            sink(aid, grad);
        })
    }

    /// L2-normalizes the rows of the last axis: `x / (‖x‖₂ + eps)`.
    /// Composed from primitives, so the gradient is exact.
    pub fn l2_normalize_last(&self, eps: f32) -> Var {
        let nd = self.dims().len();
        let norm = self
            .square()
            .sum_axis(nd - 1, true)
            .add_scalar(eps * eps)
            .sqrt();
        self.div(&norm)
    }
}

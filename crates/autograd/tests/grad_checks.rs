//! Finite-difference gradient checks for every autograd op.
//!
//! Each test builds a small scalar loss exercising one op and compares the
//! analytic gradient to central differences via
//! [`autograd::numeric::assert_grads_close`].

use autograd::numeric::assert_grads_close;
use autograd::{Graph, ParamRef, Parameter, Var, IGNORE_INDEX};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn p(name: &str, dims: Vec<usize>, seed: u64) -> ParamRef {
    let mut rng = StdRng::seed_from_u64(seed);
    Parameter::shared(name, init::uniform(&mut rng, dims, 0.2, 1.2))
}

fn p_signed(name: &str, dims: Vec<usize>, seed: u64) -> ParamRef {
    let mut rng = StdRng::seed_from_u64(seed);
    Parameter::shared(name, init::uniform(&mut rng, dims, -1.0, 1.0))
}

#[test]
fn grad_add_broadcast() {
    let a = p_signed("a", vec![2, 3], 1);
    let b = p_signed("b", vec![3], 2);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).add(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_sub_broadcast_col() {
    let a = p_signed("a", vec![2, 3], 3);
    let b = p_signed("b", vec![2, 1], 4);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).sub(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_mul_broadcast() {
    let a = p_signed("a", vec![2, 3], 5);
    let b = p_signed("b", vec![3], 6);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).mul(&g.param(&b)).sum_all()
    });
}

#[test]
fn grad_div() {
    let a = p("a", vec![2, 3], 7);
    let b = p("b", vec![2, 3], 8); // positive denominators
    assert_grads_close(&[a.clone(), b.clone()], 1e-3, TOL, |g| {
        g.param(&a).div(&g.param(&b)).sum_all()
    });
}

#[test]
fn grad_scalar_ops() {
    let a = p_signed("a", vec![4], 9);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a)
            .scale(3.0)
            .add_scalar(1.0)
            .neg()
            .square()
            .sum_all()
    });
}

#[test]
fn grad_exp_log() {
    let a = p("a", vec![5], 10);
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).exp().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).log().sum_all()
    });
}

#[test]
fn grad_sqrt_square() {
    let a = p("a", vec![5], 11);
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).sqrt().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).square().sum_all()
    });
}

#[test]
fn grad_activations() {
    // Keep values away from the ReLU kink for finite differences.
    let a = p("a", vec![6], 12);
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).relu().square().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).tanh().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).sigmoid().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).gelu().sum_all()
    });
}

#[test]
fn grad_clamp_interior() {
    let a = p("a", vec![5], 13); // in (0.2, 1.2), clamp to [0, 10] is interior
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).clamp(0.0, 10.0).square().sum_all()
    });
}

#[test]
fn grad_add_mul_const() {
    let a = p_signed("a", vec![2, 3], 14);
    let c = Tensor::from_vec(vec![0.5, -1.0, 2.0], vec![3]);
    let cc = c.clone();
    let ac = a.clone();
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, move |g| {
        g.param(&ac).add_const(&cc).square().sum_all()
    });
    let a2 = p_signed("a2", vec![2, 3], 15);
    let a2c = a2.clone();
    assert_grads_close(std::slice::from_ref(&a2), EPS, TOL, move |g| {
        g.param(&a2c).mul_const(&c).square().sum_all()
    });
}

#[test]
fn grad_matmul_2d() {
    let a = p_signed("a", vec![3, 4], 16);
    let b = p_signed("b", vec![4, 2], 17);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_batched() {
    let a = p_signed("a", vec![2, 3, 4], 18);
    let b = p_signed("b", vec![2, 4, 2], 19);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_broadcast_rhs() {
    let a = p_signed("a", vec![2, 3, 4], 20);
    let b = p_signed("b", vec![4, 2], 21);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_transb_2d() {
    let a = p_signed("a", vec![3, 4], 40);
    let b = p_signed("b", vec![5, 4], 41);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul_transb(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_transb_batched() {
    let a = p_signed("a", vec![2, 3, 4], 42);
    let b = p_signed("b", vec![2, 5, 4], 43);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul_transb(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_transb_shared_rhs() {
    // [b, n, d] · [V, d]ᵀ — the tied-softmax logits shape.
    let a = p_signed("a", vec![2, 3, 4], 44);
    let b = p_signed("b", vec![6, 4], 45);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul_transb(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_transa_2d() {
    let a = p_signed("a", vec![4, 3], 46);
    let b = p_signed("b", vec![4, 5], 47);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul_transa(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn grad_matmul_transa_batched() {
    let a = p_signed("a", vec![2, 4, 3], 48);
    let b = p_signed("b", vec![2, 4, 5], 49);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        g.param(&a).matmul_transa(&g.param(&b)).square().sum_all()
    });
}

#[test]
fn fused_matmuls_match_transpose_composition_bitwise() {
    // Forward values AND gradients of the fused ops must agree bitwise
    // with the transpose-then-matmul composition: both run the same
    // strict k-order accumulation chains.
    let a = p_signed("a", vec![5, 7], 50);
    let b = p_signed("b", vec![9, 7], 51);

    let fused_out;
    {
        let g = Graph::new();
        let loss = g.param(&a).matmul_transb(&g.param(&b)).square().sum_all();
        fused_out = loss.value();
        loss.backward();
    }
    let (ga_fused, gb_fused) = (a.borrow().grad.clone(), b.borrow().grad.clone());
    a.borrow_mut().zero_grad();
    b.borrow_mut().zero_grad();

    let composed_out;
    {
        let g = Graph::new();
        let loss = g
            .param(&a)
            .matmul(&g.param(&b).transpose_last2())
            .square()
            .sum_all();
        composed_out = loss.value();
        loss.backward();
    }
    assert_eq!(fused_out.data(), composed_out.data());
    assert_eq!(ga_fused.data(), a.borrow().grad.data());
    // gB of the composition flows through transpose_last2's backward and
    // lands in the same [n, k] layout as the fused op's direct gradient.
    let gb_composed = b.borrow().grad.clone();
    assert_eq!(gb_fused.dims(), gb_composed.dims());
    assert_eq!(gb_fused.data(), gb_composed.data());
}

#[test]
fn grad_reshape_transpose_permute() {
    let a = p_signed("a", vec![2, 3, 4], 22);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).reshape(vec![6, 4]).square().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).transpose_last2().square().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        let v = g.param(&a).permute(&[2, 0, 1]);
        // Weight each position differently so permutation errors surface.
        let w = Tensor::arange(24).reshape(vec![4, 2, 3]).unwrap();
        v.mul_const(&w).sum_all()
    });
}

#[test]
fn grad_concat() {
    let a = p_signed("a", vec![2, 2], 23);
    let b = p_signed("b", vec![2, 3], 24);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g| {
        let va = g.param(&a);
        let vb = g.param(&b);
        Var::concat(&[&va, &vb], 1).square().sum_all()
    });
}

#[test]
fn grad_slice() {
    let a = p_signed("a", vec![2, 4, 3], 25);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).slice_axis(1, 1, 3).square().sum_all()
    });
}

#[test]
fn grad_index_select_rows() {
    let a = p_signed("a", vec![5, 3], 26);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        // Repeated index 4 exercises gradient accumulation.
        g.param(&a)
            .index_select_rows(&[4, 0, 4, 2])
            .square()
            .sum_all()
    });
}

#[test]
fn grad_sum_mean_axis() {
    let a = p_signed("a", vec![2, 3, 4], 27);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).sum_axis(1, false).square().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).mean_axis(2, true).square().sum_all()
    });
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        g.param(&a).mean_all()
    });
}

#[test]
fn grad_softmax() {
    let a = p_signed("a", vec![3, 4], 28);
    let w = Tensor::arange(12).reshape(vec![3, 4]).unwrap();
    let ac = a.clone();
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, move |g| {
        g.param(&ac).softmax_last().mul_const(&w).sum_all()
    });
}

#[test]
fn grad_log_softmax() {
    let a = p_signed("a", vec![3, 4], 29);
    let w = Tensor::arange(12).reshape(vec![3, 4]).unwrap();
    let ac = a.clone();
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, move |g| {
        g.param(&ac).log_softmax_last().mul_const(&w).sum_all()
    });
}

#[test]
fn grad_cross_entropy() {
    let a = p_signed("a", vec![4, 5], 30);
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a).cross_entropy_with_logits(&[1, 0, 4, 2])
    });
}

#[test]
fn grad_cross_entropy_with_ignored_rows() {
    let a = p_signed("a", vec![4, 5], 31);
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, |g| {
        g.param(&a)
            .cross_entropy_with_logits(&[1, IGNORE_INDEX, 4, IGNORE_INDEX])
    });
    // Ignored rows get exactly zero gradient.
    a.borrow_mut().zero_grad();
    let g = Graph::new();
    let loss = g
        .param(&a)
        .cross_entropy_with_logits(&[1, IGNORE_INDEX, 4, IGNORE_INDEX]);
    loss.backward();
    let grad = a.borrow().grad.clone();
    assert!(grad.row(1).iter().all(|&x| x == 0.0));
    assert!(grad.row(3).iter().all(|&x| x == 0.0));
    assert!(grad.row(0).iter().any(|&x| x != 0.0));
}

#[test]
fn grad_l2_normalize() {
    let a = p_signed("a", vec![3, 4], 32);
    let w = Tensor::arange(12).reshape(vec![3, 4]).unwrap();
    let ac = a.clone();
    assert_grads_close(std::slice::from_ref(&a), 1e-3, TOL, move |g| {
        g.param(&ac).l2_normalize_last(1e-8).mul_const(&w).sum_all()
    });
}

#[test]
fn grad_composite_mlp() {
    // A small end-to-end MLP: exercises interactions between ops.
    let w1 = p_signed("w1", vec![3, 8], 33);
    let b1 = p_signed("b1", vec![8], 34);
    let w2 = p_signed("w2", vec![8, 2], 35);
    let x = {
        let mut rng = StdRng::seed_from_u64(99);
        init::uniform(&mut rng, vec![4, 3], -1.0, 1.0)
    };
    assert_grads_close(&[w1.clone(), b1.clone(), w2.clone()], 1e-3, TOL, move |g| {
        g.constant(x.clone())
            .matmul(&g.param(&w1))
            .add(&g.param(&b1))
            .tanh()
            .matmul(&g.param(&w2))
            .cross_entropy_with_logits(&[0, 1, 1, 0])
    });
}

#[test]
fn grad_value_reused_twice() {
    // A var consumed by two branches must receive both gradient
    // contributions (fan-out accumulation).
    let a = p_signed("a", vec![3], 36);
    assert_grads_close(std::slice::from_ref(&a), EPS, TOL, |g| {
        let v = g.param(&a);
        let left = v.square();
        let right = v.scale(2.0);
        left.add(&right).sum_all()
    });
}

#[test]
fn detach_stops_gradient_flow() {
    let a = Parameter::shared("a", Tensor::from_vec(vec![2.0, 3.0], vec![2]));
    let g = Graph::new();
    let v = g.param(&a);
    let loss = v.detach().mul(&v).sum_all(); // d/da (c·a) = c = value of a
    loss.backward();
    assert_eq!(a.borrow().grad.data(), &[2.0, 3.0]);
}

#[test]
fn backward_is_bitwise_identical_across_simd_dispatch() {
    // The backward pass runs the same FixedOrder GEMM and elementwise
    // kernels as the forward; the SIMD kill switch must not change a
    // single gradient bit. Shapes cover the packed stripe kernel, the
    // small-m row kernel, and ragged tails.
    let run = |simd: bool| -> Vec<Vec<f32>> {
        let was = tensor::tuning::simd_enabled();
        tensor::tuning::set_simd_enabled(simd);
        let a = p_signed("a", vec![5, 19], 60);
        let b = p_signed("b", vec![33, 19], 61);
        let g = Graph::new();
        let loss = g.param(&a).matmul_transb(&g.param(&b)).square().sum_all();
        loss.backward();
        tensor::tuning::set_simd_enabled(was);
        let out = vec![
            loss.value().data().to_vec(),
            a.borrow().grad.data().to_vec(),
            b.borrow().grad.data().to_vec(),
        ];
        out
    };
    assert_eq!(run(true), run(false));
}

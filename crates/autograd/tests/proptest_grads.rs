//! Property-based gradient checks: random shapes and random compositions
//! validated against finite differences.

use autograd::numeric::max_grad_rel_error;
use autograd::{Parameter, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::init;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elementwise_chain_grads_check(r in 1usize..4, c in 1usize..4, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Parameter::shared("p", init::uniform(&mut rng, vec![r, c], 0.3, 1.3));
        let err = max_grad_rel_error(std::slice::from_ref(&p), 1e-3, |g| {
            g.param(&p).log().exp().square().add_scalar(0.5).sqrt().sum_all()
        });
        prop_assert!(err < 3e-2, "rel err {err}");
    }

    #[test]
    fn matmul_grads_check_random_shapes(m in 1usize..4, k in 1usize..4, n in 1usize..4,
                                        seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Parameter::shared("a", init::uniform(&mut rng, vec![m, k], -1.0, 1.0));
        let b = Parameter::shared("b", init::uniform(&mut rng, vec![k, n], -1.0, 1.0));
        let err = max_grad_rel_error(&[a.clone(), b.clone()], 1e-2, |g| {
            g.param(&a).matmul(&g.param(&b)).square().sum_all()
        });
        prop_assert!(err < 3e-2, "rel err {err}");
    }

    #[test]
    fn softmax_ce_grads_check(rows in 1usize..4, classes in 2usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Parameter::shared("p", init::uniform(&mut rng, vec![rows, classes], -1.0, 1.0));
        let targets: Vec<usize> = (0..rows).map(|i| i % classes).collect();
        let t2 = targets.clone();
        let p2 = p.clone();
        let err = max_grad_rel_error(std::slice::from_ref(&p), 1e-3, move |g| {
            g.param(&p2).cross_entropy_with_logits(&t2)
        });
        prop_assert!(err < 3e-2, "rel err {err} (targets {targets:?})");
    }

    #[test]
    fn broadcast_mul_grads_check(r in 2usize..4, c in 2usize..4, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Parameter::shared("a", init::uniform(&mut rng, vec![r, c], -1.0, 1.0));
        let b = Parameter::shared("b", init::uniform(&mut rng, vec![c], -1.0, 1.0));
        let col = Parameter::shared("col", init::uniform(&mut rng, vec![r, 1], -1.0, 1.0));
        let err = max_grad_rel_error(&[a.clone(), b.clone(), col.clone()], 1e-2, |g| {
            g.param(&a).mul(&g.param(&b)).add(&g.param(&col)).square().sum_all()
        });
        prop_assert!(err < 3e-2, "rel err {err}");
    }

    #[test]
    fn concat_slice_grads_check(r in 1usize..4, c1 in 1usize..4, c2 in 1usize..4,
                                seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Parameter::shared("a", init::uniform(&mut rng, vec![r, c1], -1.0, 1.0));
        let b = Parameter::shared("b", init::uniform(&mut rng, vec![r, c2], -1.0, 1.0));
        let err = max_grad_rel_error(&[a.clone(), b.clone()], 1e-2, |g| {
            let va = g.param(&a);
            let vb = g.param(&b);
            let cat = Var::concat(&[&va, &vb], 1);
            cat.slice_axis(1, 0, c1 + c2).square().sum_all()
        });
        prop_assert!(err < 3e-2, "rel err {err}");
    }
}

//! Multi-threaded stress tests for `tensor::pool`: concurrent
//! acquire/recycle must never hand out dirty "zeroed" buffers, never lose
//! or duplicate storage, keep the hit/miss counters consistent, and keep
//! per-class growth bounded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

use tensor::pool;

/// Sizes above the pooling threshold (1024) plus a distinct offset per
/// class so cross-class reuse would be detectable as a length mismatch.
const SIZES: [usize; 3] = [1024 + 1, 2048 + 3, 4096 + 7];

/// The pool is process-global; serialize the tests in this file so the
/// enabled/disabled toggles and stats-delta assertions don't interleave.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn concurrent_acquire_recycle_returns_zeroed_buffers() {
    let _serial = serial();
    pool::set_enabled(true);
    let threads = 8;
    let rounds = 200;
    let barrier = Barrier::new(threads);
    let dirty = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let dirty = &dirty;
            s.spawn(move || {
                barrier.wait();
                for r in 0..rounds {
                    let len = SIZES[(t + r) % SIZES.len()];
                    let mut v = pool::take_zeroed(len);
                    assert_eq!(v.len(), len);
                    if v.iter().any(|&x| x != 0.0) {
                        dirty.fetch_add(1, Ordering::Relaxed);
                    }
                    // Poison the buffer with a thread-distinct pattern so a
                    // zeroing bug in any interleaving shows up elsewhere.
                    let stamp = (t * 1000 + r) as f32 + 0.25;
                    v.iter_mut().for_each(|x| *x = stamp);
                    pool::recycle(v);
                }
            });
        }
    });
    assert_eq!(
        dirty.load(Ordering::Relaxed),
        0,
        "take_zeroed returned non-zero contents under contention"
    );
}

#[test]
fn concurrent_raw_buffers_have_exact_length() {
    let _serial = serial();
    pool::set_enabled(true);
    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                for r in 0..200 {
                    let len = SIZES[(t + r) % SIZES.len()];
                    let v = pool::take_raw(len);
                    // Stale contents are allowed; wrong length never is.
                    assert_eq!(v.len(), len);
                    pool::recycle(v);
                }
            });
        }
    });
}

#[test]
fn stats_monotone_and_consistent_under_contention() {
    let _serial = serial();
    pool::set_enabled(true);
    let (h0, m0) = pool::stats();
    let threads = 4;
    let rounds = 100;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..rounds {
                    let v = pool::take_zeroed(SIZES[0]);
                    pool::recycle(v);
                }
            });
        }
    });
    let (h1, m1) = pool::stats();
    let observed = (h1 - h0) + (m1 - m0);
    assert!(
        observed >= threads * rounds,
        "every pooled-size request is counted exactly once as hit or miss \
         ({observed} < {})",
        threads * rounds
    );
    // With recycling, at least some requests after warmup must be hits.
    assert!(h1 > h0, "no reuse at all under a recycle-heavy workload");
}

/// The per-class cap bounds how much storage a burst can strand in the
/// pool: recycle far more than the cap, then drain and count how many
/// pooled buffers actually come back.
#[test]
fn per_class_growth_is_bounded() {
    let _serial = serial();
    pool::set_enabled(true);
    let len = 8192 + 11; // distinct class, untouched by other tests
    let burst = 200;
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                for _ in 0..burst / 4 {
                    pool::recycle(vec![1.0f32; len]);
                }
            });
        }
    });
    let (h0, _) = pool::stats();
    // Drain: every pooled hit consumes one stored buffer.
    let drained: Vec<Vec<f32>> = (0..burst).map(|_| pool::take_zeroed(len)).collect();
    let (h1, _) = pool::stats();
    let reused = h1 - h0;
    assert!(
        reused <= 32,
        "per-class cap exceeded: {reused} buffers were stored for one size class"
    );
    drop(drained);
}

#[test]
fn disabled_pool_is_safe_under_threads() {
    let _serial = serial();
    pool::set_enabled(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..50 {
                    let v = pool::take_zeroed(SIZES[1]);
                    assert!(v.iter().all(|&x| x == 0.0));
                    pool::recycle(v);
                }
            });
        }
    });
    pool::set_enabled(true);
}

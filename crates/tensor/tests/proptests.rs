//! Property-based tests for tensor algebra.

use proptest::prelude::*;
use tensor::{ops, tuning, Tensor};

fn vec_tensor(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, vec![n])
    })
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c..=r * c)
            .prop_map(move |v| Tensor::from_vec(v, vec![r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_zero_is_identity(a in vec_tensor(64)) {
        let z = Tensor::zeros(a.dims().to_vec());
        let out = ops::add(&a, &z).unwrap();
        prop_assert_eq!(out.data(), a.data());
    }

    #[test]
    fn mul_distributes_over_add(a in vec_tensor(32)) {
        let b = a.map(|x| x * 0.5 + 1.0);
        let c = a.map(|x| -x + 2.0);
        // a*(b+c) == a*b + a*c (within f32 tolerance)
        let lhs = ops::mul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(&ops::mul(&a, &b).unwrap(), &ops::mul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_associates_with_scalar(a in matrix(6), s in -3.0f32..3.0) {
        let b = ops::transpose_last2(&a).unwrap();
        // (s·A)·Aᵀ == s·(A·Aᵀ)
        let mut sa = a.clone();
        sa.scale_inplace(s);
        let lhs = ops::matmul(&sa, &b).unwrap();
        let mut rhs = ops::matmul(&a, &b).unwrap();
        rhs.scale_inplace(s);
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn sum_axis_totals_match_sum_all(a in matrix(8)) {
        let s0 = ops::sum_axis(&a, 0, false).unwrap().sum_all();
        let s1 = ops::sum_axis(&a, 1, false).unwrap().sum_all();
        let total = a.sum_all();
        prop_assert!((s0 - total).abs() < 1e-2 * (1.0 + total.abs()));
        prop_assert!((s1 - total).abs() < 1e-2 * (1.0 + total.abs()));
    }

    #[test]
    fn max_axis_bounded_by_global_max(a in matrix(8)) {
        let m = ops::max_axis(&a, 0, false).unwrap();
        prop_assert!(m.max_all() <= a.max_all() + 1e-6);
        prop_assert!(m.max_all() >= a.max_all() - 1e-6, "global max must appear in some column");
    }

    #[test]
    fn softmax_invariant_to_shift(a in matrix(6)) {
        let shifted = a.map(|x| x + 7.5);
        let s1 = ops::softmax_last(&a);
        let s2 = ops::softmax_last(&shifted);
        for (x, y) in s1.data().iter().zip(s2.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_then_slice_round_trips(a in matrix(6), b_cols in 1usize..6) {
        let r = a.dim(0);
        let b = Tensor::full(vec![r, b_cols], 3.25);
        let cat = ops::concat(&[&a, &b], 1).unwrap();
        let back = ops::slice_axis(&cat, 1, 0, a.dim(1)).unwrap();
        prop_assert_eq!(back.data(), a.data());
        let tail = ops::slice_axis(&cat, 1, a.dim(1), a.dim(1) + b_cols).unwrap();
        prop_assert_eq!(tail.data(), b.data());
    }

    #[test]
    fn permute_inverse_round_trips(a in matrix(6)) {
        let t = a.reshape(vec![a.dim(0), a.dim(1), 1]).unwrap();
        let p = ops::permute(&t, &[2, 0, 1]).unwrap();
        let back = ops::permute(&p, &[1, 2, 0]).unwrap();
        prop_assert_eq!(back.data(), t.data());
    }

    // The fused NT/TN kernels promise *bitwise* agreement with the naive
    // transpose-then-matmul composition: every output element is the same
    // strict k-order f32 accumulation chain. Shapes range past the packed
    // kernel's block sizes (4×8) and below its small-m fallback threshold,
    // so all code paths (packed, ragged tail stripes, dot fallback) are hit.

    #[test]
    fn matmul_transb_bitwise_equals_composition(
        m in 1usize..40, k in 1usize..20, n in 1usize..40, seed in 0u64..1000
    ) {
        let fill = |len: usize, s: u64| -> Vec<f32> {
            let mut x = s.wrapping_mul(6364136223846793005).wrapping_add(seed);
            (0..len).map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 40) as f32 / (1u64 << 24) as f32) * 20.0 - 10.0
            }).collect()
        };
        let a = Tensor::from_vec(fill(m * k, 1), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 2), vec![n, k]);
        let fused = ops::matmul_transb(&a, &b).unwrap();
        let composed = ops::matmul(&a, &ops::transpose_last2(&b).unwrap()).unwrap();
        prop_assert_eq!(fused.dims(), composed.dims());
        // Bitwise, not approximate.
        prop_assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn matmul_transa_bitwise_equals_composition(
        m in 1usize..40, k in 1usize..20, n in 1usize..40, seed in 0u64..1000
    ) {
        let fill = |len: usize, s: u64| -> Vec<f32> {
            let mut x = s.wrapping_mul(6364136223846793005).wrapping_add(seed);
            (0..len).map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 40) as f32 / (1u64 << 24) as f32) * 20.0 - 10.0
            }).collect()
        };
        let a = Tensor::from_vec(fill(k * m, 3), vec![k, m]);
        let b = Tensor::from_vec(fill(k * n, 4), vec![k, n]);
        let fused = ops::matmul_transa(&a, &b).unwrap();
        let composed = ops::matmul(&ops::transpose_last2(&a).unwrap(), &b).unwrap();
        prop_assert_eq!(fused.dims(), composed.dims());
        prop_assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn batched_fused_matmuls_bitwise_equal_composition(
        bs in 1usize..4, m in 1usize..12, k in 1usize..10, n in 1usize..12
    ) {
        let ramp = |len: usize, off: f32| -> Vec<f32> {
            (0..len).map(|i| ((i * 7 + 3) % 23) as f32 * 0.37 - 4.0 + off).collect()
        };
        let a = Tensor::from_vec(ramp(bs * m * k, 0.25), vec![bs, m, k]);
        let b = Tensor::from_vec(ramp(bs * n * k, -1.5), vec![bs, n, k]);
        let nt = ops::matmul_transb(&a, &b).unwrap();
        let nt_ref = ops::matmul(&a, &ops::transpose_last2(&b).unwrap()).unwrap();
        prop_assert_eq!(nt.data(), nt_ref.data());

        // Shared right operand: (bs,m,k) · (n,k)ᵀ.
        let shared = Tensor::from_vec(ramp(n * k, 2.0), vec![n, k]);
        let nt_s = ops::matmul_transb(&a, &shared).unwrap();
        let nt_s_ref = ops::matmul(&a, &ops::transpose_last2(&shared).unwrap()).unwrap();
        prop_assert_eq!(nt_s.data(), nt_s_ref.data());

        let at = Tensor::from_vec(ramp(bs * k * m, 0.5), vec![bs, k, m]);
        let bt = Tensor::from_vec(ramp(bs * k * n, 1.0), vec![bs, k, n]);
        let tn = ops::matmul_transa(&at, &bt).unwrap();
        let tn_ref = ops::matmul(&ops::transpose_last2(&at).unwrap(), &bt).unwrap();
        prop_assert_eq!(tn.data(), tn_ref.data());
    }

    #[test]
    fn masked_matmul_bitwise_equals_dense(a in matrix(10), zero_stride in 2usize..5) {
        // Sparsify a deterministically, then check the zero-skip kernel
        // agrees bitwise with the dense one.
        let mut av = a.data().to_vec();
        for (i, x) in av.iter_mut().enumerate() {
            if i % zero_stride != 0 {
                *x = 0.0;
            }
        }
        let a = Tensor::from_vec(av, a.dims().to_vec());
        let b = Tensor::from_vec(
            (0..a.dim(1) * 6).map(|i| (i % 11) as f32 - 5.0).collect::<Vec<_>>(),
            vec![a.dim(1), 6],
        );
        let masked = ops::matmul2d_masked(&a, &b).unwrap();
        let dense = ops::matmul2d(&a, &b).unwrap();
        prop_assert_eq!(masked.data(), dense.data());
    }

    // SIMD dispatch parity: every vectorised op is declared
    // `SimdPath::OrderPreserving`, so flipping the kill switch must never
    // change a single bit — the vector kernels keep one accumulation
    // chain per output element in the same k-order as the scalar loop.
    // (No ReassocSafe op currently has a SIMD path; if one gains a
    // reassociating kernel the registry audit in `analysis` fires and a
    // ULP-bounded variant of these tests is the right follow-up.)

    #[test]
    fn simd_gemms_bitwise_equal_scalar(
        m in 1usize..48, k in 1usize..24, n in 1usize..48, seed in 0u64..1000
    ) {
        let fill = |len: usize, s: u64| -> Vec<f32> {
            let mut x = s.wrapping_mul(6364136223846793005).wrapping_add(seed);
            (0..len).map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 40) as f32 / (1u64 << 24) as f32) * 20.0 - 10.0
            }).collect()
        };
        let a = Tensor::from_vec(fill(m * k, 1), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 2), vec![n, k]);
        let bt = ops::transpose_last2(&b).unwrap();
        let at = ops::transpose_last2(&a).unwrap();
        let was = tuning::simd_enabled();
        tuning::set_simd_enabled(true);
        let nt_simd = ops::matmul_transb(&a, &b).unwrap();
        let nn_simd = ops::matmul(&a, &bt).unwrap();
        let tn_simd = ops::matmul_transa(&at, &bt).unwrap();
        tuning::set_simd_enabled(false);
        let nt_scalar = ops::matmul_transb(&a, &b).unwrap();
        let nn_scalar = ops::matmul(&a, &bt).unwrap();
        let tn_scalar = ops::matmul_transa(&at, &bt).unwrap();
        tuning::set_simd_enabled(was);
        prop_assert_eq!(nt_simd.data(), nt_scalar.data());
        prop_assert_eq!(nn_simd.data(), nn_scalar.data());
        prop_assert_eq!(tn_simd.data(), tn_scalar.data());
    }

    #[test]
    fn simd_elementwise_bitwise_equals_scalar(a in vec_tensor(600)) {
        // Lengths past the vector width force the SIMD main loop plus a
        // ragged tail; tiny lengths exercise the scalar-only fallback.
        let b = a.map(|x| x * 0.75 - 2.0);
        let was = tuning::simd_enabled();
        tuning::set_simd_enabled(true);
        let simd: Vec<Tensor> = [ops::add, ops::sub, ops::mul, ops::div]
            .iter()
            .map(|op| op(&a, &b).unwrap())
            .collect();
        tuning::set_simd_enabled(false);
        let scalar: Vec<Tensor> = [ops::add, ops::sub, ops::mul, ops::div]
            .iter()
            .map(|op| op(&a, &b).unwrap())
            .collect();
        tuning::set_simd_enabled(was);
        for (s, c) in simd.iter().zip(scalar.iter()) {
            prop_assert_eq!(s.data(), c.data());
        }
    }

    #[test]
    fn simd_min_n_threshold_does_not_change_bits(
        m in 1usize..6, k in 1usize..24, n in 1usize..48
    ) {
        // `simd_min_n` gates the small-m row kernel; any threshold must
        // produce identical bits since both sides are order-preserving.
        let ramp = |len: usize, off: f32| -> Vec<f32> {
            (0..len).map(|i| ((i * 13 + 5) % 31) as f32 * 0.21 - 3.0 + off).collect()
        };
        let a = Tensor::from_vec(ramp(m * k, 0.5), vec![m, k]);
        let b = Tensor::from_vec(ramp(n * k, -1.25), vec![n, k]);
        let (was, min0) = (tuning::simd_enabled(), tuning::simd_min_n());
        tuning::set_simd_enabled(true);
        tuning::set_simd_min_n(1);
        let lo = ops::matmul_transb(&a, &b).unwrap();
        tuning::set_simd_min_n(usize::MAX);
        let hi = ops::matmul_transb(&a, &b).unwrap();
        tuning::set_simd_enabled(was);
        tuning::set_simd_min_n(min0);
        prop_assert_eq!(lo.data(), hi.data());
    }

    #[test]
    fn index_select_then_scatter_is_count_weighted(rows in 2usize..6, cols in 1usize..5) {
        let table = Tensor::ones(vec![rows, cols]);
        let indices: Vec<usize> = (0..rows).chain(0..rows).collect(); // each row twice
        let picked = ops::index_select_rows(&table, &indices).unwrap();
        let mut grad = Tensor::zeros(vec![rows, cols]);
        ops::scatter_add_rows(&mut grad, &indices, &picked);
        // Every row selected twice with value 1 ⇒ gradient 2 everywhere.
        prop_assert!(grad.data().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }
}

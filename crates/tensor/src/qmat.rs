//! Quantised storage for frozen (inference-only) weight matrices.
//!
//! `msgc serve` can halve (bf16) or quarter (int8) the resident bytes of
//! `Frozen*` module weights. A [`QuantMatrix`] wraps one rank-2 row-major
//! weight in one of three stores:
//!
//! * **f32** — the original [`Tensor`], untouched. This is the default
//!   serving mode; every kernel delegates to the exact PR 3/PR 6 f32 path,
//!   so frozen-forward parity stays bitwise.
//! * **bf16** — the top 16 bits of each f32, rounded to nearest-even.
//!   Dequantisation (`(bits as u32) << 16`) is exact, so the served model
//!   behaves identically to one whose weights were rounded once at load.
//! * **int8** — symmetric per-row scales (`scale = max|row| / 127`),
//!   `q = round(x / scale)` clamped to ±127.
//!
//! Quantised stores are decoded *inside the GEMM packing step*
//! (`ops::matmul_transb_q` / `ops::matmul_q`): the packed stripe panels are
//! filled straight from the compressed bytes via the SIMD bf16 widening
//! kernel, so no full-size f32 copy of a quantised matrix is ever resident.
//! Scale/zero-point derivation uses the reassociating [`crate::simd::max_abs`]
//! reduction — legal because quantisation happens once at load, outside any
//! `FixedOrder` tape op.

use crate::bug::OrBug;
use crate::{simd, Tensor, TensorError};

/// Storage precision for a frozen weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Keep the original f32 tensor (bitwise-identical serving).
    F32,
    /// bf16: upper 16 bits of f32, round-to-nearest-even. 2 bytes/weight.
    Bf16,
    /// int8 with a per-row symmetric scale. 1 byte/weight + 4 bytes/row.
    Int8,
}

impl QuantMode {
    /// Parses a CLI spelling (`none`/`f32`, `bf16`, `int8`).
    pub fn parse(s: &str) -> Option<QuantMode> {
        match s {
            "none" | "f32" => Some(QuantMode::F32),
            "bf16" => Some(QuantMode::Bf16),
            "int8" => Some(QuantMode::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantMode::F32 => write!(f, "f32"),
            QuantMode::Bf16 => write!(f, "bf16"),
            QuantMode::Int8 => write!(f, "int8"),
        }
    }
}

/// Rounds an f32 to bf16 (round-to-nearest-even), returning the raw bits.
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Preserve NaN-ness: keep the sign/exponent, force a quiet payload
        // bit so truncation cannot produce Inf.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round_bias = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(round_bias) >> 16) as u16
}

/// Widens bf16 raw bits back to f32 (exact).
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

#[derive(Debug, Clone)]
pub(crate) enum Store {
    F32(Tensor),
    Bf16(Vec<u16>),
    Int8 { q: Vec<i8>, scales: Vec<f32> },
}

/// A rank-2 row-major weight matrix in f32, bf16, or int8 storage.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    pub(crate) store: Store,
}

impl QuantMatrix {
    /// Wraps `t` (must be rank 2) in the requested storage mode. `F32`
    /// moves the tensor in without copying; the quantised modes encode once
    /// and drop the f32 data.
    pub fn from_tensor(t: Tensor, mode: QuantMode) -> crate::Result<QuantMatrix> {
        if t.shape().dims().len() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "quantize",
                lhs: t.shape().dims().to_vec(),
                rhs: vec![],
            });
        }
        let rows = t.shape().dims()[0];
        let cols = t.shape().dims()[1];
        let store = match mode {
            QuantMode::F32 => Store::F32(t),
            QuantMode::Bf16 => Store::Bf16(t.data().iter().map(|&x| f32_to_bf16(x)).collect()),
            QuantMode::Int8 => {
                let data = t.data();
                let mut q = Vec::with_capacity(rows * cols);
                let mut scales = Vec::with_capacity(rows);
                for r in 0..rows {
                    let row = &data[r * cols..(r + 1) * cols];
                    let m = simd::max_abs(row);
                    let scale = if m > 0.0 { m / 127.0 } else { 1.0 };
                    scales.push(scale);
                    for &x in row {
                        q.push((x / scale).round().clamp(-127.0, 127.0) as i8);
                    }
                }
                Store::Int8 { q, scales }
            }
        };
        Ok(QuantMatrix { rows, cols, store })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The storage mode this matrix currently holds.
    pub fn mode(&self) -> QuantMode {
        match &self.store {
            Store::F32(_) => QuantMode::F32,
            Store::Bf16(_) => QuantMode::Bf16,
            Store::Int8 { .. } => QuantMode::Int8,
        }
    }

    /// Bytes resident for the weight payload (excludes struct overhead).
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            Store::F32(_) => self.rows * self.cols * 4,
            Store::Bf16(_) => self.rows * self.cols * 2,
            Store::Int8 { .. } => self.rows * self.cols + self.rows * 4,
        }
    }

    /// Borrow of the original tensor when stored as f32 (the bitwise path).
    pub fn as_f32(&self) -> Option<&Tensor> {
        match &self.store {
            Store::F32(t) => Some(t),
            _ => None,
        }
    }

    /// Decodes `dst.len()` elements of row `row` starting at column
    /// `col_start` — the primitive the GEMM packing step uses, so quantised
    /// weights never materialise a full f32 copy.
    pub fn write_row_segment(&self, row: usize, col_start: usize, dst: &mut [f32]) {
        debug_assert!(row < self.rows && col_start + dst.len() <= self.cols);
        let start = row * self.cols + col_start;
        match &self.store {
            Store::F32(t) => dst.copy_from_slice(&t.data()[start..start + dst.len()]),
            Store::Bf16(bits) => simd::dequant_bf16(dst, &bits[start..start + dst.len()]),
            Store::Int8 { q, scales } => {
                let scale = scales[row];
                let src = &q[start..start + dst.len()];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d = v as f32 * scale;
                }
            }
        }
    }

    /// Decodes the whole matrix row-major into `dst`
    /// (`dst.len() == rows·cols`). For bf16 this is one SIMD widening pass
    /// over the contiguous payload.
    pub fn decode_into(&self, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.rows * self.cols);
        match &self.store {
            Store::F32(t) => dst.copy_from_slice(t.data()),
            Store::Bf16(bits) => simd::dequant_bf16(dst, bits),
            Store::Int8 { .. } => {
                for r in 0..self.rows {
                    self.write_row_segment(r, 0, &mut dst[r * self.cols..(r + 1) * self.cols]);
                }
            }
        }
    }

    /// Decodes the full matrix to a dense f32 tensor (`[rows, cols]`).
    pub fn dequantize(&self) -> Tensor {
        match &self.store {
            Store::F32(t) => t.clone(),
            _ => {
                let mut data = vec![0.0f32; self.rows * self.cols];
                self.decode_into(&mut data);
                Tensor::from_vec(data, vec![self.rows, self.cols])
            }
        }
    }

    /// Re-encodes the matrix in place to `mode` (no-op when already
    /// there). F32 → quantised is the intended one-shot load-time path;
    /// quantised → quantised round-trips through f32 and compounds
    /// rounding, so callers should quantise from the f32 original.
    pub fn requantize(&mut self, mode: QuantMode) {
        if self.mode() == mode {
            return;
        }
        let dense = self.dequantize();
        *self = QuantMatrix::from_tensor(dense, mode).or_bug("requantize keeps rank 2");
    }

    /// Gathers the given rows into a dense `[indices.len(), cols]` tensor,
    /// decoding quantised rows on the fly (the frozen-embedding lookup).
    pub fn select_rows(&self, indices: &[usize]) -> crate::Result<Tensor> {
        for &i in indices {
            if i >= self.rows {
                return Err(TensorError::IndexOutOfRange {
                    index: i,
                    bound: self.rows,
                });
            }
        }
        let mut data = vec![0.0f32; indices.len() * self.cols];
        for (slot, &r) in indices.iter().enumerate() {
            self.write_row_segment(r, 0, &mut data[slot * self.cols..(slot + 1) * self.cols]);
        }
        Ok(Tensor::from_vec(data, vec![indices.len(), self.cols]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect();
        Tensor::from_vec(data, vec![rows, cols])
    }

    #[test]
    fn bf16_round_trip_is_nearest_even() {
        // Values exactly representable in bf16 survive unchanged.
        for x in [0.0f32, -0.0, 1.0, -1.5, 0.25, 240.0, f32::INFINITY] {
            assert_eq!(bf16_to_f32(f32_to_bf16(x)).to_bits(), x.to_bits());
        }
        // Rounding is to nearest (error bounded by half a ulp of bf16).
        for i in 0..1000u32 {
            let x = f32::from_bits(0x3F80_0000 + i * 77);
            let back = bf16_to_f32(f32_to_bf16(x));
            assert!((back - x).abs() <= x.abs() * (1.0 / 256.0));
        }
        // NaN stays NaN.
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn f32_mode_is_zero_copy_passthrough() {
        let t = sample(5, 8, 1);
        let want = t.data().to_vec();
        let q = QuantMatrix::from_tensor(t, QuantMode::F32).unwrap();
        assert_eq!(q.mode(), QuantMode::F32);
        assert_eq!(q.resident_bytes(), 5 * 8 * 4);
        assert_eq!(q.as_f32().unwrap().data(), &want[..]);
        assert_eq!(q.dequantize().data(), &want[..]);
    }

    #[test]
    fn bf16_halves_bytes_and_bounds_error() {
        let t = sample(16, 32, 2);
        let want = t.data().to_vec();
        let q = QuantMatrix::from_tensor(t, QuantMode::Bf16).unwrap();
        assert_eq!(q.resident_bytes(), 16 * 32 * 2);
        let d = q.dequantize();
        for (&got, &x) in d.data().iter().zip(&want) {
            assert!((got - x).abs() <= x.abs() * (1.0 / 256.0) + 1e-30);
        }
    }

    #[test]
    fn int8_quarter_bytes_and_bounds_error() {
        let t = sample(16, 32, 3);
        let want = t.data().to_vec();
        let q = QuantMatrix::from_tensor(t, QuantMode::Int8).unwrap();
        assert_eq!(q.resident_bytes(), 16 * 32 + 16 * 4);
        let d = q.dequantize();
        for (r, row) in want.chunks(32).enumerate() {
            let maxabs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            for (c, &x) in row.iter().enumerate() {
                let got = d.data()[r * 32 + c];
                assert!(
                    (got - x).abs() <= maxabs / 127.0 * 0.5 + 1e-30,
                    "int8 error too large at ({r},{c}): {got} vs {x}"
                );
            }
        }
    }

    #[test]
    fn row_segments_match_dequantize() {
        for mode in [QuantMode::F32, QuantMode::Bf16, QuantMode::Int8] {
            let q = QuantMatrix::from_tensor(sample(7, 13, 4), mode).unwrap();
            let full = q.dequantize();
            let mut seg = vec![0.0f32; 5];
            q.write_row_segment(3, 6, &mut seg);
            assert_eq!(&full.data()[3 * 13 + 6..3 * 13 + 11], &seg[..]);
            let sel = q.select_rows(&[6, 0, 3]).unwrap();
            assert_eq!(&sel.data()[..13], &full.data()[6 * 13..7 * 13]);
            assert_eq!(&sel.data()[26..], &full.data()[3 * 13..4 * 13]);
        }
    }

    #[test]
    fn select_rows_bounds_checked() {
        let q = QuantMatrix::from_tensor(sample(4, 4, 5), QuantMode::Bf16).unwrap();
        assert!(q.select_rows(&[4]).is_err());
    }
}

//! Tensor operations: broadcasting elementwise math, matrix multiplication,
//! reductions, softmax, and shape manipulation.
//!
//! All functions are free functions taking `&Tensor` and returning owned
//! results. Errors are reported via [`crate::TensorError`]; shape panics are
//! reserved for internal invariant violations.

use rayon::prelude::*;

use std::sync::OnceLock;

use crate::shape::{broadcast_shapes, broadcast_strides, Shape};
use crate::{pool, simd, tuning, Result, Tensor, TensorError};

/// Telemetry: one call + one output-cell count per GEMM-family entry point
/// (batched products count once with their total output size). Both are pure
/// functions of the executed work (shard partitioning never changes *what*
/// is multiplied), so they are deterministic across thread counts. Handles
/// are interned once and the hot-path cost is a relaxed atomic load when
/// telemetry is disabled.
pub(crate) fn gemm_telemetry(out_cells: u64) {
    static CALLS: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    static CELLS: OnceLock<&'static telemetry::Counter> = OnceLock::new();
    CALLS
        .get_or_init(|| telemetry::metrics::counter("tensor.gemm.calls", true))
        .inc();
    CELLS
        .get_or_init(|| telemetry::metrics::counter("tensor.gemm.cells", true))
        .add(out_cells);
}

// ---------------------------------------------------------------------------
// Elementwise binary ops with broadcasting
// ---------------------------------------------------------------------------
//
// Serial/parallel dispatch cutoffs live in [`crate::tuning`]. Each output
// element is computed independently of the partitioning, so the parallel
// paths are bitwise identical to the serial ones for any cutoff values.

fn binary_broadcast(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    simd_kind: Option<simd::BinKind>,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    let par_min = tuning::par_min_elems();
    let blk = tuning::par_block();
    if a.dims() == b.dims() {
        // Fast path: identical shapes. Ops declared in
        // `determinism::SIMD_OPS` take the explicit SIMD kernel here; it is
        // lane-pure (one lane = one output element), so serial, parallel,
        // and SIMD variants all agree bitwise for any cutoffs.
        let (ad, bd) = (a.data(), b.data());
        let n = ad.len();
        let mut data = vec![0.0f32; n];
        let level = match simd_kind {
            Some(_) if n >= tuning::simd_min_n() => simd::active(),
            _ => simd::Level::Scalar,
        };
        if n >= par_min {
            data.par_chunks_mut(blk)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let s = ci * blk;
                    match simd_kind {
                        Some(kind) if level != simd::Level::Scalar => {
                            simd::binary(
                                level,
                                kind,
                                &ad[s..s + chunk.len()],
                                &bd[s..s + chunk.len()],
                                chunk,
                            );
                        }
                        _ => {
                            for (i, o) in chunk.iter_mut().enumerate() {
                                *o = f(ad[s + i], bd[s + i]);
                            }
                        }
                    }
                });
        } else {
            match simd_kind {
                Some(kind) if level != simd::Level::Scalar => {
                    simd::binary(level, kind, ad, bd, &mut data);
                }
                _ => {
                    for (i, o) in data.iter_mut().enumerate() {
                        *o = f(ad[i], bd[i]);
                    }
                }
            }
        }
        return Ok(Tensor::from_vec(data, a.dims().to_vec()));
    }
    let out_dims =
        broadcast_shapes(a.dims(), b.dims()).map_err(|_| TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        })?;
    let out_shape = Shape::new(out_dims.clone());
    let sa = broadcast_strides(a.dims(), &out_dims);
    let sb = broadcast_strides(b.dims(), &out_dims);
    let n = out_shape.numel();
    let mut data = vec![0.0f32; n];
    if n >= par_min {
        data.par_chunks_mut(blk)
            .enumerate()
            .for_each(|(ci, chunk)| {
                broadcast_fill(chunk, ci * blk, a.data(), b.data(), &sa, &sb, &out_dims, &f);
            });
    } else {
        broadcast_fill(&mut data, 0, a.data(), b.data(), &sa, &sb, &out_dims, &f);
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Fills `out` with `f(a, b)` for the linear output range starting at
/// `start`, walking both inputs with an odometer over the broadcast strides.
/// Seeding the odometer from an arbitrary `start` lets parallel blocks begin
/// mid-tensor.
#[allow(clippy::too_many_arguments)]
fn broadcast_fill(
    out: &mut [f32],
    start: usize,
    ad: &[f32],
    bd: &[f32],
    sa: &[usize],
    sb: &[usize],
    out_dims: &[usize],
    f: &(impl Fn(f32, f32) -> f32 + Sync),
) {
    let ndim = out_dims.len();
    let mut idx = vec![0usize; ndim];
    let mut off_a = 0usize;
    let mut off_b = 0usize;
    let mut rem = start;
    for axis in (0..ndim).rev() {
        let d = rem % out_dims[axis];
        rem /= out_dims[axis];
        idx[axis] = d;
        off_a += d * sa[axis];
        off_b += d * sb[axis];
    }
    for o in out.iter_mut() {
        *o = f(ad[off_a], bd[off_b]);
        // Odometer increment over the output index space, updating the two
        // input offsets incrementally.
        for axis in (0..ndim).rev() {
            idx[axis] += 1;
            off_a += sa[axis];
            off_b += sb[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            off_a -= sa[axis] * out_dims[axis];
            off_b -= sb[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
}

/// Elementwise `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("add", a, b, Some(simd::BinKind::Add), |x, y| x + y)
}

/// Elementwise `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("sub", a, b, Some(simd::BinKind::Sub), |x, y| x - y)
}

/// Elementwise `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("mul", a, b, Some(simd::BinKind::Mul), |x, y| x * y)
}

/// Elementwise `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("div", a, b, Some(simd::BinKind::Div), |x, y| x / y)
}

/// Elementwise maximum with broadcasting (no SIMD path declared — scalar
/// only until it earns an entry in `determinism::SIMD_OPS`).
pub fn maximum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("maximum", a, b, None, f32::max)
}

/// Reduces `grad` (shaped like the broadcast output) back to `target_dims`
/// by summing over broadcast axes. This is the adjoint of broadcasting and
/// the workhorse of autograd for elementwise ops.
pub fn unbroadcast(grad: &Tensor, target_dims: &[usize]) -> Tensor {
    if grad.dims() == target_dims {
        return grad.clone();
    }
    let gdims = grad.dims().to_vec();
    let ndim = gdims.len();
    let offset = ndim - target_dims.len();
    let mut out = Tensor::zeros(target_dims.to_vec());
    let t_strides = Shape::new(target_dims.to_vec()).strides();
    // Stride-0 mapping from output-space axes into the target buffer.
    let mut map = vec![0usize; ndim];
    for i in 0..target_dims.len() {
        map[offset + i] = if target_dims[i] == 1 && gdims[offset + i] != 1 {
            0
        } else {
            t_strides[i]
        };
    }
    let mut idx = vec![0usize; ndim];
    let mut off_t = 0usize;
    let gd = grad.data();
    let od = out.data_mut();
    for &g in gd.iter() {
        od[off_t] += g;
        for axis in (0..ndim).rev() {
            idx[axis] += 1;
            off_t += map[axis];
            if idx[axis] < gdims[axis] {
                break;
            }
            off_t -= map[axis] * gdims[axis];
            idx[axis] = 0;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// `C = A · B` for 2-D matrices `(m,k)·(k,n) → (m,n)`.
///
/// Uses an `i-k-j` loop order so the inner loop is a contiguous
/// multiply-accumulate over rows of `B`, which auto-vectorises. Rows are
/// processed in parallel via rayon when the problem is large enough.
pub fn matmul2d(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul2d",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    gemm_telemetry((m * n) as u64);
    let mut out = Tensor::zeros(vec![m, n]);
    gemm_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// True when a GEMM with `m` output rows and `k·n` per-row work should take
/// the row-parallel rayon path (see [`crate::tuning`] for the knobs). Both
/// paths are bitwise identical — each output row is an independent strict
/// `k`-order accumulation.
fn gemm_parallel(m: usize, k: usize, n: usize) -> bool {
    m >= tuning::gemm_par_rows() && k * n >= tuning::gemm_par_row_work()
}

/// Dense GEMM kernel: `out[m×n] += a[m×k] · b[k×n]` (out must be zeroed by
/// the caller for a pure product).
pub(crate) fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if gemm_parallel(m, k, n) {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
            gemm_row(&a[i * k..(i + 1) * k], b, out_row, k, n);
        });
    } else {
        for i in 0..m {
            gemm_row(
                &a[i * k..(i + 1) * k],
                b,
                &mut out[i * n..(i + 1) * n],
                k,
                n,
            );
        }
    }
}

/// Dense row kernel: unconditional multiply-accumulate over rows of `b`.
///
/// Deliberately branch-free: a per-`k`-step `aik == 0.0` test costs a
/// compare+branch in the hot loop and only pays off when `a` is mostly
/// zero. Skipping a zero `aik` is bitwise-identical to accumulating it for
/// finite `b` (the accumulator starts at `+0.0` and IEEE-754 addition can
/// never turn it into `-0.0`), so sparse callers can use
/// [`matmul2d_masked`] without changing results.
///
/// Wide enough rows dispatch to the SIMD axpy kernel, which keeps the same
/// strict `kk`-outer order with one lane per output column — bitwise
/// identical to the scalar loop (see `crate::simd`).
#[inline]
fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    if n >= tuning::simd_min_n() {
        let level = simd::active();
        if level != simd::Level::Scalar {
            return simd::gemm_row(level, a_row, b, out_row, k, n);
        }
    }
    for (kk, &aik) in a_row.iter().enumerate().take(k) {
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += aik * bv;
        }
    }
}

/// Row kernel that skips exact-zero `a` entries. Only worthwhile when a
/// large fraction of `a` is exactly zero (padded/masked rows); see
/// [`gemm_row`] for why both kernels agree bitwise on finite data.
#[inline]
fn gemm_row_zskip(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    for (kk, &aik) in a_row.iter().enumerate().take(k) {
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += aik * bv;
        }
    }
}

/// `A · B` for 2-D matrices where `A` is expected to contain many exact
/// zeros (padded or masked rows): each zero entry of `A` skips a whole
/// row-of-`B` multiply-accumulate.
///
/// For finite inputs the result is bitwise identical to [`matmul2d`]; on a
/// dense `A` it is slower (one extra branch per `k` step), which is why the
/// dense path no longer carries the test. `BENCH_8.json` reports both
/// kernels on dense and 75 %-zero workloads.
pub fn matmul2d_masked(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul2d_masked",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    gemm_telemetry((m * n) as u64);
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    if gemm_parallel(m, k, n) {
        od.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
            gemm_row_zskip(&ad[i * k..(i + 1) * k], bd, out_row, k, n);
        });
    } else {
        for i in 0..m {
            gemm_row_zskip(
                &ad[i * k..(i + 1) * k],
                bd,
                &mut od[i * n..(i + 1) * n],
                k,
                n,
            );
        }
    }
    Ok(out)
}

/// Batched matmul.
///
/// Supported operand ranks:
/// * `(m,k) · (k,n)` — plain 2-D.
/// * `(b,m,k) · (b,k,n)` — per-batch product.
/// * `(b,m,k) · (k,n)` — shared right operand broadcast over the batch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    match (a.ndim(), b.ndim()) {
        (2, 2) => matmul2d(a, b),
        (3, 3) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != bs || b.dim(1) != k {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul",
                    lhs: a.dims().to_vec(),
                    rhs: b.dims().to_vec(),
                });
            }
            let n = b.dim(2);
            gemm_telemetry((bs * m * n) as u64);
            let mut out = Tensor::zeros(vec![bs, m, n]);
            let (ad, bd) = (a.data(), b.data());
            let od = out.data_mut();
            for i in 0..bs {
                gemm_into(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * k * n..(i + 1) * k * n],
                    &mut od[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != k {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul",
                    lhs: a.dims().to_vec(),
                    rhs: b.dims().to_vec(),
                });
            }
            let n = b.dim(1);
            // Collapse the batch into rows: (b·m, k) · (k, n).
            let flat = a.reshape(vec![bs * m, k])?;
            let out = matmul2d(&flat, b)?;
            out.reshape(vec![bs, m, n])
        }
        _ => Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Fused transposed GEMM (NT / TN)
// ---------------------------------------------------------------------------
//
// `matmul_transb` (A·Bᵀ) and `matmul_transa` (Aᵀ·B) never materialize a
// transpose. Both share one register-tiled micro-kernel over packed panels:
//
// * B is packed ONCE per call into kk-major, `GEMM_NR`-wide stripes, reused
//   across every row block (for NT this *is* the transpose, amortised into
//   the pack; for TN it is a simple column gather).
// * Each `GEMM_MR`-row block of A is packed kk-major and compact
//   (`apanel[kk·MR + r]`), so each micro-kernel step broadcasts one A value
//   per row from a contiguous 4-float group.
// * The micro-kernel keeps a `GEMM_MR × GEMM_NR` accumulator block in
//   registers and dispatches per stripe pair to `crate::simd` (AVX2 /
//   NEON / scalar — all bitwise-identical by construction).
//
// Bitwise contract: every output element is one strict `k`-order f32
// accumulation chain starting at +0.0 — exactly the chain the naive
// transpose-then-[`matmul`] composition produces — and zero-padded dead
// lanes are never copied out. `tests/proptests.rs` asserts bitwise equality
// against the composition on randomized shapes.

/// Rows per register micro-tile in the packed NT/TN kernels.
const GEMM_MR: usize = 4;
/// Columns per register micro-tile (one packed stripe of B).
const GEMM_NR: usize = 8;
/// Below this many output rows the packed kernels fall back to direct
/// loops: the B pack is O(k·n) and cannot be amortised over few rows.
const GEMM_MIN_PACK_ROWS: usize = 8;

/// Packs rows `j..j+jb` of `b` (`n×k` row-major, the NT right operand) into
/// one kk-major stripe: `panel[kk·NR + c] = b[(j+c)·k + kk]`. Dead lanes
/// (`c >= jb`) are zeroed; they only feed accumulator lanes that are never
/// copied out.
fn pack_b_nt(b: &[f32], panel: &mut [f32], j: usize, jb: usize, k: usize) {
    if jb == GEMM_NR {
        for kk in 0..k {
            let dst = &mut panel[kk * GEMM_NR..(kk + 1) * GEMM_NR];
            for (c, d) in dst.iter_mut().enumerate() {
                *d = b[(j + c) * k + kk];
            }
        }
    } else {
        for kk in 0..k {
            let dst = &mut panel[kk * GEMM_NR..(kk + 1) * GEMM_NR];
            for (c, d) in dst.iter_mut().enumerate() {
                *d = if c < jb { b[(j + c) * k + kk] } else { 0.0 };
            }
        }
    }
}

/// Packs columns `j..j+jb` of `b` (`k×n` row-major, the TN right operand)
/// into one kk-major stripe: `panel[kk·NR + c] = b[kk·n + j + c]`.
fn pack_b_tn(b: &[f32], panel: &mut [f32], j: usize, jb: usize, k: usize, n: usize) {
    for kk in 0..k {
        let src = &b[kk * n..(kk + 1) * n];
        let dst = &mut panel[kk * GEMM_NR..(kk + 1) * GEMM_NR];
        for (c, d) in dst.iter_mut().enumerate() {
            *d = if c < jb { src[j + c] } else { 0.0 };
        }
    }
}

/// Packs one `GEMM_MR`-row block of the effective left operand kk-major and
/// compact: `apanel[kk·MR + r] = get(r, kk)` (dead rows `r >= ib` are
/// zero). Every micro-kernel level broadcasts one value per row, so no
/// replication is needed and the pack moves 4× less data than the old rep4
/// layout.
fn pack_a_quad(apanel: &mut [f32], ib: usize, k: usize, get: impl Fn(usize, usize) -> f32) {
    for kk in 0..k {
        let dst = &mut apanel[kk * GEMM_MR..(kk + 1) * GEMM_MR];
        for (r, d) in dst.iter_mut().enumerate() {
            *d = if r < ib { get(r, kk) } else { 0.0 };
        }
    }
}

/// Register-tiled micro-kernel: multiplies one packed `GEMM_MR`-row block of
/// A (`apanel`, kk-major, compact) against every packed stripe of B (`bstore`),
/// overwriting `ib` rows of `out_block` (row-major, row stride `n`).
///
/// `acc[r][c]` accumulates its products in strict `kk` order, so each output
/// element is bitwise identical to a scalar dot product over `k`.
///
/// The per-stripe accumulation dispatches to `crate::simd::stripe_acc`
/// (AVX2: one 8-lane vector per row; NEON: two 4-lane vectors per row;
/// scalar otherwise). Every level keeps one lane per output column with
/// separate multiply/add, so the dispatch level never changes output bits.
fn gemm_micro_block(
    apanel: &[f32],
    bstore: &[f32],
    out_block: &mut [f32],
    ib: usize,
    k: usize,
    n: usize,
) {
    let nstripes = n.div_ceil(GEMM_NR);
    let level = simd::active();
    let ap = &apanel[..k * GEMM_MR];
    let copy_out = |acc: &[[f32; GEMM_NR]; GEMM_MR], s: usize, out_block: &mut [f32]| {
        let j = s * GEMM_NR;
        let jb = (n - j).min(GEMM_NR);
        for (r, accr) in acc.iter().enumerate().take(ib) {
            out_block[r * n + j..r * n + j + jb].copy_from_slice(&accr[..jb]);
        }
    };
    let mut s = 0;
    // Stripe pairs share the A broadcasts (dual-stripe kernel); the odd
    // remainder stripe runs the single-stripe kernel. Pairing never changes
    // bits — each output element's chain is per-stripe-independent.
    while s + 2 <= nstripes {
        let b0 = &bstore[s * k * GEMM_NR..(s + 1) * k * GEMM_NR];
        let b1 = &bstore[(s + 1) * k * GEMM_NR..(s + 2) * k * GEMM_NR];
        let mut acc0 = [[0.0f32; GEMM_NR]; GEMM_MR];
        let mut acc1 = [[0.0f32; GEMM_NR]; GEMM_MR];
        simd::stripe_acc2(level, ap, b0, b1, &mut acc0, &mut acc1);
        copy_out(&acc0, s, out_block);
        copy_out(&acc1, s + 1, out_block);
        s += 2;
    }
    if s < nstripes {
        let bpanel = &bstore[s * k * GEMM_NR..(s + 1) * k * GEMM_NR];
        let mut acc = [[0.0f32; GEMM_NR]; GEMM_MR];
        simd::stripe_acc(level, ap, bpanel, &mut acc);
        copy_out(&acc, s, out_block);
    }
}

/// Packs all of B for one fused GEMM into pooled scratch, one
/// [`pack_b_nt`]/[`pack_b_tn`] stripe at a time.
fn pack_b_stripes(k: usize, n: usize, mut pack: impl FnMut(&mut [f32], usize, usize)) -> Vec<f32> {
    let nstripes = n.div_ceil(GEMM_NR);
    let mut bstore = pool::take_raw(nstripes * k * GEMM_NR);
    for s in 0..nstripes {
        let j = s * GEMM_NR;
        let jb = (n - j).min(GEMM_NR);
        pack(&mut bstore[s * k * GEMM_NR..(s + 1) * k * GEMM_NR], j, jb);
    }
    bstore
}

/// Fused NT fallback for skinny outputs (`m < GEMM_MIN_PACK_ROWS`): both
/// operand rows are contiguous, so each output element is a plain dot
/// product; four independent columns run at once for ILP. Overwrites `out`.
fn gemm_nt_small(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &av) in arow.iter().enumerate() {
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += 4;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                s += av * bv;
            }
            orow[j] = s;
            j += 1;
        }
    }
}

/// Fused TN fallback for skinny outputs: per output row, accumulate
/// `a[kk·m + i] · b_row(kk)` in strict `kk` order. Requires zeroed `out`.
fn gemm_tn_small(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[kk * m + i];
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Fused NT GEMM: `out[m×n] = a[m×k] · b[n×k]ᵀ`, no transpose materialized.
/// `out` must be zeroed by the caller.
pub(crate) fn gemm_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    if m < GEMM_MIN_PACK_ROWS {
        return gemm_nt_small(a, b, out, m, k, n);
    }
    let bstore = pack_b_stripes(k, n, |panel, j, jb| pack_b_nt(b, panel, j, jb, k));
    if gemm_parallel(m, k, n) {
        out.par_chunks_mut(GEMM_MR * n)
            .enumerate()
            .for_each(|(blk, out_block)| {
                let i = blk * GEMM_MR;
                let ib = (m - i).min(GEMM_MR);
                let mut apanel = vec![0.0f32; k * GEMM_MR];
                pack_a_quad(&mut apanel, ib, k, |r, kk| a[(i + r) * k + kk]);
                gemm_micro_block(&apanel, &bstore, out_block, ib, k, n);
            });
    } else {
        let mut apanel = pool::take_raw(k * GEMM_MR);
        let mut i = 0;
        while i < m {
            let ib = (m - i).min(GEMM_MR);
            pack_a_quad(&mut apanel, ib, k, |r, kk| a[(i + r) * k + kk]);
            gemm_micro_block(&apanel, &bstore, &mut out[i * n..(i + ib) * n], ib, k, n);
            i += ib;
        }
        pool::recycle(apanel);
    }
    pool::recycle(bstore);
}

/// Fused TN GEMM: `out[m×n] = a[k×m]ᵀ · b[k×n]`, no transpose materialized.
/// `out` must be zeroed by the caller.
pub(crate) fn gemm_tn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    if m < GEMM_MIN_PACK_ROWS {
        return gemm_tn_small(a, b, out, m, k, n);
    }
    let bstore = pack_b_stripes(k, n, |panel, j, jb| pack_b_tn(b, panel, j, jb, k, n));
    if gemm_parallel(m, k, n) {
        out.par_chunks_mut(GEMM_MR * n)
            .enumerate()
            .for_each(|(blk, out_block)| {
                let i = blk * GEMM_MR;
                let ib = (m - i).min(GEMM_MR);
                let mut apanel = vec![0.0f32; k * GEMM_MR];
                pack_a_quad(&mut apanel, ib, k, |r, kk| a[kk * m + i + r]);
                gemm_micro_block(&apanel, &bstore, out_block, ib, k, n);
            });
    } else {
        let mut apanel = pool::take_raw(k * GEMM_MR);
        let mut i = 0;
        while i < m {
            let ib = (m - i).min(GEMM_MR);
            pack_a_quad(&mut apanel, ib, k, |r, kk| a[kk * m + i + r]);
            gemm_micro_block(&apanel, &bstore, &mut out[i * n..(i + ib) * n], ib, k, n);
            i += ib;
        }
        pool::recycle(apanel);
    }
    pool::recycle(bstore);
}

/// `A · Bᵀ` without materializing the transpose.
///
/// Supported operand ranks (B is always stored "transposed", i.e. its rows
/// are the columns of the effective right operand):
/// * `(m,k) · (n,k)ᵀ → (m,n)` — plain 2-D.
/// * `(b,m,k) · (b,n,k)ᵀ → (b,m,n)` — per-batch product.
/// * `(b,m,k) · (n,k)ᵀ → (b,m,n)` — shared right operand (e.g. full-vocab
///   logits against the embedding table).
///
/// Bitwise identical to `matmul(a, transpose_last2(b))`.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mismatch = || TensorError::ShapeMismatch {
        op: "matmul_transb",
        lhs: a.dims().to_vec(),
        rhs: b.dims().to_vec(),
    };
    match (a.ndim(), b.ndim()) {
        (2, 2) => {
            if a.dim(1) != b.dim(1) {
                return Err(mismatch());
            }
            let (m, k, n) = (a.dim(0), a.dim(1), b.dim(0));
            gemm_telemetry((m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![m, n]);
            gemm_nt_into(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != bs || b.dim(2) != k {
                return Err(mismatch());
            }
            let n = b.dim(1);
            gemm_telemetry((bs * m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![bs, m, n]);
            let (ad, bd) = (a.data(), b.data());
            let od = out.data_mut();
            for i in 0..bs {
                gemm_nt_into(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * n * k..(i + 1) * n * k],
                    &mut od[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(1) != k {
                return Err(mismatch());
            }
            let n = b.dim(0);
            // Collapse the batch into rows: (b·m, k) · (n, k)ᵀ. The data is
            // already contiguous, so no reshape copy is needed.
            gemm_telemetry((bs * m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![bs, m, n]);
            gemm_nt_into(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(mismatch()),
    }
}

/// `Aᵀ · B` without materializing the transpose. The shared inner dimension
/// is `a.dim(-2) == b.dim(-2)`.
///
/// Supported operand ranks:
/// * `(k,m)ᵀ · (k,n) → (m,n)` — plain 2-D.
/// * `(b,k,m)ᵀ · (b,k,n) → (b,m,n)` — per-batch product.
///
/// Bitwise identical to `matmul(transpose_last2(a), b)`.
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mismatch = || TensorError::ShapeMismatch {
        op: "matmul_transa",
        lhs: a.dims().to_vec(),
        rhs: b.dims().to_vec(),
    };
    match (a.ndim(), b.ndim()) {
        (2, 2) => {
            if a.dim(0) != b.dim(0) {
                return Err(mismatch());
            }
            let (k, m, n) = (a.dim(0), a.dim(1), b.dim(1));
            gemm_telemetry((m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![m, n]);
            gemm_tn_into(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, k, m) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != bs || b.dim(1) != k {
                return Err(mismatch());
            }
            let n = b.dim(2);
            gemm_telemetry((bs * m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![bs, m, n]);
            let (ad, bd) = (a.data(), b.data());
            let od = out.data_mut();
            for i in 0..bs {
                gemm_tn_into(
                    &ad[i * k * m..(i + 1) * k * m],
                    &bd[i * k * n..(i + 1) * k * n],
                    &mut od[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Ok(out)
        }
        _ => Err(mismatch()),
    }
}

// ---------------------------------------------------------------------------
// Quantized-weight GEMM (frozen serving path)
// ---------------------------------------------------------------------------
//
// `matmul_transb_q` / `matmul_q` accept a [`QuantMatrix`] right operand.
// With f32 storage they delegate to the exact dense kernels above (the
// bitwise default). With bf16/int8 storage the compressed rows are decoded
// *inside the packing step* — the stripe pack and the small-m dot-product
// fallback both read through a per-call decode scratch, so a full f32 copy
// of a quantised weight matrix is never materialised for the NT path.

use crate::qmat::QuantMatrix;

/// Packs rows `j..j+jb` of a quantised NT right operand into one kk-major
/// stripe, decoding each compressed row into `scratch` (`GEMM_NR · k`) on
/// the way. Mirrors [`pack_b_nt`].
fn pack_b_nt_q(b: &QuantMatrix, panel: &mut [f32], scratch: &mut [f32], j: usize, jb: usize) {
    let k = b.cols();
    for c in 0..jb {
        b.write_row_segment(j + c, 0, &mut scratch[c * k..(c + 1) * k]);
    }
    for kk in 0..k {
        let dst = &mut panel[kk * GEMM_NR..(kk + 1) * GEMM_NR];
        for (c, d) in dst.iter_mut().enumerate() {
            *d = if c < jb { scratch[c * k + kk] } else { 0.0 };
        }
    }
}

/// Small-`m` NT fallback over a quantised right operand: decodes four
/// compressed rows at a time into `scratch` and runs the same strict
/// `k`-order dot products as [`gemm_nt_small`].
fn gemm_nt_small_q(a: &[f32], b: &QuantMatrix, out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut scratch = pool::take_raw(4 * k);
    let mut j = 0;
    while j < n {
        let jb = (n - j).min(4);
        for c in 0..jb {
            b.write_row_segment(j + c, 0, &mut scratch[c * k..(c + 1) * k]);
        }
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for c in 0..jb {
                let brow = &scratch[c * k..(c + 1) * k];
                let mut s = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    s += av * bv;
                }
                orow[j + c] = s;
            }
        }
        j += jb;
    }
    pool::recycle(scratch);
}

/// Fused NT GEMM over a quantised right operand:
/// `out[m×n] = a[m×k] · deq(b)[n×k]ᵀ`. `out` must be zeroed by the caller.
fn gemm_nt_into_q(a: &[f32], b: &QuantMatrix, out: &mut [f32], m: usize, k: usize, n: usize) {
    if let Some(t) = b.as_f32() {
        return gemm_nt_into(a, t.data(), out, m, k, n);
    }
    if m == 0 || n == 0 {
        return;
    }
    if m < GEMM_MIN_PACK_ROWS {
        return gemm_nt_small_q(a, b, out, m, k, n);
    }
    let mut scratch = pool::take_raw(GEMM_NR * k);
    let bstore = pack_b_stripes(k, n, |panel, j, jb| {
        pack_b_nt_q(b, panel, &mut scratch, j, jb)
    });
    pool::recycle(scratch);
    if gemm_parallel(m, k, n) {
        out.par_chunks_mut(GEMM_MR * n)
            .enumerate()
            .for_each(|(blk, out_block)| {
                let i = blk * GEMM_MR;
                let ib = (m - i).min(GEMM_MR);
                let mut apanel = vec![0.0f32; k * GEMM_MR];
                pack_a_quad(&mut apanel, ib, k, |r, kk| a[(i + r) * k + kk]);
                gemm_micro_block(&apanel, &bstore, out_block, ib, k, n);
            });
    } else {
        let mut apanel = pool::take_raw(k * GEMM_MR);
        let mut i = 0;
        while i < m {
            let ib = (m - i).min(GEMM_MR);
            pack_a_quad(&mut apanel, ib, k, |r, kk| a[(i + r) * k + kk]);
            gemm_micro_block(&apanel, &bstore, &mut out[i * n..(i + ib) * n], ib, k, n);
            i += ib;
        }
        pool::recycle(apanel);
    }
    pool::recycle(bstore);
}

/// `A · Bᵀ` where `B` is a (possibly quantised) frozen weight matrix of
/// shape `[n, k]`. With f32 storage this is exactly [`matmul_transb`]
/// (bitwise); with bf16/int8 storage the rows are decoded inside the pack.
///
/// Supported `A` ranks: `(m,k)` and `(b,m,k)` (batch collapsed into rows,
/// like the shared-right-operand [`matmul_transb`] arm).
pub fn matmul_transb_q(a: &Tensor, b: &QuantMatrix) -> Result<Tensor> {
    let mismatch = || TensorError::ShapeMismatch {
        op: "matmul_transb",
        lhs: a.dims().to_vec(),
        rhs: vec![b.rows(), b.cols()],
    };
    match a.ndim() {
        2 => {
            if a.dim(1) != b.cols() {
                return Err(mismatch());
            }
            let (m, k, n) = (a.dim(0), a.dim(1), b.rows());
            gemm_telemetry((m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![m, n]);
            gemm_nt_into_q(a.data(), b, out.data_mut(), m, k, n);
            Ok(out)
        }
        3 => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if k != b.cols() {
                return Err(mismatch());
            }
            let n = b.rows();
            gemm_telemetry((bs * m * n) as u64);
            let mut out = Tensor::pooled_zeros(vec![bs, m, n]);
            gemm_nt_into_q(a.data(), b, out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(mismatch()),
    }
}

/// `A · W` where `W` is a (possibly quantised) frozen weight matrix of
/// shape `[k, n]`. With f32 storage this is exactly [`matmul`] (bitwise);
/// quantised storage is decoded once per call into pooled scratch (the
/// dense k×n layout has no row-local pack to fuse into, and frozen linear
/// weights are small next to the embedding table served via
/// [`matmul_transb_q`]).
///
/// Supported `A` ranks: `(m,k)` and `(b,m,k)`.
pub fn matmul_q(a: &Tensor, w: &QuantMatrix) -> Result<Tensor> {
    let mismatch = || TensorError::ShapeMismatch {
        op: "matmul",
        lhs: a.dims().to_vec(),
        rhs: vec![w.rows(), w.cols()],
    };
    if a.ndim() != 2 && a.ndim() != 3 {
        return Err(mismatch());
    }
    let k = a.dim(a.ndim() - 1);
    if k != w.rows() {
        return Err(mismatch());
    }
    if let Some(t) = w.as_f32() {
        return matmul(a, t);
    }
    let n = w.cols();
    let mut wd = pool::take_raw(k * n);
    w.decode_into(&mut wd);
    let m: usize = a.dims()[..a.ndim() - 1].iter().product();
    gemm_telemetry((m * n) as u64);
    let mut out_dims = a.dims().to_vec();
    out_dims[a.ndim() - 1] = n;
    let mut out = Tensor::zeros(out_dims);
    gemm_into(a.data(), &wd, out.data_mut(), m, k, n);
    pool::recycle(wd);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Transpose / permute
// ---------------------------------------------------------------------------

/// Swaps the last two axes of a rank-≥2 tensor.
pub fn transpose_last2(t: &Tensor) -> Result<Tensor> {
    let nd = t.ndim();
    if nd < 2 {
        return Err(TensorError::InvalidAxis { axis: 1, ndim: nd });
    }
    let dims = t.dims();
    let (r, c) = (dims[nd - 2], dims[nd - 1]);
    let batch: usize = dims[..nd - 2].iter().product();
    let mut out_dims = dims.to_vec();
    out_dims.swap(nd - 2, nd - 1);
    let mut out = vec![0.0f32; t.numel()];
    let src = t.data();
    for bi in 0..batch {
        let so = bi * r * c;
        for i in 0..r {
            for j in 0..c {
                out[so + j * r + i] = src[so + i * c + j];
            }
        }
    }
    Ok(Tensor::from_vec(out, out_dims))
}

/// Reorders axes according to `perm` (a permutation of `0..ndim`).
pub fn permute(t: &Tensor, perm: &[usize]) -> Result<Tensor> {
    let nd = t.ndim();
    if perm.len() != nd {
        return Err(TensorError::InvalidAxis {
            axis: perm.len(),
            ndim: nd,
        });
    }
    let mut seen = vec![false; nd];
    for &p in perm {
        if p >= nd || seen[p] {
            return Err(TensorError::InvalidAxis { axis: p, ndim: nd });
        }
        seen[p] = true;
    }
    let in_dims = t.dims();
    let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
    let in_strides = t.shape().strides();
    let permuted_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let n = t.numel();
    let mut data = Vec::with_capacity(n);
    let mut idx = vec![0usize; nd];
    let mut off = 0usize;
    let src = t.data();
    for _ in 0..n {
        data.push(src[off]);
        for axis in (0..nd).rev() {
            idx[axis] += 1;
            off += permuted_strides[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            off -= permuted_strides[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
    Ok(Tensor::from_vec(data, out_dims))
}

// ---------------------------------------------------------------------------
// Reductions along an axis
// ---------------------------------------------------------------------------

fn axis_reduce(
    t: &Tensor,
    axis: usize,
    keepdim: bool,
    init: f32,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    let nd = t.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let red = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let mut out = vec![init; outer * inner];
    let src = t.data();
    // Each outer slice reduces in the same fixed `r` order regardless of
    // partitioning, so serial and parallel results are bitwise identical.
    let reduce_outer = |o: usize, out_chunk: &mut [f32]| {
        for r in 0..red {
            let base = (o * red + r) * inner;
            for (i, v) in out_chunk.iter_mut().enumerate() {
                *v = f(*v, src[base + i]);
            }
        }
    };
    if outer >= 2 && inner > 0 && outer * red * inner >= tuning::par_min_elems() {
        out.par_chunks_mut(inner)
            .enumerate()
            .for_each(|(o, chunk)| reduce_outer(o, chunk));
    } else {
        for o in 0..outer {
            reduce_outer(o, &mut out[o * inner..(o + 1) * inner]);
        }
    }
    let mut out_dims: Vec<usize> = dims.to_vec();
    if keepdim {
        out_dims[axis] = 1;
    } else {
        out_dims.remove(axis);
    }
    Ok(Tensor::from_vec(out, out_dims))
}

/// Sum along `axis`.
pub fn sum_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    axis_reduce(t, axis, keepdim, 0.0, |a, b| a + b)
}

/// Mean along `axis`.
pub fn mean_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    let n = t.dim(axis) as f32;
    let mut s = sum_axis(t, axis, keepdim)?;
    s.scale_inplace(1.0 / n);
    Ok(s)
}

/// Max along `axis`.
pub fn max_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    axis_reduce(t, axis, keepdim, f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum along the last axis, one result per leading row.
pub fn argmax_last(t: &Tensor) -> Vec<usize> {
    let nd = t.ndim();
    assert!(nd >= 1);
    let last = t.dim(nd - 1);
    t.data()
        .chunks_exact(last)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Softmax family (last axis)
// ---------------------------------------------------------------------------

/// Applies `row_fn` to every `last`-sized row of `out`, in parallel when the
/// tensor is large enough. Rows never straddle a chunk boundary, so the
/// result is independent of the partitioning.
fn for_each_row(out: &mut Tensor, last: usize, row_fn: impl Fn(&mut [f32]) + Sync) {
    let n = out.numel();
    if last > 0 && n >= tuning::par_min_elems() && n / last >= 2 {
        out.data_mut().par_chunks_mut(last).for_each(row_fn);
    } else {
        for row in out.data_mut().chunks_exact_mut(last) {
            row_fn(row);
        }
    }
}

/// Numerically stable softmax along the last axis.
pub fn softmax_last(t: &Tensor) -> Tensor {
    let last = t.dim(t.ndim() - 1);
    let mut out = t.clone();
    for_each_row(&mut out, last, |row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    });
    out
}

/// Numerically stable log-softmax along the last axis.
pub fn log_softmax_last(t: &Tensor) -> Tensor {
    let last = t.dim(t.ndim() - 1);
    let mut out = t.clone();
    for_each_row(&mut out, last, |row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for x in row.iter_mut() {
            *x -= lse;
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Concatenation / slicing / gather
// ---------------------------------------------------------------------------

/// Concatenates tensors along `axis`. All other dimensions must match.
pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let first = parts[0];
    let nd = first.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    let mut axis_total = 0usize;
    for p in parts {
        if p.ndim() != nd {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: first.dims().to_vec(),
                rhs: p.dims().to_vec(),
            });
        }
        for d in 0..nd {
            if d != axis && p.dim(d) != first.dim(d) {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
        }
        axis_total += p.dim(axis);
    }
    let outer: usize = first.dims()[..axis].iter().product();
    let inner: usize = first.dims()[axis + 1..].iter().product();
    let mut out_dims = first.dims().to_vec();
    out_dims[axis] = axis_total;
    let mut data = Vec::with_capacity(outer * axis_total * inner);
    for o in 0..outer {
        for p in parts {
            let pa = p.dim(axis);
            let chunk = pa * inner;
            data.extend_from_slice(&p.data()[o * chunk..(o + 1) * chunk]);
        }
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Slices `[start, end)` along `axis`.
pub fn slice_axis(t: &Tensor, axis: usize, start: usize, end: usize) -> Result<Tensor> {
    let nd = t.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    if end > t.dim(axis) || start > end {
        return Err(TensorError::IndexOutOfRange {
            index: end,
            bound: t.dim(axis),
        });
    }
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let len = end - start;
    let mut out_dims = dims.to_vec();
    out_dims[axis] = len;
    let mut data = Vec::with_capacity(outer * len * inner);
    let src = t.data();
    let axis_dim = dims[axis];
    for o in 0..outer {
        let base = (o * axis_dim + start) * inner;
        data.extend_from_slice(&src[base..base + len * inner]);
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Selects rows of a rank-2 tensor: `out[i] = t[indices[i]]`.
pub fn index_select_rows(t: &Tensor, indices: &[usize]) -> Result<Tensor> {
    assert_eq!(t.ndim(), 2, "index_select_rows requires a rank-2 tensor");
    let (rows, cols) = (t.dim(0), t.dim(1));
    let mut data = Vec::with_capacity(indices.len() * cols);
    for &ix in indices {
        if ix >= rows {
            return Err(TensorError::IndexOutOfRange {
                index: ix,
                bound: rows,
            });
        }
        data.extend_from_slice(t.row(ix));
    }
    Ok(Tensor::from_vec(data, vec![indices.len(), cols]))
}

/// Scatter-add rows: `out[indices[i]] += grad[i]`. Adjoint of
/// [`index_select_rows`], used for embedding gradients.
pub fn scatter_add_rows(out: &mut Tensor, indices: &[usize], grad: &Tensor) {
    assert_eq!(out.ndim(), 2);
    assert_eq!(grad.ndim(), 2);
    assert_eq!(grad.dim(0), indices.len());
    assert_eq!(grad.dim(1), out.dim(1));
    let cols = out.dim(1);
    for (i, &ix) in indices.iter().enumerate() {
        let g = grad.row(i);
        let o = &mut out.row_mut(ix)[..cols];
        for (ov, gv) in o.iter_mut().zip(g.iter()) {
            *ov += gv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: Vec<usize>) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0], vec![2]);
        let b = t(vec![10.0, 20.0], vec![2]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let b = t(vec![10.0, 20.0, 30.0], vec![3]);
        let c = add(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn mul_broadcast_col() {
        let a = Tensor::ones(vec![2, 3]);
        let b = t(vec![2.0, 3.0], vec![2, 1]);
        let c = mul(&a, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Tensor::arange(3);
        let s = Tensor::scalar(2.0);
        assert_eq!(mul(&a, &s).unwrap().data(), &[0.0, 2.0, 4.0]);
        assert_eq!(sub(&s, &a).unwrap().data(), &[2.0, 1.0, 0.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::ones(vec![2, 3]);
        let b = Tensor::ones(vec![4, 3]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn unbroadcast_sums_expanded_axes() {
        let g = Tensor::ones(vec![2, 3]);
        assert_eq!(unbroadcast(&g, &[3]).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(unbroadcast(&g, &[2, 1]).data(), &[3.0, 3.0]);
        assert_eq!(unbroadcast(&g, &[]).data(), &[6.0]);
        assert_eq!(unbroadcast(&g, &[2, 3]).data(), g.data());
    }

    #[test]
    fn matmul_2d_known() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let b = Tensor::arange(6).reshape(vec![3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(4).reshape(vec![2, 2]).unwrap();
        let eye = t(vec![1.0, 0.0, 0.0, 1.0], vec![2, 2]);
        assert_eq!(matmul(&a, &eye).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let b = Tensor::ones(vec![2, 3, 1]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.data(), &[3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let b = Tensor::ones(vec![3, 1]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.data(), &[3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::ones(vec![2, 3]);
        let b = Tensor::ones(vec![2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transpose_2d_and_batched() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let at = transpose_last2(&a).unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);

        let b = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let bt = transpose_last2(&b).unwrap();
        assert_eq!(bt.dims(), &[2, 3, 2]);
        assert_eq!(bt.at(&[1, 2, 0]), b.at(&[1, 0, 2]));
    }

    #[test]
    fn permute_3d() {
        let a = Tensor::arange(24).reshape(vec![2, 3, 4]).unwrap();
        let p = permute(&a, &[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), a.at(&[1, 2, 3]));
        assert!(permute(&a, &[0, 0, 1]).is_err());
    }

    #[test]
    fn axis_reductions() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_eq!(sum_axis(&a, 0, false).unwrap().data(), &[3.0, 5.0, 7.0]);
        assert_eq!(sum_axis(&a, 1, false).unwrap().data(), &[3.0, 12.0]);
        assert_eq!(sum_axis(&a, 1, true).unwrap().dims(), &[2, 1]);
        assert_eq!(mean_axis(&a, 1, false).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(max_axis(&a, 0, false).unwrap().data(), &[3.0, 4.0, 5.0]);
        assert!(sum_axis(&a, 2, false).is_err());
    }

    #[test]
    fn argmax_rows() {
        let a = t(vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0], vec![2, 3]);
        assert_eq!(argmax_last(&a), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], vec![2, 3]);
        let s = softmax_last(&a);
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs stay finite (stability).
        assert!(!s.has_non_finite());
        // Uniform row.
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = t(vec![0.5, -1.0, 2.0], vec![1, 3]);
        let ls = log_softmax_last(&a);
        let s = softmax_last(&a);
        for (l, p) in ls.data().iter().zip(s.data().iter()) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::arange(4).reshape(vec![2, 2]).unwrap();
        let b = Tensor::ones(vec![1, 2]);
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 3.0, 1.0, 1.0]);

        let d = concat(&[&a, &a], 1).unwrap();
        assert_eq!(d.dims(), &[2, 4]);
        assert_eq!(d.data(), &[0.0, 1.0, 0.0, 1.0, 2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn slice_middle_axis() {
        let a = Tensor::arange(24).reshape(vec![2, 3, 4]).unwrap();
        let s = slice_axis(&a, 1, 1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), a.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), a.at(&[1, 2, 3]));
        assert!(slice_axis(&a, 1, 2, 4).is_err());
    }

    #[test]
    fn parallel_paths_match_serial_reference() {
        // 64·600 = 38_400 elements crosses PAR_MIN_ELEMS, so these calls
        // take the rayon paths; spot-check them against scalar arithmetic.
        let (r, c) = (64usize, 600usize);
        let a = t(
            (0..r * c).map(|i| (i % 17) as f32 - 8.0).collect(),
            vec![r, c],
        );
        let row = t((0..c).map(|j| (j % 5) as f32).collect(), vec![c]);

        // Same-shape fast path.
        let sq = mul(&a, &a).unwrap();
        for (x, y) in a.data().iter().zip(sq.data().iter()) {
            assert_eq!(x * x, *y);
        }

        // Broadcast odometer path (blocks start mid-tensor).
        let s = add(&a, &row).unwrap();
        for i in (0..r).step_by(7) {
            for j in (0..c).step_by(13) {
                assert_eq!(s.at(&[i, j]), a.at(&[i, j]) + row.at(&[j]));
            }
        }

        // Row-parallel softmax.
        let sm = softmax_last(&a);
        for srow in sm.data().chunks_exact(c) {
            assert!((srow.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        // Outer-parallel axis reduction (axis 1: outer = 64 rows).
        let sums = sum_axis(&a, 1, false).unwrap();
        for (i, arow) in a.data().chunks_exact(c).enumerate() {
            assert_eq!(sums.data()[i], arow.iter().fold(0.0f32, |acc, &x| acc + x));
        }
    }

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matmul_transb_matches_composition_bitwise() {
        // Cover: packed path (m >= 8), small-m fallback, ragged n (partial
        // stripe), and the batched / shared-B ranks.
        for &(m, k, n) in &[
            (32usize, 32usize, 361usize),
            (3, 16, 21),
            (9, 5, 8),
            (1, 7, 13),
        ] {
            let a = t(pseudo(m * k, 1), vec![m, k]);
            let b = t(pseudo(n * k, 2), vec![n, k]);
            let fused = matmul_transb(&a, &b).unwrap();
            let reference = matmul(&a, &transpose_last2(&b).unwrap()).unwrap();
            assert_eq!(fused.dims(), &[m, n]);
            assert_eq!(fused.data(), reference.data(), "NT m={m} k={k} n={n}");
        }

        let a = t(pseudo(2 * 9 * 6, 3), vec![2, 9, 6]);
        let b = t(pseudo(2 * 11 * 6, 4), vec![2, 11, 6]);
        let fused = matmul_transb(&a, &b).unwrap();
        let reference = matmul(&a, &transpose_last2(&b).unwrap()).unwrap();
        assert_eq!(fused.dims(), &[2, 9, 11]);
        assert_eq!(fused.data(), reference.data());

        let shared = t(pseudo(11 * 6, 5), vec![11, 6]);
        let fused = matmul_transb(&a, &shared).unwrap();
        let reference = matmul(&a, &transpose_last2(&shared).unwrap()).unwrap();
        assert_eq!(fused.dims(), &[2, 9, 11]);
        assert_eq!(fused.data(), reference.data());

        assert!(matmul_transb(&t(pseudo(6, 0), vec![2, 3]), &t(pseudo(8, 0), vec![2, 4])).is_err());
    }

    #[test]
    fn matmul_transa_matches_composition_bitwise() {
        for &(m, k, n) in &[(32usize, 24usize, 19usize), (3, 40, 17), (12, 4, 4)] {
            let a = t(pseudo(k * m, 6), vec![k, m]);
            let b = t(pseudo(k * n, 7), vec![k, n]);
            let fused = matmul_transa(&a, &b).unwrap();
            let reference = matmul(&transpose_last2(&a).unwrap(), &b).unwrap();
            assert_eq!(fused.dims(), &[m, n]);
            assert_eq!(fused.data(), reference.data(), "TN m={m} k={k} n={n}");
        }

        let a = t(pseudo(2 * 5 * 9, 8), vec![2, 5, 9]);
        let b = t(pseudo(2 * 5 * 7, 9), vec![2, 5, 7]);
        let fused = matmul_transa(&a, &b).unwrap();
        let reference = matmul(&transpose_last2(&a).unwrap(), &b).unwrap();
        assert_eq!(fused.dims(), &[2, 9, 7]);
        assert_eq!(fused.data(), reference.data());

        assert!(
            matmul_transa(&t(pseudo(6, 0), vec![2, 3]), &t(pseudo(12, 0), vec![3, 4])).is_err()
        );
    }

    #[test]
    fn fused_parallel_path_matches_serial() {
        // Force the rayon row-block path and check it against the serial
        // result (which the composition test already pins down).
        let (m, k, n) = (48usize, 16usize, 33usize);
        let a = t(pseudo(m * k, 10), vec![m, k]);
        let b = t(pseudo(n * k, 11), vec![n, k]);
        let serial = matmul_transb(&a, &b).unwrap();
        let (rows, work) = (
            crate::tuning::gemm_par_rows(),
            crate::tuning::gemm_par_row_work(),
        );
        crate::tuning::set_gemm_par_rows(1);
        crate::tuning::set_gemm_par_row_work(1);
        let parallel = matmul_transb(&a, &b).unwrap();
        let at = t(pseudo(k * m, 12), vec![k, m]);
        let bt = t(pseudo(k * n, 13), vec![k, n]);
        crate::tuning::set_gemm_par_rows(rows);
        crate::tuning::set_gemm_par_row_work(work);
        let serial_tn = matmul_transa(&at, &bt).unwrap();
        crate::tuning::set_gemm_par_rows(1);
        crate::tuning::set_gemm_par_row_work(1);
        let parallel_tn = matmul_transa(&at, &bt).unwrap();
        crate::tuning::set_gemm_par_rows(rows);
        crate::tuning::set_gemm_par_row_work(work);
        assert_eq!(serial.data(), parallel.data());
        assert_eq!(serial_tn.data(), parallel_tn.data());
    }

    #[test]
    fn masked_matmul_matches_dense_on_padded_input() {
        let (m, k, n) = (6usize, 10usize, 9usize);
        let mut av = pseudo(m * k, 14);
        // Zero out most of `a`, as a padded batch would.
        for (i, x) in av.iter_mut().enumerate() {
            if i % 4 != 0 {
                *x = 0.0;
            }
        }
        let a = t(av, vec![m, k]);
        let b = t(pseudo(k * n, 15), vec![k, n]);
        let masked = matmul2d_masked(&a, &b).unwrap();
        let dense = matmul2d(&a, &b).unwrap();
        assert_eq!(masked.data(), dense.data());
        assert!(matmul2d_masked(&a, &t(pseudo(8, 0), vec![2, 4])).is_err());
    }

    #[test]
    fn gather_scatter_round_trip() {
        let table = Tensor::arange(8).reshape(vec![4, 2]).unwrap();
        let picked = index_select_rows(&table, &[3, 0, 3]).unwrap();
        assert_eq!(picked.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);

        let mut grad = Tensor::zeros(vec![4, 2]);
        let upstream = Tensor::ones(vec![3, 2]);
        scatter_add_rows(&mut grad, &[3, 0, 3], &upstream);
        assert_eq!(grad.row(3), &[2.0, 2.0]);
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);

        assert!(index_select_rows(&table, &[4]).is_err());
    }
}

//! Tensor operations: broadcasting elementwise math, matrix multiplication,
//! reductions, softmax, and shape manipulation.
//!
//! All functions are free functions taking `&Tensor` and returning owned
//! results. Errors are reported via [`crate::TensorError`]; shape panics are
//! reserved for internal invariant violations.

use rayon::prelude::*;

use crate::shape::{broadcast_shapes, broadcast_strides, Shape};
use crate::{Result, Tensor, TensorError};

// ---------------------------------------------------------------------------
// Elementwise binary ops with broadcasting
// ---------------------------------------------------------------------------

/// Minimum number of output elements before an elementwise / row-wise kernel
/// fans out over rayon. Below this, thread-spawn overhead dominates the
/// arithmetic. Each output element is computed independently of the
/// partitioning, so the parallel path is bitwise identical to the serial one.
const PAR_MIN_ELEMS: usize = 32_768;

/// Block size (elements) for parallel elementwise kernels.
const PAR_BLOCK: usize = 8_192;

fn binary_broadcast(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    if a.dims() == b.dims() {
        // Fast path: identical shapes.
        let (ad, bd) = (a.data(), b.data());
        let n = ad.len();
        let mut data = vec![0.0f32; n];
        if n >= PAR_MIN_ELEMS {
            data.par_chunks_mut(PAR_BLOCK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let s = ci * PAR_BLOCK;
                    for (i, o) in chunk.iter_mut().enumerate() {
                        *o = f(ad[s + i], bd[s + i]);
                    }
                });
        } else {
            for (i, o) in data.iter_mut().enumerate() {
                *o = f(ad[i], bd[i]);
            }
        }
        return Ok(Tensor::from_vec(data, a.dims().to_vec()));
    }
    let out_dims =
        broadcast_shapes(a.dims(), b.dims()).map_err(|_| TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        })?;
    let out_shape = Shape::new(out_dims.clone());
    let sa = broadcast_strides(a.dims(), &out_dims);
    let sb = broadcast_strides(b.dims(), &out_dims);
    let n = out_shape.numel();
    let mut data = vec![0.0f32; n];
    if n >= PAR_MIN_ELEMS {
        data.par_chunks_mut(PAR_BLOCK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                broadcast_fill(
                    chunk,
                    ci * PAR_BLOCK,
                    a.data(),
                    b.data(),
                    &sa,
                    &sb,
                    &out_dims,
                    &f,
                );
            });
    } else {
        broadcast_fill(&mut data, 0, a.data(), b.data(), &sa, &sb, &out_dims, &f);
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Fills `out` with `f(a, b)` for the linear output range starting at
/// `start`, walking both inputs with an odometer over the broadcast strides.
/// Seeding the odometer from an arbitrary `start` lets parallel blocks begin
/// mid-tensor.
#[allow(clippy::too_many_arguments)]
fn broadcast_fill(
    out: &mut [f32],
    start: usize,
    ad: &[f32],
    bd: &[f32],
    sa: &[usize],
    sb: &[usize],
    out_dims: &[usize],
    f: &(impl Fn(f32, f32) -> f32 + Sync),
) {
    let ndim = out_dims.len();
    let mut idx = vec![0usize; ndim];
    let mut off_a = 0usize;
    let mut off_b = 0usize;
    let mut rem = start;
    for axis in (0..ndim).rev() {
        let d = rem % out_dims[axis];
        rem /= out_dims[axis];
        idx[axis] = d;
        off_a += d * sa[axis];
        off_b += d * sb[axis];
    }
    for o in out.iter_mut() {
        *o = f(ad[off_a], bd[off_b]);
        // Odometer increment over the output index space, updating the two
        // input offsets incrementally.
        for axis in (0..ndim).rev() {
            idx[axis] += 1;
            off_a += sa[axis];
            off_b += sb[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            off_a -= sa[axis] * out_dims[axis];
            off_b -= sb[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
}

/// Elementwise `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("add", a, b, |x, y| x + y)
}

/// Elementwise `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("sub", a, b, |x, y| x - y)
}

/// Elementwise `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("mul", a, b, |x, y| x * y)
}

/// Elementwise `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("div", a, b, |x, y| x / y)
}

/// Elementwise maximum with broadcasting.
pub fn maximum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_broadcast("maximum", a, b, f32::max)
}

/// Reduces `grad` (shaped like the broadcast output) back to `target_dims`
/// by summing over broadcast axes. This is the adjoint of broadcasting and
/// the workhorse of autograd for elementwise ops.
pub fn unbroadcast(grad: &Tensor, target_dims: &[usize]) -> Tensor {
    if grad.dims() == target_dims {
        return grad.clone();
    }
    let gdims = grad.dims().to_vec();
    let ndim = gdims.len();
    let offset = ndim - target_dims.len();
    let mut out = Tensor::zeros(target_dims.to_vec());
    let t_strides = Shape::new(target_dims.to_vec()).strides();
    // Stride-0 mapping from output-space axes into the target buffer.
    let mut map = vec![0usize; ndim];
    for i in 0..target_dims.len() {
        map[offset + i] = if target_dims[i] == 1 && gdims[offset + i] != 1 {
            0
        } else {
            t_strides[i]
        };
    }
    let mut idx = vec![0usize; ndim];
    let mut off_t = 0usize;
    let gd = grad.data();
    let od = out.data_mut();
    for &g in gd.iter() {
        od[off_t] += g;
        for axis in (0..ndim).rev() {
            idx[axis] += 1;
            off_t += map[axis];
            if idx[axis] < gdims[axis] {
                break;
            }
            off_t -= map[axis] * gdims[axis];
            idx[axis] = 0;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// `C = A · B` for 2-D matrices `(m,k)·(k,n) → (m,n)`.
///
/// Uses an `i-k-j` loop order so the inner loop is a contiguous
/// multiply-accumulate over rows of `B`, which auto-vectorises. Rows are
/// processed in parallel via rayon when the problem is large enough.
pub fn matmul2d(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul2d",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(vec![m, n]);
    gemm_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Dense GEMM kernel: `out[m×n] += a[m×k] · b[k×n]` (out must be zeroed by
/// the caller for a pure product).
pub(crate) fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let row_work = k * n;
    if m >= 32 && row_work >= 16_384 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
            gemm_row(&a[i * k..(i + 1) * k], b, out_row, k, n);
        });
    } else {
        for i in 0..m {
            gemm_row(
                &a[i * k..(i + 1) * k],
                b,
                &mut out[i * n..(i + 1) * n],
                k,
                n,
            );
        }
    }
}

#[inline]
fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    for (kk, &aik) in a_row.iter().enumerate().take(k) {
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += aik * bv;
        }
    }
}

/// Batched matmul.
///
/// Supported operand ranks:
/// * `(m,k) · (k,n)` — plain 2-D.
/// * `(b,m,k) · (b,k,n)` — per-batch product.
/// * `(b,m,k) · (k,n)` — shared right operand broadcast over the batch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    match (a.ndim(), b.ndim()) {
        (2, 2) => matmul2d(a, b),
        (3, 3) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != bs || b.dim(1) != k {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul",
                    lhs: a.dims().to_vec(),
                    rhs: b.dims().to_vec(),
                });
            }
            let n = b.dim(2);
            let mut out = Tensor::zeros(vec![bs, m, n]);
            let (ad, bd) = (a.data(), b.data());
            let od = out.data_mut();
            for i in 0..bs {
                gemm_into(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * k * n..(i + 1) * k * n],
                    &mut od[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            if b.dim(0) != k {
                return Err(TensorError::ShapeMismatch {
                    op: "matmul",
                    lhs: a.dims().to_vec(),
                    rhs: b.dims().to_vec(),
                });
            }
            let n = b.dim(1);
            // Collapse the batch into rows: (b·m, k) · (k, n).
            let flat = a.reshape(vec![bs * m, k])?;
            let out = matmul2d(&flat, b)?;
            out.reshape(vec![bs, m, n])
        }
        _ => Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Transpose / permute
// ---------------------------------------------------------------------------

/// Swaps the last two axes of a rank-≥2 tensor.
pub fn transpose_last2(t: &Tensor) -> Result<Tensor> {
    let nd = t.ndim();
    if nd < 2 {
        return Err(TensorError::InvalidAxis { axis: 1, ndim: nd });
    }
    let dims = t.dims();
    let (r, c) = (dims[nd - 2], dims[nd - 1]);
    let batch: usize = dims[..nd - 2].iter().product();
    let mut out_dims = dims.to_vec();
    out_dims.swap(nd - 2, nd - 1);
    let mut out = vec![0.0f32; t.numel()];
    let src = t.data();
    for bi in 0..batch {
        let so = bi * r * c;
        for i in 0..r {
            for j in 0..c {
                out[so + j * r + i] = src[so + i * c + j];
            }
        }
    }
    Ok(Tensor::from_vec(out, out_dims))
}

/// Reorders axes according to `perm` (a permutation of `0..ndim`).
pub fn permute(t: &Tensor, perm: &[usize]) -> Result<Tensor> {
    let nd = t.ndim();
    if perm.len() != nd {
        return Err(TensorError::InvalidAxis {
            axis: perm.len(),
            ndim: nd,
        });
    }
    let mut seen = vec![false; nd];
    for &p in perm {
        if p >= nd || seen[p] {
            return Err(TensorError::InvalidAxis { axis: p, ndim: nd });
        }
        seen[p] = true;
    }
    let in_dims = t.dims();
    let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
    let in_strides = t.shape().strides();
    let permuted_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let n = t.numel();
    let mut data = Vec::with_capacity(n);
    let mut idx = vec![0usize; nd];
    let mut off = 0usize;
    let src = t.data();
    for _ in 0..n {
        data.push(src[off]);
        for axis in (0..nd).rev() {
            idx[axis] += 1;
            off += permuted_strides[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            off -= permuted_strides[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
    Ok(Tensor::from_vec(data, out_dims))
}

// ---------------------------------------------------------------------------
// Reductions along an axis
// ---------------------------------------------------------------------------

fn axis_reduce(
    t: &Tensor,
    axis: usize,
    keepdim: bool,
    init: f32,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    let nd = t.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let red = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let mut out = vec![init; outer * inner];
    let src = t.data();
    // Each outer slice reduces in the same fixed `r` order regardless of
    // partitioning, so serial and parallel results are bitwise identical.
    let reduce_outer = |o: usize, out_chunk: &mut [f32]| {
        for r in 0..red {
            let base = (o * red + r) * inner;
            for (i, v) in out_chunk.iter_mut().enumerate() {
                *v = f(*v, src[base + i]);
            }
        }
    };
    if outer >= 2 && inner > 0 && outer * red * inner >= PAR_MIN_ELEMS {
        out.par_chunks_mut(inner)
            .enumerate()
            .for_each(|(o, chunk)| reduce_outer(o, chunk));
    } else {
        for o in 0..outer {
            reduce_outer(o, &mut out[o * inner..(o + 1) * inner]);
        }
    }
    let mut out_dims: Vec<usize> = dims.to_vec();
    if keepdim {
        out_dims[axis] = 1;
    } else {
        out_dims.remove(axis);
    }
    Ok(Tensor::from_vec(out, out_dims))
}

/// Sum along `axis`.
pub fn sum_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    axis_reduce(t, axis, keepdim, 0.0, |a, b| a + b)
}

/// Mean along `axis`.
pub fn mean_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    let n = t.dim(axis) as f32;
    let mut s = sum_axis(t, axis, keepdim)?;
    s.scale_inplace(1.0 / n);
    Ok(s)
}

/// Max along `axis`.
pub fn max_axis(t: &Tensor, axis: usize, keepdim: bool) -> Result<Tensor> {
    axis_reduce(t, axis, keepdim, f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum along the last axis, one result per leading row.
pub fn argmax_last(t: &Tensor) -> Vec<usize> {
    let nd = t.ndim();
    assert!(nd >= 1);
    let last = t.dim(nd - 1);
    t.data()
        .chunks_exact(last)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Softmax family (last axis)
// ---------------------------------------------------------------------------

/// Applies `row_fn` to every `last`-sized row of `out`, in parallel when the
/// tensor is large enough. Rows never straddle a chunk boundary, so the
/// result is independent of the partitioning.
fn for_each_row(out: &mut Tensor, last: usize, row_fn: impl Fn(&mut [f32]) + Sync) {
    let n = out.numel();
    if last > 0 && n >= PAR_MIN_ELEMS && n / last >= 2 {
        out.data_mut().par_chunks_mut(last).for_each(row_fn);
    } else {
        for row in out.data_mut().chunks_exact_mut(last) {
            row_fn(row);
        }
    }
}

/// Numerically stable softmax along the last axis.
pub fn softmax_last(t: &Tensor) -> Tensor {
    let last = t.dim(t.ndim() - 1);
    let mut out = t.clone();
    for_each_row(&mut out, last, |row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    });
    out
}

/// Numerically stable log-softmax along the last axis.
pub fn log_softmax_last(t: &Tensor) -> Tensor {
    let last = t.dim(t.ndim() - 1);
    let mut out = t.clone();
    for_each_row(&mut out, last, |row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for x in row.iter_mut() {
            *x -= lse;
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Concatenation / slicing / gather
// ---------------------------------------------------------------------------

/// Concatenates tensors along `axis`. All other dimensions must match.
pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let first = parts[0];
    let nd = first.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    let mut axis_total = 0usize;
    for p in parts {
        if p.ndim() != nd {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: first.dims().to_vec(),
                rhs: p.dims().to_vec(),
            });
        }
        for d in 0..nd {
            if d != axis && p.dim(d) != first.dim(d) {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
        }
        axis_total += p.dim(axis);
    }
    let outer: usize = first.dims()[..axis].iter().product();
    let inner: usize = first.dims()[axis + 1..].iter().product();
    let mut out_dims = first.dims().to_vec();
    out_dims[axis] = axis_total;
    let mut data = Vec::with_capacity(outer * axis_total * inner);
    for o in 0..outer {
        for p in parts {
            let pa = p.dim(axis);
            let chunk = pa * inner;
            data.extend_from_slice(&p.data()[o * chunk..(o + 1) * chunk]);
        }
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Slices `[start, end)` along `axis`.
pub fn slice_axis(t: &Tensor, axis: usize, start: usize, end: usize) -> Result<Tensor> {
    let nd = t.ndim();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    if end > t.dim(axis) || start > end {
        return Err(TensorError::IndexOutOfRange {
            index: end,
            bound: t.dim(axis),
        });
    }
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let len = end - start;
    let mut out_dims = dims.to_vec();
    out_dims[axis] = len;
    let mut data = Vec::with_capacity(outer * len * inner);
    let src = t.data();
    let axis_dim = dims[axis];
    for o in 0..outer {
        let base = (o * axis_dim + start) * inner;
        data.extend_from_slice(&src[base..base + len * inner]);
    }
    Ok(Tensor::from_vec(data, out_dims))
}

/// Selects rows of a rank-2 tensor: `out[i] = t[indices[i]]`.
pub fn index_select_rows(t: &Tensor, indices: &[usize]) -> Result<Tensor> {
    assert_eq!(t.ndim(), 2, "index_select_rows requires a rank-2 tensor");
    let (rows, cols) = (t.dim(0), t.dim(1));
    let mut data = Vec::with_capacity(indices.len() * cols);
    for &ix in indices {
        if ix >= rows {
            return Err(TensorError::IndexOutOfRange {
                index: ix,
                bound: rows,
            });
        }
        data.extend_from_slice(t.row(ix));
    }
    Ok(Tensor::from_vec(data, vec![indices.len(), cols]))
}

/// Scatter-add rows: `out[indices[i]] += grad[i]`. Adjoint of
/// [`index_select_rows`], used for embedding gradients.
pub fn scatter_add_rows(out: &mut Tensor, indices: &[usize], grad: &Tensor) {
    assert_eq!(out.ndim(), 2);
    assert_eq!(grad.ndim(), 2);
    assert_eq!(grad.dim(0), indices.len());
    assert_eq!(grad.dim(1), out.dim(1));
    let cols = out.dim(1);
    for (i, &ix) in indices.iter().enumerate() {
        let g = grad.row(i);
        let o = &mut out.row_mut(ix)[..cols];
        for (ov, gv) in o.iter_mut().zip(g.iter()) {
            *ov += gv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: Vec<usize>) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0], vec![2]);
        let b = t(vec![10.0, 20.0], vec![2]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let b = t(vec![10.0, 20.0, 30.0], vec![3]);
        let c = add(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn mul_broadcast_col() {
        let a = Tensor::ones(vec![2, 3]);
        let b = t(vec![2.0, 3.0], vec![2, 1]);
        let c = mul(&a, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Tensor::arange(3);
        let s = Tensor::scalar(2.0);
        assert_eq!(mul(&a, &s).unwrap().data(), &[0.0, 2.0, 4.0]);
        assert_eq!(sub(&s, &a).unwrap().data(), &[2.0, 1.0, 0.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::ones(vec![2, 3]);
        let b = Tensor::ones(vec![4, 3]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn unbroadcast_sums_expanded_axes() {
        let g = Tensor::ones(vec![2, 3]);
        assert_eq!(unbroadcast(&g, &[3]).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(unbroadcast(&g, &[2, 1]).data(), &[3.0, 3.0]);
        assert_eq!(unbroadcast(&g, &[]).data(), &[6.0]);
        assert_eq!(unbroadcast(&g, &[2, 3]).data(), g.data());
    }

    #[test]
    fn matmul_2d_known() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let b = Tensor::arange(6).reshape(vec![3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(4).reshape(vec![2, 2]).unwrap();
        let eye = t(vec![1.0, 0.0, 0.0, 1.0], vec![2, 2]);
        assert_eq!(matmul(&a, &eye).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let b = Tensor::ones(vec![2, 3, 1]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.data(), &[3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let b = Tensor::ones(vec![3, 1]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.data(), &[3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::ones(vec![2, 3]);
        let b = Tensor::ones(vec![2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transpose_2d_and_batched() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        let at = transpose_last2(&a).unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);

        let b = Tensor::arange(12).reshape(vec![2, 2, 3]).unwrap();
        let bt = transpose_last2(&b).unwrap();
        assert_eq!(bt.dims(), &[2, 3, 2]);
        assert_eq!(bt.at(&[1, 2, 0]), b.at(&[1, 0, 2]));
    }

    #[test]
    fn permute_3d() {
        let a = Tensor::arange(24).reshape(vec![2, 3, 4]).unwrap();
        let p = permute(&a, &[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), a.at(&[1, 2, 3]));
        assert!(permute(&a, &[0, 0, 1]).is_err());
    }

    #[test]
    fn axis_reductions() {
        let a = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_eq!(sum_axis(&a, 0, false).unwrap().data(), &[3.0, 5.0, 7.0]);
        assert_eq!(sum_axis(&a, 1, false).unwrap().data(), &[3.0, 12.0]);
        assert_eq!(sum_axis(&a, 1, true).unwrap().dims(), &[2, 1]);
        assert_eq!(mean_axis(&a, 1, false).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(max_axis(&a, 0, false).unwrap().data(), &[3.0, 4.0, 5.0]);
        assert!(sum_axis(&a, 2, false).is_err());
    }

    #[test]
    fn argmax_rows() {
        let a = t(vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0], vec![2, 3]);
        assert_eq!(argmax_last(&a), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], vec![2, 3]);
        let s = softmax_last(&a);
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs stay finite (stability).
        assert!(!s.has_non_finite());
        // Uniform row.
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = t(vec![0.5, -1.0, 2.0], vec![1, 3]);
        let ls = log_softmax_last(&a);
        let s = softmax_last(&a);
        for (l, p) in ls.data().iter().zip(s.data().iter()) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::arange(4).reshape(vec![2, 2]).unwrap();
        let b = Tensor::ones(vec![1, 2]);
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 3.0, 1.0, 1.0]);

        let d = concat(&[&a, &a], 1).unwrap();
        assert_eq!(d.dims(), &[2, 4]);
        assert_eq!(d.data(), &[0.0, 1.0, 0.0, 1.0, 2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn slice_middle_axis() {
        let a = Tensor::arange(24).reshape(vec![2, 3, 4]).unwrap();
        let s = slice_axis(&a, 1, 1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), a.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), a.at(&[1, 2, 3]));
        assert!(slice_axis(&a, 1, 2, 4).is_err());
    }

    #[test]
    fn parallel_paths_match_serial_reference() {
        // 64·600 = 38_400 elements crosses PAR_MIN_ELEMS, so these calls
        // take the rayon paths; spot-check them against scalar arithmetic.
        let (r, c) = (64usize, 600usize);
        let a = t(
            (0..r * c).map(|i| (i % 17) as f32 - 8.0).collect(),
            vec![r, c],
        );
        let row = t((0..c).map(|j| (j % 5) as f32).collect(), vec![c]);

        // Same-shape fast path.
        let sq = mul(&a, &a).unwrap();
        for (x, y) in a.data().iter().zip(sq.data().iter()) {
            assert_eq!(x * x, *y);
        }

        // Broadcast odometer path (blocks start mid-tensor).
        let s = add(&a, &row).unwrap();
        for i in (0..r).step_by(7) {
            for j in (0..c).step_by(13) {
                assert_eq!(s.at(&[i, j]), a.at(&[i, j]) + row.at(&[j]));
            }
        }

        // Row-parallel softmax.
        let sm = softmax_last(&a);
        for srow in sm.data().chunks_exact(c) {
            assert!((srow.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        // Outer-parallel axis reduction (axis 1: outer = 64 rows).
        let sums = sum_axis(&a, 1, false).unwrap();
        for (i, arow) in a.data().chunks_exact(c).enumerate() {
            assert_eq!(sums.data()[i], arow.iter().fold(0.0f32, |acc, &x| acc + x));
        }
    }

    #[test]
    fn gather_scatter_round_trip() {
        let table = Tensor::arange(8).reshape(vec![4, 2]).unwrap();
        let picked = index_select_rows(&table, &[3, 0, 3]).unwrap();
        assert_eq!(picked.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);

        let mut grad = Tensor::zeros(vec![4, 2]);
        let upstream = Tensor::ones(vec![3, 2]);
        scatter_add_rows(&mut grad, &[3, 0, 3], &upstream);
        assert_eq!(grad.row(3), &[2.0, 2.0]);
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);

        assert!(index_select_rows(&table, &[4]).is_err());
    }
}

//! Dense `f32` tensor library used by the Meta-SGCL reproduction.
//!
//! Tensors are contiguous, row-major, and owned. The design favours
//! simplicity and predictable performance on a single CPU core:
//!
//! * [`Tensor`] — the core container with shape metadata.
//! * [`ops`] — elementwise (with NumPy-style broadcasting), matmul
//!   (2-D and batched 3-D), reductions, softmax, concat/slice/gather.
//! * [`init`] — seeded random initialisation (normal, uniform, Xavier).
//!
//! The crate is `#![deny(unsafe_code)]`; the only exemption is the [`simd`]
//! module, which wraps `std::arch` intrinsics behind runtime feature
//! detection with a documented bitwise-parity contract. Everywhere else,
//! hot loops are written so the compiler can auto-vectorise (slice
//! iteration, no bounds checks in the inner loop thanks to `chunks_exact`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod shape;
mod tensor;

pub mod bug;
pub mod determinism;
pub mod init;
pub mod ops;
pub mod pool;
pub mod qmat;
pub mod rules;
pub mod simd;
pub mod tuning;

pub use crate::bug::OrBug;
pub use crate::determinism::{reassoc_class, simd_path, ReassocClass, SimdPath};
pub use crate::qmat::{QuantMatrix, QuantMode};
pub use crate::shape::{broadcast_shapes, Shape};
pub use crate::tensor::Tensor;

/// Error type for tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand-side (or sole) shape.
        lhs: Vec<usize>,
        /// Right-hand-side shape, if the op is binary.
        rhs: Vec<usize>,
    },
    /// An axis argument was out of range for the tensor's rank.
    InvalidAxis {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank.
        ndim: usize,
    },
    /// An index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The valid bound (exclusive).
        bound: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::InvalidAxis { axis, ndim } => {
                write!(f, "axis {axis} out of range for rank-{ndim} tensor")
            }
            TensorError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

//! A process-wide recycling pool for `Vec<f32>` tensor storage.
//!
//! Training steps allocate and free the same handful of buffer sizes over and
//! over (activations, gradients, GEMM pack scratch). The pool keeps freed
//! buffers keyed by exact length so the next request of that length reuses
//! the allocation instead of hitting the system allocator.
//!
//! Determinism contract: [`take_zeroed`] always returns an all-zero buffer,
//! so pooled storage is indistinguishable from a fresh `vec![0.0; len]`.
//! [`take_raw`] returns arbitrary stale contents and is only for scratch
//! that the caller fully overwrites before reading (GEMM pack panels).
//!
//! The pool is opt-in at the call site (`Tensor::pooled_zeros` vs
//! `Tensor::zeros`) and can be disabled globally with `META_SGCL_POOL=0`,
//! which turns every call here into a plain allocate/drop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Buffers shorter than this are never pooled; the allocator is already fast
/// for small blocks and pooling them would just grow the free map.
/// Public so the static cost model in `crates/analysis` can predict which
/// tape buffers will land in pool size classes.
pub const MIN_POOLED_LEN: usize = 1024;

/// At most this many free buffers are kept per size class; excess buffers
/// are dropped so the pool cannot grow without bound. Public for the same
/// reason as [`MIN_POOLED_LEN`].
pub const PER_CLASS_CAP: usize = 32;

static FREE_LISTS: OnceLock<Mutex<HashMap<usize, Vec<Vec<f32>>>>> = OnceLock::new();
static HITS: AtomicUsize = AtomicUsize::new(0);
static MISSES: AtomicUsize = AtomicUsize::new(0);

/// 0 = unknown, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("META_SGCL_POOL")
                .map(|v| v != "0")
                .unwrap_or(true);
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Enables or disables the pool for this process (overrides `META_SGCL_POOL`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

fn free_lists() -> &'static Mutex<HashMap<usize, Vec<Vec<f32>>>> {
    FREE_LISTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Pool traffic mirrored into the telemetry registry. Hit/miss ratios depend
/// on allocation interleaving across worker threads, so all three counters
/// are registered nondeterministic (`det = false`): they show up in traces
/// and reports but never in determinism-checked metric snapshots.
fn pool_counter(which: &'static OnceLock<&'static telemetry::Counter>, name: &'static str) {
    which
        .get_or_init(|| telemetry::metrics::counter(name, false))
        .inc();
}

static HIT_CTR: OnceLock<&'static telemetry::Counter> = OnceLock::new();
static MISS_CTR: OnceLock<&'static telemetry::Counter> = OnceLock::new();
static RECYCLE_CTR: OnceLock<&'static telemetry::Counter> = OnceLock::new();

fn pop(len: usize) -> Option<Vec<f32>> {
    if !enabled() || len < MIN_POOLED_LEN {
        return None;
    }
    let popped = match free_lists().lock() {
        Ok(mut map) => map.get_mut(&len).and_then(|list| list.pop()),
        Err(_) => None,
    };
    match popped {
        Some(v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            pool_counter(&HIT_CTR, "tensor.pool.hit");
            Some(v)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            pool_counter(&MISS_CTR, "tensor.pool.miss");
            None
        }
    }
}

/// Takes a buffer of exactly `len` zeros, reusing a recycled allocation when
/// one is available. Bitwise-equivalent to `vec![0.0; len]`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    match pop(len) {
        Some(mut v) => {
            v.iter_mut().for_each(|x| *x = 0.0);
            v
        }
        None => vec![0.0; len],
    }
}

/// Takes a buffer of exactly `len` elements with **arbitrary contents**.
/// Only for scratch space the caller fully overwrites before reading.
pub fn take_raw(len: usize) -> Vec<f32> {
    pop(len).unwrap_or_else(|| vec![0.0; len])
}

/// Returns a buffer to the pool. Small buffers and overflow beyond the
/// per-size cap are simply dropped.
pub fn recycle(v: Vec<f32>) {
    if !enabled() || v.len() < MIN_POOLED_LEN {
        return;
    }
    if let Ok(mut map) = free_lists().lock() {
        let list = map.entry(v.len()).or_default();
        if list.len() < PER_CLASS_CAP {
            list.push(v);
            pool_counter(&RECYCLE_CTR, "tensor.pool.recycle");
        }
    }
}

/// (hits, misses) counters for pooled-size requests; used by benchmarks and
/// tests to confirm reuse is actually happening.
pub fn stats() -> (usize, usize) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_and_zeroes() {
        set_enabled(true);
        let len = MIN_POOLED_LEN + 7;
        let mut v = take_zeroed(len);
        assert!(v.iter().all(|&x| x == 0.0));
        v.iter_mut().for_each(|x| *x = 3.5);
        recycle(v);
        let v2 = take_zeroed(len);
        assert_eq!(v2.len(), len);
        assert!(
            v2.iter().all(|&x| x == 0.0),
            "pooled buffer must come back zeroed"
        );
    }

    #[test]
    fn small_buffers_are_not_pooled() {
        set_enabled(true);
        let before = stats();
        let v = take_zeroed(8);
        recycle(v);
        let after = stats();
        assert_eq!(
            before, after,
            "sub-threshold sizes bypass the pool entirely"
        );
    }

    #[test]
    fn disabled_pool_is_plain_allocation() {
        set_enabled(false);
        let v = take_zeroed(MIN_POOLED_LEN * 2);
        recycle(v);
        let (h0, _) = stats();
        let v2 = take_raw(MIN_POOLED_LEN * 2);
        assert!(v2.iter().all(|&x| x == 0.0));
        let (h1, _) = stats();
        assert_eq!(h0, h1, "disabled pool never records hits");
        set_enabled(true);
    }
}

//! Shape utilities: dimension bookkeeping, strides, broadcasting rules.

use crate::{Result, TensorError};

/// A tensor shape: an ordered list of dimension sizes.
///
/// `Shape` is a thin wrapper over `Vec<usize>` adding stride computation and
/// broadcasting helpers. A scalar has the empty shape `[]` and one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major (C-order) strides, in elements.
    ///
    /// The last dimension has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.0.len()];
        let mut acc = 1usize;
        for (s, &d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a flat row-major offset into per-axis indices.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.0.len()];
        for axis in (0..self.0.len()).rev() {
            let d = self.0[axis];
            idx[axis] = offset % d;
            offset /= d;
        }
        idx
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Computes the broadcast result shape of two shapes under NumPy rules.
///
/// Trailing dimensions are aligned; each pair must be equal or one of them 1.
///
/// ```
/// use tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]).unwrap(), vec![4, 2, 3]);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let da = if i < ndim - a.len() {
            1
        } else {
            a[i - (ndim - a.len())]
        };
        let db = if i < ndim - b.len() {
            1
        } else {
            b[i - (ndim - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast",
                lhs: a.to_vec(),
                rhs: b.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Strides for iterating a tensor of shape `from` as if it had been
/// broadcast to shape `to`: broadcast axes get stride 0.
pub(crate) fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    let base = Shape::new(from.to_vec()).strides();
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..from.len() {
        out[offset + i] = if from[i] == 1 && to[offset + i] != 1 {
            0
        } else {
            base[i]
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert_eq!(
            Shape::new(Vec::<usize>::new()).strides(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn numel_and_unravel() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.numel(), 6);
        assert_eq!(s.unravel(0), vec![0, 0]);
        assert_eq!(s.unravel(4), vec![1, 1]);
        assert_eq!(s.unravel(5), vec![1, 2]);
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[2, 3]).unwrap(), vec![2, 3]);
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_axes() {
        assert_eq!(broadcast_strides(&[1, 3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 3], &[2, 3]), vec![3, 1]);
    }
}

//! Seeded random tensor initialisation.
//!
//! All initialisers take an explicit `&mut StdRng` so experiments are
//! reproducible end-to-end from a single seed.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Tensor;

/// Samples from a standard normal via the Box–Muller transform.
///
/// We avoid `rand_distr` to keep the dependency set minimal; Box–Muller is
/// exact and plenty fast for initialisation and reparameterization noise.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    // u1 in (0, 1] so ln is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor with i.i.d. `N(mean, std²)` entries.
pub fn randn(rng: &mut StdRng, dims: impl Into<Vec<usize>>, mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = mean + std * sample_standard_normal(rng);
    }
    t
}

/// Tensor with i.i.d. `U(low, high)` entries.
pub fn uniform(rng: &mut StdRng, dims: impl Into<Vec<usize>>, low: f32, high: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.gen_range(low..high);
    }
    t
}

/// Xavier/Glorot uniform initialisation for a weight of shape
/// `[fan_in, fan_out]` (or higher rank, using the last two dims).
pub fn xavier_uniform(rng: &mut StdRng, dims: impl Into<Vec<usize>>) -> Tensor {
    let dims = dims.into();
    let nd = dims.len();
    let (fan_in, fan_out) = if nd >= 2 {
        (dims[nd - 2], dims[nd - 1])
    } else {
        (dims[0], dims[0])
    };
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, -bound, bound)
}

/// Truncated-normal-ish initialisation used for embedding tables
/// (std 0.02, matching the SASRec/BERT convention).
pub fn embedding_init(rng: &mut StdRng, dims: impl Into<Vec<usize>>) -> Tensor {
    randn(rng, dims, 0.0, 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&mut rng, vec![20_000], 1.0, 2.0);
        let mean = t.mean_all();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (t.numel() - 1) as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, vec![10_000], -0.5, 0.5);
        assert!(t.max_all() < 0.5);
        assert!(t.min_all() >= -0.5);
        assert!(t.mean_all().abs() < 0.02);
    }

    #[test]
    fn xavier_bound_respects_fans() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(&mut rng, vec![100, 200]);
        let bound = (6.0f32 / 300.0).sqrt();
        assert!(t.max_all() <= bound);
        assert!(t.min_all() >= -bound);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            randn(&mut a, vec![8], 0.0, 1.0),
            randn(&mut b, vec![8], 0.0, 1.0)
        );
    }
}

//! The core [`Tensor`] container.

use crate::shape::Shape;
use crate::{Result, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` owns its data. Operations produce new tensors; in-place variants
/// are provided where they matter for performance (optimizer updates,
/// gradient accumulation).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Builds a tensor from raw data and a shape. The data length must equal
    /// the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: impl Into<Vec<usize>>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape.dims()
        );
        Tensor { data, shape }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(Vec::new()),
        }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: impl Into<Vec<usize>>) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// All-zeros tensor whose storage is drawn from the process-wide
    /// [`crate::pool`] when a recycled buffer of the right size exists.
    ///
    /// Bitwise-equivalent to [`Tensor::zeros`]: the buffer is always zeroed
    /// before it is returned, so callers cannot observe whether the
    /// allocation was recycled.
    pub fn pooled_zeros(dims: impl Into<Vec<usize>>) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: crate::pool::take_zeroed(shape.numel()),
            shape,
        }
    }

    /// Consumes the tensor and returns its storage to the [`crate::pool`]
    /// for reuse by a later [`Tensor::pooled_zeros`].
    pub fn recycle(self) {
        crate::pool::recycle(self.data);
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: impl Into<Vec<usize>>) -> Self {
        Self::full(dims, 1.0)
    }

    /// Tensor of the given shape filled with `value`.
    pub fn full(dims: impl Into<Vec<usize>>, value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// `[0, 1, 2, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), vec![n])
    }

    /// The shape's dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Element at multi-dimensional index.
    ///
    /// # Contract
    ///
    /// `index.len()` must equal [`Tensor::ndim`] and every coordinate must be
    /// in range for its axis. The arity check is a `debug_assert_eq!` only: in
    /// release builds a short index silently reads a *valid but wrong* offset
    /// (missing trailing coordinates act as zeros), and a long index may read
    /// out of bounds or panic on the flat buffer access. Callers that cannot
    /// statically guarantee the arity (e.g. the graph auditor walking
    /// user-provided shapes) must use [`Tensor::try_at`] instead.
    pub fn at(&self, index: &[usize]) -> f32 {
        debug_assert_eq!(index.len(), self.ndim());
        let strides = self.shape.strides();
        let off: usize = index.iter().zip(strides.iter()).map(|(i, s)| i * s).sum();
        self.data[off]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// Same contract as [`Tensor::at`]: arity is only checked in debug
    /// builds. Use [`Tensor::try_set`] for a fully checked variant.
    pub fn set(&mut self, index: &[usize], value: f32) {
        debug_assert_eq!(index.len(), self.ndim());
        let strides = self.shape.strides();
        let off: usize = index.iter().zip(strides.iter()).map(|(i, s)| i * s).sum();
        self.data[off] = value;
    }

    /// Validates a multi-dimensional index (arity and per-axis bounds) and
    /// returns its flat row-major offset.
    fn checked_offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.ndim() {
            return Err(TensorError::InvalidAxis {
                axis: index.len(),
                ndim: self.ndim(),
            });
        }
        for (&i, &bound) in index.iter().zip(self.dims().iter()) {
            if i >= bound {
                return Err(TensorError::IndexOutOfRange { index: i, bound });
            }
        }
        let strides = self.shape.strides();
        Ok(index.iter().zip(strides.iter()).map(|(i, s)| i * s).sum())
    }

    /// Fully checked variant of [`Tensor::at`]: verifies index arity *and*
    /// per-axis bounds in all build profiles.
    pub fn try_at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.checked_offset(index)?])
    }

    /// Fully checked variant of [`Tensor::set`]: verifies index arity *and*
    /// per-axis bounds in all build profiles.
    pub fn try_set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.checked_offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape of equal element
    /// count.
    pub fn reshape(&self, dims: impl Into<Vec<usize>>) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.dims().to_vec(),
                rhs: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combine with an identically-shaped tensor.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// `self += other` (same shape), the hot path for gradient accumulation.
    ///
    /// Panics on shape mismatch; see [`Tensor::try_add_assign`] for the
    /// non-panicking variant whose error carries both dim vectors.
    pub fn add_assign(&mut self, other: &Tensor) {
        if let Err(e) = self.try_add_assign(other) {
            panic!("{e}");
        }
    }

    /// `self += other` (same shape), reporting a structured
    /// [`TensorError::ShapeMismatch`] (with both dim vectors) instead of
    /// panicking when shapes differ.
    pub fn try_add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// `self += alpha * other` (same shape).
    ///
    /// Panics on shape mismatch; see [`Tensor::try_axpy`] for the
    /// non-panicking variant.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        if let Err(e) = self.try_axpy(alpha, other) {
            panic!("{e}");
        }
    }

    /// `self += alpha * other` (same shape), reporting a structured
    /// [`TensorError::ShapeMismatch`] instead of panicking.
    pub fn try_axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.dims() != other.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn zero_(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row `i` of a rank-2 tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a rank-2 tensor");
        let cols = self.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.dim(1);
        &mut self.data[i * cols..(i + 1) * cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.sum_all(), 0.0);

        let t = Tensor::full(vec![4], 2.5);
        assert_eq!(t.sum_all(), 10.0);

        let t = Tensor::arange(4);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);

        let s = Tensor::scalar(7.0);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert!(t.reshape(vec![4]).is_err());
    }

    #[test]
    fn inplace_math() {
        let mut a = Tensor::ones(vec![3]);
        let b = Tensor::arange(3);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[1.0, 3.0, 5.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[0.5, 1.5, 2.5]);
        a.zero_();
        assert_eq!(a.sum_all(), 0.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], vec![3]);
        assert_eq!(t.sum_all(), 2.0);
        assert_eq!(t.max_all(), 3.0);
        assert_eq!(t.min_all(), -2.0);
        assert!((t.mean_all() - 2.0 / 3.0).abs() < 1e-6);
        assert!((t.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn rows() {
        let t = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn structured_shape_errors() {
        let mut a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![3, 2]);
        match a.try_add_assign(&b) {
            Err(TensorError::ShapeMismatch { op, lhs, rhs }) => {
                assert_eq!(op, "add_assign");
                assert_eq!(lhs, vec![2, 3]);
                assert_eq!(rhs, vec![3, 2]);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        match a.try_axpy(0.5, &b) {
            Err(TensorError::ShapeMismatch { op, .. }) => assert_eq!(op, "axpy"),
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        // Matching shapes still work through the fallible path.
        let c = Tensor::ones(vec![2, 3]);
        a.try_add_assign(&c).unwrap();
        assert_eq!(a.sum_all(), 6.0);
    }

    #[test]
    #[should_panic(expected = "add_assign: incompatible shapes")]
    fn add_assign_panics_with_dims() {
        let mut a = Tensor::zeros(vec![2]);
        a.add_assign(&Tensor::zeros(vec![3]));
    }

    #[test]
    fn checked_accessors() {
        let mut t = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_eq!(t.try_at(&[1, 2]).unwrap(), 5.0);
        t.try_set(&[0, 1], 9.0).unwrap();
        assert_eq!(t.at(&[0, 1]), 9.0);
        // Wrong arity is reported in all build profiles, unlike `at`/`set`.
        assert_eq!(
            t.try_at(&[1]),
            Err(TensorError::InvalidAxis { axis: 1, ndim: 2 })
        );
        assert_eq!(
            t.try_at(&[1, 3]),
            Err(TensorError::IndexOutOfRange { index: 3, bound: 3 })
        );
        assert!(t.try_set(&[2, 0], 0.0).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::ones(vec![2]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(t.has_non_finite());
    }
}

//! Runtime-dispatched SIMD kernels for the GEMM micro-layer.
//!
//! This is the only module in the crate that uses `unsafe` (the crate is
//! `#![deny(unsafe_code)]` with a scoped allow here): `std::arch` intrinsics
//! take raw pointers, and `#[target_feature]` functions are unsafe to call
//! on stable Rust. Every unsafe block is bounded by slice lengths checked
//! (or `debug_assert!`ed) at the function head, and no kernel ever reads or
//! writes outside its argument slices.
//!
//! # Determinism contract
//!
//! The PR 7 determinism classifier (`crate::determinism`) pins every GEMM
//! and reduction op `ReassocClass::FixedOrder`: each output element must be
//! one strict, serial accumulation chain in `kk` order starting at `+0.0`.
//! The SIMD kernels here respect that by vectorising **across output
//! elements, never across the reduction axis**:
//!
//! * one vector lane == one output column, so each lane carries exactly the
//!   scalar kernel's chain for that element;
//! * multiply and add are issued as *separate* intrinsics (`mul_ps` then
//!   `add_ps`, `vmulq` then `vaddq`) — never FMA, which would skip the
//!   intermediate rounding and change bits vs the scalar `a * b + c`;
//! * lane order is fixed by the load/store addressing, so results are
//!   bitwise-identical to the scalar micro-kernel, on every input,
//!   including NaN/Inf payloads.
//!
//! `ReassocSafe` ops are allowed wider, reassociating accumulators; the only
//! such kernel here is [`max_abs`] (order-independent for finite inputs),
//! used to derive int8 quantisation scales outside any tape op. The
//! elementwise binary kernels are lane-pure (no reduction at all) and are
//! bitwise-identical to scalar trivially.
//!
//! Every op with a SIMD path must be declared in
//! `crate::determinism::SIMD_OPS`; `analysis::determinism` fails `msgc
//! check` for any op that gains a kernel here without a declared class.
//!
//! # Dispatch
//!
//! [`active`] combines a one-time hardware probe
//! (`is_x86_feature_detected!("avx2")`, cached in a `OnceLock`; NEON is
//! baseline on aarch64) with the `META_SGCL_SIMD` kill switch read from
//! `crate::tuning` on every call (one relaxed atomic load), so tests and
//! sweep drivers can flip paths in-process. `META_SGCL_SIMD=0` restores the
//! exact scalar PR 3 behaviour. Whole loops live inside the
//! `#[target_feature]` functions: calls across the feature boundary do not
//! inline, so the boundary is crossed once per kernel, not once per step.

#![allow(unsafe_code)]

/// Which kernel family [`active`] resolved to for this call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable scalar fallback (also the `META_SGCL_SIMD=0` path).
    Scalar,
    /// AVX2 8-lane f32 kernels (x86_64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// NEON 4-lane f32 kernels (aarch64 baseline).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Scalar => write!(f, "scalar"),
            #[cfg(target_arch = "x86_64")]
            Level::Avx2 => write!(f, "avx2"),
            #[cfg(target_arch = "aarch64")]
            Level::Neon => write!(f, "neon"),
        }
    }
}

/// One-time hardware capability probe, independent of the kill switch.
pub fn hardware_level() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        if *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2")) {
            Level::Avx2
        } else {
            Level::Scalar
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline ISA; no runtime probe needed.
        Level::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Level::Scalar
    }
}

/// The dispatch level for this call: hardware capability gated by the
/// `META_SGCL_SIMD` kill switch (one relaxed atomic load).
#[inline]
pub fn active() -> Level {
    if !crate::tuning::simd_enabled() {
        return Level::Scalar;
    }
    hardware_level()
}

/// Elementwise binary kernels with a SIMD path (same-shape fast path only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

// ---------------------------------------------------------------------------
// Portable scalar kernels (the fallback AND the reference semantics).
// ---------------------------------------------------------------------------

/// Scalar 4×8 stripe accumulator — the PR 3 micro-kernel inner loop,
/// extracted so the SIMD variants have one definition to be bitwise-equal
/// to. `apanel` is kk-major and compact: `apanel[kk*4 + r]` is the A value
/// for row `r` at step `kk`; `bpanel` is kk-major 8-wide
/// (`bpanel[kk*8 + c]`). Accumulates `k = bpanel.len()/8` steps into `acc`
/// in strict `kk` order.
pub fn stripe_acc_scalar(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; 8]; 4]) {
    for (bpanel_row, apanel_row) in bpanel.chunks_exact(8).zip(apanel.chunks_exact(4)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = apanel_row[r];
            for (o, &bv) in accr.iter_mut().zip(bpanel_row) {
                *o += av * bv;
            }
        }
    }
}

fn gemm_row_scalar(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    for (kk, &aik) in a_row.iter().take(k).enumerate() {
        let b_row = &b[kk * n..kk * n + n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += aik * bv;
        }
    }
}

fn binary_scalar(kind: BinKind, a: &[f32], b: &[f32], out: &mut [f32]) {
    match kind {
        BinKind::Add => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x + y;
            }
        }
        BinKind::Sub => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x - y;
            }
        }
        BinKind::Mul => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x * y;
            }
        }
        BinKind::Div => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x / y;
            }
        }
    }
}

fn dequant_bf16_scalar(src: &[u16], dst: &mut [f32]) {
    for (d, &bits) in dst.iter_mut().zip(src) {
        *d = f32::from_bits((bits as u32) << 16);
    }
}

fn max_abs_scalar(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BinKind;
    use std::arch::x86_64::*;

    /// AVX2 stripe accumulator: 4 rows × 8 columns, one `__m256` per row,
    /// whole `k` loop inside the feature boundary. One lane == one output
    /// column; separate `mul_ps`/`add_ps` (no FMA) keeps each lane's chain
    /// bitwise-identical to [`super::stripe_acc_scalar`].
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `bpanel.len() % 8 == 0`, and
    /// `apanel.len() >= (bpanel.len()/8) * 4`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn stripe_acc(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; 8]; 4]) {
        let k = bpanel.len() / 8;
        debug_assert!(apanel.len() >= k * 4);
        let ap = apanel.as_ptr();
        let bp = bpanel.as_ptr();
        let mut r0 = _mm256_setzero_ps();
        let mut r1 = _mm256_setzero_ps();
        let mut r2 = _mm256_setzero_ps();
        let mut r3 = _mm256_setzero_ps();
        for kk in 0..k {
            let bv = _mm256_loadu_ps(bp.add(kk * 8));
            let a = ap.add(kk * 4);
            r0 = _mm256_add_ps(r0, _mm256_mul_ps(_mm256_broadcast_ss(&*a), bv));
            r1 = _mm256_add_ps(r1, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(1)), bv));
            r2 = _mm256_add_ps(r2, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(2)), bv));
            r3 = _mm256_add_ps(r3, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(3)), bv));
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), r0);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), r1);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), r2);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), r3);
    }

    /// Dual-stripe AVX2 accumulator: one 4×8 block against two adjacent B
    /// stripes at once. Each A broadcast is reused for both stripes, halving
    /// the load traffic per FLOP, and the 8 independent accumulator chains
    /// hide `add_ps` latency. Per output element the chain is identical to
    /// the single-stripe kernel (same `kk` order, separate mul/add), so the
    /// stripe pairing never changes bits.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `b0.len() == b1.len()`,
    /// `b0.len() % 8 == 0`, and `apanel.len() >= (b0.len()/8) * 4`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn stripe_acc2(
        apanel: &[f32],
        b0: &[f32],
        b1: &[f32],
        acc0: &mut [[f32; 8]; 4],
        acc1: &mut [[f32; 8]; 4],
    ) {
        let k = b0.len() / 8;
        debug_assert!(b1.len() == b0.len() && apanel.len() >= k * 4);
        let ap = apanel.as_ptr();
        let (p0, p1) = (b0.as_ptr(), b1.as_ptr());
        let mut s00 = _mm256_setzero_ps();
        let mut s01 = _mm256_setzero_ps();
        let mut s02 = _mm256_setzero_ps();
        let mut s03 = _mm256_setzero_ps();
        let mut s10 = _mm256_setzero_ps();
        let mut s11 = _mm256_setzero_ps();
        let mut s12 = _mm256_setzero_ps();
        let mut s13 = _mm256_setzero_ps();
        for kk in 0..k {
            let bv0 = _mm256_loadu_ps(p0.add(kk * 8));
            let bv1 = _mm256_loadu_ps(p1.add(kk * 8));
            let a = ap.add(kk * 4);
            let a0 = _mm256_broadcast_ss(&*a);
            let a1 = _mm256_broadcast_ss(&*a.add(1));
            let a2 = _mm256_broadcast_ss(&*a.add(2));
            let a3 = _mm256_broadcast_ss(&*a.add(3));
            s00 = _mm256_add_ps(s00, _mm256_mul_ps(a0, bv0));
            s10 = _mm256_add_ps(s10, _mm256_mul_ps(a0, bv1));
            s01 = _mm256_add_ps(s01, _mm256_mul_ps(a1, bv0));
            s11 = _mm256_add_ps(s11, _mm256_mul_ps(a1, bv1));
            s02 = _mm256_add_ps(s02, _mm256_mul_ps(a2, bv0));
            s12 = _mm256_add_ps(s12, _mm256_mul_ps(a2, bv1));
            s03 = _mm256_add_ps(s03, _mm256_mul_ps(a3, bv0));
            s13 = _mm256_add_ps(s13, _mm256_mul_ps(a3, bv1));
        }
        _mm256_storeu_ps(acc0[0].as_mut_ptr(), s00);
        _mm256_storeu_ps(acc0[1].as_mut_ptr(), s01);
        _mm256_storeu_ps(acc0[2].as_mut_ptr(), s02);
        _mm256_storeu_ps(acc0[3].as_mut_ptr(), s03);
        _mm256_storeu_ps(acc1[0].as_mut_ptr(), s10);
        _mm256_storeu_ps(acc1[1].as_mut_ptr(), s11);
        _mm256_storeu_ps(acc1[2].as_mut_ptr(), s12);
        _mm256_storeu_ps(acc1[3].as_mut_ptr(), s13);
    }

    /// AVX2 dense axpy row: `out_row[j] += a_row[kk] * b[kk*n + j]` in
    /// strict `kk`-outer order, 8 columns per step, scalar tail in the same
    /// left-to-right column order.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `a_row.len() >= k`,
    /// `b.len() >= k*n`, `out_row.len() >= n`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        debug_assert!(a_row.len() >= k && b.len() >= k * n && out_row.len() >= n);
        let op = out_row.as_mut_ptr();
        for kk in 0..k {
            let aik = *a_row.get_unchecked(kk);
            let av = _mm256_set1_ps(aik);
            let brow = b.as_ptr().add(kk * n);
            let mut j = 0;
            while j + 8 <= n {
                let bv = _mm256_loadu_ps(brow.add(j));
                let ov = _mm256_loadu_ps(op.add(j));
                _mm256_storeu_ps(op.add(j), _mm256_add_ps(ov, _mm256_mul_ps(av, bv)));
                j += 8;
            }
            while j < n {
                *op.add(j) += aik * *brow.add(j);
                j += 1;
            }
        }
    }

    /// AVX2 same-shape elementwise binary kernel (lane-pure, bitwise equal
    /// to scalar for every kind).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and
    /// `a.len() == b.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn binary(kind: BinKind, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert!(a.len() == out.len() && b.len() == out.len());
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        macro_rules! run {
            ($vop:ident, $sop:tt) => {{
                let mut i = 0;
                while i + 8 <= n {
                    let av = _mm256_loadu_ps(ap.add(i));
                    let bv = _mm256_loadu_ps(bp.add(i));
                    _mm256_storeu_ps(op.add(i), $vop(av, bv));
                    i += 8;
                }
                while i < n {
                    *op.add(i) = *ap.add(i) $sop *bp.add(i);
                    i += 1;
                }
            }};
        }
        match kind {
            BinKind::Add => run!(_mm256_add_ps, +),
            BinKind::Sub => run!(_mm256_sub_ps, -),
            BinKind::Mul => run!(_mm256_mul_ps, *),
            BinKind::Div => run!(_mm256_div_ps, /),
        }
    }

    /// AVX2 bf16 → f32 widening (exact: shift into the high mantissa bits).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_bf16(src: &[u16], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let half = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let wide = _mm256_cvtepu16_epi32(half);
            let bits = _mm256_slli_epi32(wide, 16);
            _mm256_storeu_ps(dp.add(i), _mm256_castsi256_ps(bits));
            i += 8;
        }
        while i < n {
            *dp.add(i) = f32::from_bits((*sp.add(i) as u32) << 16);
            i += 1;
        }
    }

    /// AVX2 reassociating max-abs reduction (order-independent for finite
    /// inputs; NaN inputs are ignored like `f32::max`).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn max_abs(xs: &[f32]) -> f32 {
        let n = xs.len();
        let p = xs.as_ptr();
        let sign_mask = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(p.add(i)));
            acc = _mm256_max_ps(acc, v);
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
        while i < n {
            m = m.max((*p.add(i)).abs());
            i += 1;
        }
        m
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::BinKind;
    use std::arch::aarch64::*;

    /// NEON stripe accumulator: two `float32x4` per row (columns 0..4 and
    /// 4..8), separate `vmulq`/`vaddq` (no fused `vfmaq`), strict `kk`
    /// order — bitwise-identical to [`super::stripe_acc_scalar`].
    ///
    /// # Safety
    /// Caller must ensure `bpanel.len() % 8 == 0` and
    /// `apanel.len() >= (bpanel.len()/8) * 4`.
    #[target_feature(enable = "neon")]
    pub unsafe fn stripe_acc(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; 8]; 4]) {
        let k = bpanel.len() / 8;
        debug_assert!(apanel.len() >= k * 4);
        let ap = apanel.as_ptr();
        let bp = bpanel.as_ptr();
        let mut lo = [vdupq_n_f32(0.0); 4];
        let mut hi = [vdupq_n_f32(0.0); 4];
        for kk in 0..k {
            let blo = vld1q_f32(bp.add(kk * 8));
            let bhi = vld1q_f32(bp.add(kk * 8 + 4));
            for r in 0..4 {
                let av = vdupq_n_f32(*ap.add(kk * 4 + r));
                lo[r] = vaddq_f32(lo[r], vmulq_f32(av, blo));
                hi[r] = vaddq_f32(hi[r], vmulq_f32(av, bhi));
            }
        }
        for r in 0..4 {
            vst1q_f32(acc[r].as_mut_ptr(), lo[r]);
            vst1q_f32(acc[r].as_mut_ptr().add(4), hi[r]);
        }
    }

    /// Dual-stripe NEON accumulator (see the AVX2 twin for the rationale;
    /// bitwise-identical to two single-stripe calls by construction).
    ///
    /// # Safety
    /// Caller must ensure `b0.len() == b1.len()`, `b0.len() % 8 == 0`, and
    /// `apanel.len() >= (b0.len()/8) * 4`.
    #[target_feature(enable = "neon")]
    pub unsafe fn stripe_acc2(
        apanel: &[f32],
        b0: &[f32],
        b1: &[f32],
        acc0: &mut [[f32; 8]; 4],
        acc1: &mut [[f32; 8]; 4],
    ) {
        let k = b0.len() / 8;
        debug_assert!(b1.len() == b0.len() && apanel.len() >= k * 4);
        let ap = apanel.as_ptr();
        let (p0, p1) = (b0.as_ptr(), b1.as_ptr());
        let mut s0 = [[vdupq_n_f32(0.0); 4]; 4];
        let mut s1 = [[vdupq_n_f32(0.0); 4]; 4];
        for kk in 0..k {
            let b0lo = vld1q_f32(p0.add(kk * 8));
            let b0hi = vld1q_f32(p0.add(kk * 8 + 4));
            let b1lo = vld1q_f32(p1.add(kk * 8));
            let b1hi = vld1q_f32(p1.add(kk * 8 + 4));
            for r in 0..4 {
                let av = vdupq_n_f32(*ap.add(kk * 4 + r));
                s0[r][0] = vaddq_f32(s0[r][0], vmulq_f32(av, b0lo));
                s0[r][1] = vaddq_f32(s0[r][1], vmulq_f32(av, b0hi));
                s1[r][0] = vaddq_f32(s1[r][0], vmulq_f32(av, b1lo));
                s1[r][1] = vaddq_f32(s1[r][1], vmulq_f32(av, b1hi));
            }
        }
        for r in 0..4 {
            vst1q_f32(acc0[r].as_mut_ptr(), s0[r][0]);
            vst1q_f32(acc0[r].as_mut_ptr().add(4), s0[r][1]);
            vst1q_f32(acc1[r].as_mut_ptr(), s1[r][0]);
            vst1q_f32(acc1[r].as_mut_ptr().add(4), s1[r][1]);
        }
    }

    /// NEON dense axpy row (`kk`-outer, 4 columns per step, scalar tail).
    ///
    /// # Safety
    /// Caller must ensure `a_row.len() >= k`, `b.len() >= k*n`,
    /// `out_row.len() >= n`.
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
        debug_assert!(a_row.len() >= k && b.len() >= k * n && out_row.len() >= n);
        let op = out_row.as_mut_ptr();
        for kk in 0..k {
            let aik = *a_row.get_unchecked(kk);
            let av = vdupq_n_f32(aik);
            let brow = b.as_ptr().add(kk * n);
            let mut j = 0;
            while j + 4 <= n {
                let bv = vld1q_f32(brow.add(j));
                let ov = vld1q_f32(op.add(j));
                vst1q_f32(op.add(j), vaddq_f32(ov, vmulq_f32(av, bv)));
                j += 4;
            }
            while j < n {
                *op.add(j) += aik * *brow.add(j);
                j += 1;
            }
        }
    }

    /// NEON same-shape elementwise binary kernel.
    ///
    /// # Safety
    /// Caller must ensure `a.len() == b.len() == out.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn binary(kind: BinKind, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert!(a.len() == out.len() && b.len() == out.len());
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        macro_rules! run {
            ($vop:ident, $sop:tt) => {{
                let mut i = 0;
                while i + 4 <= n {
                    let av = vld1q_f32(ap.add(i));
                    let bv = vld1q_f32(bp.add(i));
                    vst1q_f32(op.add(i), $vop(av, bv));
                    i += 4;
                }
                while i < n {
                    *op.add(i) = *ap.add(i) $sop *bp.add(i);
                    i += 1;
                }
            }};
        }
        match kind {
            BinKind::Add => run!(vaddq_f32, +),
            BinKind::Sub => run!(vsubq_f32, -),
            BinKind::Mul => run!(vmulq_f32, *),
            BinKind::Div => run!(vdivq_f32, /),
        }
    }

    /// NEON bf16 → f32 widening (exact).
    ///
    /// # Safety
    /// Caller must ensure `src.len() == dst.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn dequant_bf16(src: &[u16], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let half = vld1_u16(sp.add(i));
            let wide = vshll_n_u16::<16>(half);
            vst1q_f32(dp.add(i), vreinterpretq_f32_u32(wide));
            i += 4;
        }
        while i < n {
            *dp.add(i) = f32::from_bits((*sp.add(i) as u32) << 16);
            i += 1;
        }
    }

    /// NEON reassociating max-abs reduction.
    ///
    /// # Safety
    /// Always safe to call on aarch64 (NEON is baseline); marked unsafe for
    /// symmetry with the AVX2 twin.
    #[target_feature(enable = "neon")]
    pub unsafe fn max_abs(xs: &[f32]) -> f32 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            acc = vmaxq_f32(acc, vabsq_f32(vld1q_f32(p.add(i))));
            i += 4;
        }
        let mut m = vmaxvq_f32(acc);
        while i < n {
            m = m.max((*p.add(i)).abs());
            i += 1;
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Dispatch wrappers (safe API used by `ops` and `qmat`).
// ---------------------------------------------------------------------------

/// 4×8 stripe accumulation at the given dispatch level (see
/// [`stripe_acc_scalar`] for the panel layout). Bitwise-identical across
/// levels by construction.
#[inline]
pub fn stripe_acc(level: Level, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; 8]; 4]) {
    debug_assert_eq!(bpanel.len() % 8, 0);
    debug_assert!(apanel.len() >= (bpanel.len() / 8) * 4);
    match level {
        Level::Scalar => stripe_acc_scalar(apanel, bpanel, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 is only constructed after a successful
        // is_x86_feature_detected!("avx2") probe; panel bounds checked above.
        Level::Avx2 => unsafe { avx2::stripe_acc(apanel, bpanel, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; panel bounds checked above.
        Level::Neon => unsafe { neon::stripe_acc(apanel, bpanel, acc) },
    }
}

/// Dual-stripe 4×8 accumulation: one A block against two adjacent B
/// stripes, reusing each A broadcast across both. Falls back to two
/// [`stripe_acc`] calls at scalar level. Bitwise-identical to the
/// single-stripe kernel per output element at every level.
#[inline]
pub fn stripe_acc2(
    level: Level,
    apanel: &[f32],
    b0: &[f32],
    b1: &[f32],
    acc0: &mut [[f32; 8]; 4],
    acc1: &mut [[f32; 8]; 4],
) {
    debug_assert!(b0.len() == b1.len() && b0.len().is_multiple_of(8));
    debug_assert!(apanel.len() >= (b0.len() / 8) * 4);
    match level {
        Level::Scalar => {
            stripe_acc_scalar(apanel, b0, acc0);
            stripe_acc_scalar(apanel, b1, acc1);
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 implies a successful AVX2 probe; stripe pair
        // and panel bounds checked above.
        Level::Avx2 => unsafe { avx2::stripe_acc2(apanel, b0, b1, acc0, acc1) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; bounds checked above.
        Level::Neon => unsafe { neon::stripe_acc2(apanel, b0, b1, acc0, acc1) },
    }
}

/// Dense axpy GEMM row (`out_row += a_row ⋅ B`), strict `kk`-outer order at
/// every level. Bitwise-identical across levels by construction.
#[inline]
pub fn gemm_row(level: Level, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize, n: usize) {
    debug_assert!(a_row.len() >= k && b.len() >= k * n && out_row.len() >= n);
    match level {
        Level::Scalar => gemm_row_scalar(a_row, b, out_row, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 implies a successful AVX2 probe; slice bounds
        // checked above.
        Level::Avx2 => unsafe { avx2::gemm_row(a_row, b, out_row, k, n) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; slice bounds checked above.
        Level::Neon => unsafe { neon::gemm_row(a_row, b, out_row, k, n) },
    }
}

/// Same-shape elementwise binary op at the given level (lane-pure; bitwise
/// equal to scalar at every level).
#[inline]
pub fn binary(level: Level, kind: BinKind, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() == out.len() && b.len() == out.len());
    match level {
        Level::Scalar => binary_scalar(kind, a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 implies a successful AVX2 probe; equal lengths
        // asserted above.
        Level::Avx2 => unsafe { avx2::binary(kind, a, b, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; equal lengths asserted above.
        Level::Neon => unsafe { neon::binary(kind, a, b, out) },
    }
}

/// Widens bf16 (stored as raw `u16` bit patterns) to f32. The conversion is
/// exact — bf16 is the top half of the f32 bit pattern — so every level
/// produces identical bytes.
#[inline]
pub fn dequant_bf16(dst: &mut [f32], src: &[u16]) {
    assert_eq!(src.len(), dst.len());
    match active() {
        Level::Scalar => dequant_bf16_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 implies a successful AVX2 probe; equal lengths
        // asserted above.
        Level::Avx2 => unsafe { avx2::dequant_bf16(src, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; equal lengths asserted above.
        Level::Neon => unsafe { neon::dequant_bf16(src, dst) },
    }
}

/// Maximum absolute value (reassociating wide accumulator — classified
/// `ReassocSafe` usage only; identical to the scalar fold for all finite
/// inputs because `max` is order-independent). Used for int8 quantisation
/// scales; never inside a `FixedOrder` tape op.
#[inline]
pub fn max_abs(xs: &[f32]) -> f32 {
    match active() {
        Level::Scalar => max_abs_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Level::Avx2 implies a successful AVX2 probe.
        Level::Avx2 => unsafe { avx2::max_abs(xs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Level::Neon => unsafe { neon::max_abs(xs) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn kill_switch_forces_scalar() {
        crate::tuning::set_simd_enabled(false);
        assert_eq!(active(), Level::Scalar);
        crate::tuning::set_simd_enabled(true);
        assert_eq!(active(), hardware_level());
    }

    #[test]
    fn stripe_acc_levels_bitwise_equal() {
        for k in [1usize, 3, 7, 32, 65] {
            // The A panel is kk-major compact: apanel[kk*4 + r], exactly as
            // `ops::pack_a_quad` lays it out.
            let apanel = pseudo(k * 4, 11 + k as u32);
            let bpanel = pseudo(k * 8, 23 + k as u32);
            let mut want = [[0.0f32; 8]; 4];
            stripe_acc_scalar(&apanel, &bpanel, &mut want);
            let mut got = [[0.0f32; 8]; 4];
            stripe_acc(hardware_level(), &apanel, &bpanel, &mut got);
            for r in 0..4 {
                for c in 0..8 {
                    assert_eq!(
                        want[r][c].to_bits(),
                        got[r][c].to_bits(),
                        "stripe acc[{r}][{c}] differs at k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn dual_stripe_matches_two_single_stripes_bitwise() {
        for k in [1usize, 5, 32, 63] {
            let apanel = pseudo(k * 4, 41 + k as u32);
            let b0 = pseudo(k * 8, 43);
            let b1 = pseudo(k * 8, 47);
            let (mut w0, mut w1) = ([[0.0f32; 8]; 4], [[0.0f32; 8]; 4]);
            stripe_acc_scalar(&apanel, &b0, &mut w0);
            stripe_acc_scalar(&apanel, &b1, &mut w1);
            let (mut g0, mut g1) = ([[0.0f32; 8]; 4], [[0.0f32; 8]; 4]);
            stripe_acc2(hardware_level(), &apanel, &b0, &b1, &mut g0, &mut g1);
            for r in 0..4 {
                for c in 0..8 {
                    assert_eq!(
                        w0[r][c].to_bits(),
                        g0[r][c].to_bits(),
                        "acc0[{r}][{c}] k={k}"
                    );
                    assert_eq!(
                        w1[r][c].to_bits(),
                        g1[r][c].to_bits(),
                        "acc1[{r}][{c}] k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_row_levels_bitwise_equal() {
        for (k, n) in [(1usize, 1usize), (5, 7), (8, 8), (13, 33), (32, 361)] {
            let a_row = pseudo(k, 3);
            let b = pseudo(k * n, 5);
            let mut want = vec![0.0f32; n];
            gemm_row(Level::Scalar, &a_row, &b, &mut want, k, n);
            let mut got = vec![0.0f32; n];
            gemm_row(hardware_level(), &a_row, &b, &mut got, k, n);
            for j in 0..n {
                assert_eq!(
                    want[j].to_bits(),
                    got[j].to_bits(),
                    "gemm_row[{j}] differs at k={k} n={n}"
                );
            }
        }
    }

    #[test]
    fn binary_levels_bitwise_equal() {
        for n in [1usize, 4, 8, 9, 31, 256] {
            let a = pseudo(n, 7);
            let b: Vec<f32> = pseudo(n, 9).iter().map(|x| x + 1.5).collect();
            for kind in [BinKind::Add, BinKind::Sub, BinKind::Mul, BinKind::Div] {
                let mut want = vec![0.0f32; n];
                binary(Level::Scalar, kind, &a, &b, &mut want);
                let mut got = vec![0.0f32; n];
                binary(hardware_level(), kind, &a, &b, &mut got);
                for j in 0..n {
                    assert_eq!(
                        want[j].to_bits(),
                        got[j].to_bits(),
                        "{kind:?}[{j}] at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn dequant_bf16_is_exact_shift() {
        let bits: Vec<u16> = (0..1000u32)
            .map(|i| (i.wrapping_mul(40503) & 0xFFFF) as u16)
            .collect();
        let mut out = vec![0.0f32; bits.len()];
        dequant_bf16(&mut out, &bits);
        for (o, &b) in out.iter().zip(&bits) {
            assert_eq!(o.to_bits(), (b as u32) << 16);
        }
    }

    #[test]
    fn max_abs_matches_scalar_fold() {
        for n in [0usize, 1, 7, 8, 100] {
            let xs = pseudo(n, 31);
            let want = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            assert_eq!(max_abs(&xs), want);
        }
    }
}

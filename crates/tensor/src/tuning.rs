//! Runtime-tunable kernel dispatch cutoffs.
//!
//! Every size threshold that decides between a serial and a rayon-parallel
//! kernel path lives here, in one place, instead of as scattered magic
//! numbers inside `ops.rs`. Each knob:
//!
//! * has a documented default chosen on a single CPU core;
//! * can be overridden per-process via an environment variable (read once,
//!   on first use);
//! * can be set programmatically with its `set_*` function so sweep drivers
//!   (`bench/src/bin/tune.rs --sweep-kernels`) can explore the space without
//!   re-exec'ing.
//!
//! Changing a cutoff only moves work between the serial and parallel paths;
//! both paths compute bitwise-identical results (see the determinism notes
//! in `ops.rs`), so these knobs are pure performance tuning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel meaning "not initialised yet; read the env var on first use".
const UNSET: usize = usize::MAX;

/// One lazily-initialised, env-overridable cutoff value.
struct Knob {
    value: AtomicUsize,
    env: &'static str,
    default: usize,
}

impl Knob {
    const fn new(env: &'static str, default: usize) -> Knob {
        Knob {
            value: AtomicUsize::new(UNSET),
            env,
            default,
        }
    }

    fn get(&self) -> usize {
        let v = self.value.load(Ordering::Relaxed);
        if v != UNSET {
            return v;
        }
        let resolved = std::env::var(self.env)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|n| n.min(UNSET - 1))
            .unwrap_or(self.default);
        self.value.store(resolved, Ordering::Relaxed);
        resolved
    }

    fn set(&self, v: usize) {
        self.value.store(v.min(UNSET - 1), Ordering::Relaxed);
    }
}

/// Minimum number of output elements before an elementwise / row-wise kernel
/// fans out over rayon (`META_SGCL_PAR_MIN_ELEMS`, default 32768). Below
/// this, thread-spawn overhead dominates the arithmetic.
static PAR_MIN_ELEMS: Knob = Knob::new("META_SGCL_PAR_MIN_ELEMS", 32_768);

/// Block size in elements for parallel elementwise kernels
/// (`META_SGCL_PAR_BLOCK`, default 8192).
static PAR_BLOCK: Knob = Knob::new("META_SGCL_PAR_BLOCK", 8_192);

/// Minimum `m` (output rows) before a GEMM fans out one rayon task per row
/// (`META_SGCL_GEMM_PAR_ROWS`, default 32).
static GEMM_PAR_ROWS: Knob = Knob::new("META_SGCL_GEMM_PAR_ROWS", 32);

/// Minimum per-row work `k·n` (multiply-adds) before a GEMM fans out over
/// rayon (`META_SGCL_GEMM_CUTOFF`, default 16384). Both GEMM conditions
/// must hold for the parallel path to engage.
static GEMM_PAR_ROW_WORK: Knob = Knob::new("META_SGCL_GEMM_CUTOFF", 16_384);

/// SIMD kill switch (`META_SGCL_SIMD`, default 1). Any value other than 0
/// enables runtime-dispatched SIMD kernels; `META_SGCL_SIMD=0` restores the
/// exact scalar micro-kernel behaviour (`simd::Level::Scalar` everywhere).
/// Safe to flip at any time: the FixedOrder SIMD kernels are
/// bitwise-identical to scalar by construction (see `simd` module docs).
static SIMD: Knob = Knob::new("META_SGCL_SIMD", 1);

/// Minimum inner width (`n` for axpy rows, element count for elementwise
/// kernels) before dispatching to a SIMD kernel
/// (`META_SGCL_SIMD_MIN_N`, default 8 — one full AVX2 vector). Below this
/// the dispatch overhead cannot pay for itself; the 4×8 stripe kernel is
/// exempt because its width is fixed. Swept by `tune --sweep-kernels`.
static SIMD_MIN_N: Knob = Knob::new("META_SGCL_SIMD_MIN_N", 8);

/// Current elementwise-parallelism element cutoff.
pub fn par_min_elems() -> usize {
    PAR_MIN_ELEMS.get()
}

/// Overrides [`par_min_elems`] for this process.
pub fn set_par_min_elems(v: usize) {
    PAR_MIN_ELEMS.set(v);
}

/// Current parallel elementwise block size (elements), at least 1.
pub fn par_block() -> usize {
    PAR_BLOCK.get().max(1)
}

/// Overrides [`par_block`] for this process.
pub fn set_par_block(v: usize) {
    PAR_BLOCK.set(v.max(1));
}

/// Current GEMM row-count cutoff for the parallel path.
pub fn gemm_par_rows() -> usize {
    GEMM_PAR_ROWS.get()
}

/// Overrides [`gemm_par_rows`] for this process.
pub fn set_gemm_par_rows(v: usize) {
    GEMM_PAR_ROWS.set(v);
}

/// Current GEMM per-row work (`k·n`) cutoff for the parallel path.
pub fn gemm_par_row_work() -> usize {
    GEMM_PAR_ROW_WORK.get()
}

/// Overrides [`gemm_par_row_work`] for this process.
pub fn set_gemm_par_row_work(v: usize) {
    GEMM_PAR_ROW_WORK.set(v);
}

/// Whether SIMD dispatch is enabled (`META_SGCL_SIMD`, default on).
pub fn simd_enabled() -> bool {
    SIMD.get() != 0
}

/// Overrides [`simd_enabled`] for this process (kill switch).
pub fn set_simd_enabled(on: bool) {
    SIMD.set(usize::from(on));
}

/// Current minimum inner width for SIMD dispatch, at least 1.
pub fn simd_min_n() -> usize {
    SIMD_MIN_N.get().max(1)
}

/// Overrides [`simd_min_n`] for this process.
pub fn set_simd_min_n(v: usize) {
    SIMD_MIN_N.set(v.max(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        // Defaults resolve (no env override in the test environment unless a
        // sweep set one — accept either the default or a prior set() value,
        // then verify set() round-trips).
        let _ = par_min_elems();
        set_par_min_elems(123);
        assert_eq!(par_min_elems(), 123);
        set_par_min_elems(32_768);

        set_par_block(0);
        assert_eq!(par_block(), 1, "block size is clamped to >= 1");
        set_par_block(8_192);

        set_gemm_par_rows(4);
        set_gemm_par_row_work(100);
        assert_eq!(gemm_par_rows(), 4);
        assert_eq!(gemm_par_row_work(), 100);
        set_gemm_par_rows(32);
        set_gemm_par_row_work(16_384);
    }

    #[test]
    fn simd_knobs_round_trip() {
        // The kill switch and threshold round-trip through set_*; the
        // FixedOrder SIMD kernels are bitwise-identical to scalar, so
        // flipping them here cannot perturb concurrently-running tests.
        let _ = simd_enabled();
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(true);
        assert!(simd_enabled());

        set_simd_min_n(0);
        assert_eq!(simd_min_n(), 1, "threshold is clamped to >= 1");
        set_simd_min_n(8);
        assert_eq!(simd_min_n(), 8);
    }
}

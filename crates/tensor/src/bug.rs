//! Unwrapping for invariants, not for errors.
//!
//! The workspace denies `clippy::unwrap_used` and `clippy::expect_used`
//! in library code: fallible results must either propagate or be
//! *deliberately* declared infallible. [`OrBug`] is that declaration. It
//! is reserved for `Result`/`Option` values that are impossible to hit by
//! construction — shapes already validated when an op was recorded, locks
//! whose poisoning would mean a panicked trainer thread, indices produced
//! by the same code that sized the container. Reaching the panic is a bug
//! in this codebase, never a caller or data error; real failure paths must
//! use `?` and typed errors instead.

/// Extension trait: unwrap a value whose failure would be an internal bug.
pub trait OrBug<T> {
    /// Returns the contained value, panicking with `ctx` (and the error,
    /// when there is one) if the invariant it names has been violated.
    fn or_bug(self, ctx: &str) -> T;
}

impl<T, E: std::fmt::Display> OrBug<T> for Result<T, E> {
    fn or_bug(self, ctx: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("invariant violated ({ctx}): {e}"),
        }
    }
}

impl<T> OrBug<T> for Option<T> {
    fn or_bug(self, ctx: &str) -> T {
        match self {
            Some(v) => v,
            None => panic!("invariant violated ({ctx}): value absent"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_and_some_pass_through() {
        let r: Result<i32, String> = Ok(3);
        assert_eq!(r.or_bug("ok"), 3);
        assert_eq!(Some(7).or_bug("some"), 7);
    }

    #[test]
    #[should_panic(expected = "invariant violated (ctx): boom")]
    fn err_panics_with_context() {
        let r: Result<i32, String> = Err("boom".into());
        let _ = r.or_bug("ctx");
    }

    #[test]
    #[should_panic(expected = "invariant violated (none): value absent")]
    fn none_panics_with_context() {
        let v: Option<i32> = None;
        let _ = v.or_bug("none");
    }
}

//! Declarative shape-inference rules.
//!
//! Pure functions mapping *input shapes* to *output shapes* for every tensor
//! operation, without touching data. They mirror the validation performed by
//! the concrete kernels in [`crate::ops`] exactly, so a rule succeeding here
//! guarantees the kernel will accept the same shapes (and vice versa).
//!
//! The static graph auditor (`crates/analysis`) uses these rules to propagate
//! `[batch, seq, dim]` shapes symbolically through a recorded autograd tape,
//! turning mid-epoch shape panics into up-front diagnostics with op-level
//! provenance. Errors are the same structured [`TensorError`] values the
//! runtime ops return, so diagnostics and runtime failures read identically.

use crate::shape::broadcast_shapes;
use crate::{Result, TensorError};

/// Output shape of a broadcasting binary elementwise op (`add`, `mul`, ...).
pub fn broadcast(op: &'static str, lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    broadcast_shapes(lhs, rhs).map_err(|_| TensorError::ShapeMismatch {
        op,
        lhs: lhs.to_vec(),
        rhs: rhs.to_vec(),
    })
}

/// Output shape of `matmul`. Mirrors [`crate::ops::matmul`]: supports
/// `(m,k)·(k,n)`, `(b,m,k)·(b,k,n)` and `(b,m,k)·(k,n)`.
pub fn matmul(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let err = || TensorError::ShapeMismatch {
        op: "matmul",
        lhs: lhs.to_vec(),
        rhs: rhs.to_vec(),
    };
    match (lhs.len(), rhs.len()) {
        (2, 2) => {
            if lhs[1] != rhs[0] {
                return Err(err());
            }
            Ok(vec![lhs[0], rhs[1]])
        }
        (3, 3) => {
            if rhs[0] != lhs[0] || rhs[1] != lhs[2] {
                return Err(err());
            }
            Ok(vec![lhs[0], lhs[1], rhs[2]])
        }
        (3, 2) => {
            if rhs[0] != lhs[2] {
                return Err(err());
            }
            Ok(vec![lhs[0], lhs[1], rhs[1]])
        }
        _ => Err(err()),
    }
}

/// Output shape of the fused `matmul_transb` (`A·Bᵀ`). Mirrors
/// [`crate::ops::matmul_transb`]: supports `(m,k)·(n,k)ᵀ`,
/// `(b,m,k)·(b,n,k)ᵀ` and `(b,m,k)·(n,k)ᵀ`.
pub fn matmul_transb(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let err = || TensorError::ShapeMismatch {
        op: "matmul_transb",
        lhs: lhs.to_vec(),
        rhs: rhs.to_vec(),
    };
    match (lhs.len(), rhs.len()) {
        (2, 2) => {
            if lhs[1] != rhs[1] {
                return Err(err());
            }
            Ok(vec![lhs[0], rhs[0]])
        }
        (3, 3) => {
            if rhs[0] != lhs[0] || rhs[2] != lhs[2] {
                return Err(err());
            }
            Ok(vec![lhs[0], lhs[1], rhs[1]])
        }
        (3, 2) => {
            if rhs[1] != lhs[2] {
                return Err(err());
            }
            Ok(vec![lhs[0], lhs[1], rhs[0]])
        }
        _ => Err(err()),
    }
}

/// Output shape of the fused `matmul_transa` (`Aᵀ·B`). Mirrors
/// [`crate::ops::matmul_transa`]: supports `(k,m)ᵀ·(k,n)` and
/// `(b,k,m)ᵀ·(b,k,n)`.
pub fn matmul_transa(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let err = || TensorError::ShapeMismatch {
        op: "matmul_transa",
        lhs: lhs.to_vec(),
        rhs: rhs.to_vec(),
    };
    match (lhs.len(), rhs.len()) {
        (2, 2) => {
            if lhs[0] != rhs[0] {
                return Err(err());
            }
            Ok(vec![lhs[1], rhs[1]])
        }
        (3, 3) => {
            if rhs[0] != lhs[0] || rhs[1] != lhs[1] {
                return Err(err());
            }
            Ok(vec![lhs[0], lhs[2], rhs[2]])
        }
        _ => Err(err()),
    }
}

/// Output shape of an axis reduction (`sum_axis`, `mean_axis`, `max_axis`).
pub fn reduce_axis(input: &[usize], axis: usize, keepdim: bool) -> Result<Vec<usize>> {
    if axis >= input.len() {
        return Err(TensorError::InvalidAxis {
            axis,
            ndim: input.len(),
        });
    }
    let mut out = input.to_vec();
    if keepdim {
        out[axis] = 1;
    } else {
        out.remove(axis);
    }
    Ok(out)
}

/// Output shape of `reshape` to `target` (element counts must agree).
pub fn reshape(input: &[usize], target: &[usize]) -> Result<Vec<usize>> {
    let in_n: usize = input.iter().product();
    let out_n: usize = target.iter().product();
    if in_n != out_n {
        return Err(TensorError::ShapeMismatch {
            op: "reshape",
            lhs: input.to_vec(),
            rhs: target.to_vec(),
        });
    }
    Ok(target.to_vec())
}

/// Output shape of `transpose_last2` (rank must be ≥ 2).
pub fn transpose_last2(input: &[usize]) -> Result<Vec<usize>> {
    let nd = input.len();
    if nd < 2 {
        return Err(TensorError::InvalidAxis { axis: 1, ndim: nd });
    }
    let mut out = input.to_vec();
    out.swap(nd - 2, nd - 1);
    Ok(out)
}

/// Output shape of `permute` with axis order `perm`.
pub fn permute(input: &[usize], perm: &[usize]) -> Result<Vec<usize>> {
    let nd = input.len();
    if perm.len() != nd {
        return Err(TensorError::InvalidAxis {
            axis: perm.len(),
            ndim: nd,
        });
    }
    let mut seen = vec![false; nd];
    for &p in perm {
        if p >= nd || seen[p] {
            return Err(TensorError::InvalidAxis { axis: p, ndim: nd });
        }
        seen[p] = true;
    }
    Ok(perm.iter().map(|&p| input[p]).collect())
}

/// Output shape of `concat` along `axis`. All parts must share rank and
/// agree on every non-concat dimension.
pub fn concat(parts: &[&[usize]], axis: usize) -> Result<Vec<usize>> {
    let first = match parts.first() {
        Some(f) => *f,
        None => {
            return Err(TensorError::InvalidAxis { axis, ndim: 0 });
        }
    };
    let nd = first.len();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    let mut axis_total = 0usize;
    for p in parts {
        if p.len() != nd {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: first.to_vec(),
                rhs: p.to_vec(),
            });
        }
        for d in 0..nd {
            if d != axis && p[d] != first[d] {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.to_vec(),
                    rhs: p.to_vec(),
                });
            }
        }
        axis_total += p[axis];
    }
    let mut out = first.to_vec();
    out[axis] = axis_total;
    Ok(out)
}

/// Output shape of `slice_axis(t, axis, start, end)`.
pub fn slice_axis(input: &[usize], axis: usize, start: usize, end: usize) -> Result<Vec<usize>> {
    let nd = input.len();
    if axis >= nd {
        return Err(TensorError::InvalidAxis { axis, ndim: nd });
    }
    if end > input[axis] || start > end {
        return Err(TensorError::IndexOutOfRange {
            index: end,
            bound: input[axis],
        });
    }
    let mut out = input.to_vec();
    out[axis] = end - start;
    Ok(out)
}

/// Output shape of `index_select_rows` picking `count` rows of a rank-2
/// table.
pub fn gather_rows(input: &[usize], count: usize) -> Result<Vec<usize>> {
    if input.len() != 2 {
        return Err(TensorError::InvalidAxis {
            axis: 2,
            ndim: input.len(),
        });
    }
    Ok(vec![count, input[1]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_rule() {
        assert_eq!(broadcast("add", &[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast("mul", &[2, 1], &[2, 3]).unwrap(), vec![2, 3]);
        assert!(broadcast("add", &[2, 3], &[4, 3]).is_err());
    }

    #[test]
    fn matmul_rule() {
        assert_eq!(matmul(&[2, 3], &[3, 4]).unwrap(), vec![2, 4]);
        assert_eq!(matmul(&[5, 2, 3], &[5, 3, 4]).unwrap(), vec![5, 2, 4]);
        assert_eq!(matmul(&[5, 2, 3], &[3, 4]).unwrap(), vec![5, 2, 4]);
        assert!(matmul(&[2, 3], &[2, 3]).is_err());
        assert!(matmul(&[2], &[2]).is_err());
    }

    #[test]
    fn fused_matmul_rules() {
        assert_eq!(matmul_transb(&[2, 3], &[4, 3]).unwrap(), vec![2, 4]);
        assert_eq!(
            matmul_transb(&[5, 2, 3], &[5, 4, 3]).unwrap(),
            vec![5, 2, 4]
        );
        assert_eq!(matmul_transb(&[5, 2, 3], &[4, 3]).unwrap(), vec![5, 2, 4]);
        assert!(matmul_transb(&[2, 3], &[3, 4]).is_err());
        assert!(matmul_transb(&[2], &[2]).is_err());

        assert_eq!(matmul_transa(&[3, 2], &[3, 4]).unwrap(), vec![2, 4]);
        assert_eq!(
            matmul_transa(&[5, 3, 2], &[5, 3, 4]).unwrap(),
            vec![5, 2, 4]
        );
        assert!(matmul_transa(&[3, 2], &[4, 3]).is_err());
        assert!(matmul_transa(&[5, 3, 2], &[3, 4]).is_err());
    }

    #[test]
    fn reduce_reshape_rules() {
        assert_eq!(reduce_axis(&[2, 3, 4], 1, false).unwrap(), vec![2, 4]);
        assert_eq!(reduce_axis(&[2, 3, 4], 1, true).unwrap(), vec![2, 1, 4]);
        assert!(reduce_axis(&[2], 1, false).is_err());
        assert_eq!(reshape(&[2, 3], &[6]).unwrap(), vec![6]);
        assert!(reshape(&[2, 3], &[5]).is_err());
    }

    #[test]
    fn layout_rules() {
        assert_eq!(transpose_last2(&[4, 2, 3]).unwrap(), vec![4, 3, 2]);
        assert!(transpose_last2(&[4]).is_err());
        assert_eq!(permute(&[2, 3, 4], &[2, 0, 1]).unwrap(), vec![4, 2, 3]);
        assert!(permute(&[2, 3], &[0, 0]).is_err());
        assert_eq!(concat(&[&[2, 3][..], &[1, 3][..]], 0).unwrap(), vec![3, 3]);
        assert!(concat(&[&[2, 3][..], &[2, 4][..]], 0).is_err());
        assert_eq!(slice_axis(&[2, 5, 3], 1, 1, 4).unwrap(), vec![2, 3, 3]);
        assert!(slice_axis(&[2, 5, 3], 1, 2, 6).is_err());
        assert_eq!(gather_rows(&[10, 4], 3).unwrap(), vec![3, 4]);
        assert!(gather_rows(&[10], 3).is_err());
    }
}

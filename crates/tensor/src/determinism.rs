//! Reassociation-safety metadata for every tape op.
//!
//! The whole codebase's bitwise-reproducibility story (threads=1 equals
//! threads=N, frozen forwards equal autograd forwards, checkpoint resume
//! is bit-identical) rests on one rule: every floating-point reduction is
//! a *single strict accumulation chain* in a fixed order. Upcoming SIMD
//! micro-kernels (ROADMAP item 3) are only allowed to vectorise in ways
//! that preserve each op's documented class here:
//!
//! * [`ReassocClass::FixedOrder`] — the op accumulates across elements
//!   (GEMM k-loops, axis/global sums, softmax/logsumexp denominators,
//!   cross-entropy row sums). Its result depends on summation order, so
//!   kernels must keep the strict documented order; lane-splitting the
//!   accumulator would change bits.
//! * [`ReassocClass::ReassocSafe`] — the op is elementwise or pure data
//!   movement: no cross-element accumulation exists, so any evaluation
//!   order produces identical bits and vectorisation is unconstrained.
//!
//! The static determinism pass in `crates/analysis` walks every audited
//! tape and verifies (a) every op is classified and (b) every
//! reduction-bearing op is `FixedOrder`. An op missing from
//! [`CLASSIFIED_OPS`] fails the audit — adding a new `Var` op requires
//! deciding its class here first.

/// How an op's output bits respond to reordering its internal
/// floating-point arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassocClass {
    /// The op reduces across elements; its bits depend on accumulation
    /// order, which kernels must keep fixed.
    FixedOrder,
    /// No cross-element accumulation; reordering cannot change bits.
    ReassocSafe,
}

impl std::fmt::Display for ReassocClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassocClass::FixedOrder => write!(f, "fixed-order"),
            ReassocClass::ReassocSafe => write!(f, "reassoc-safe"),
        }
    }
}

/// Every tape op name with its reassociation class. This is the canonical
/// op registry for determinism analysis: ops absent from this table are
/// reported as unclassified by the audit.
pub const CLASSIFIED_OPS: &[(&str, ReassocClass)] = &[
    // Leaves and gradient-flow markers: no arithmetic at all.
    ("constant", ReassocClass::ReassocSafe),
    ("param", ReassocClass::ReassocSafe),
    ("detach", ReassocClass::ReassocSafe),
    // Elementwise / broadcast arithmetic: one output element reads a
    // fixed set of input elements, no accumulation.
    ("add", ReassocClass::ReassocSafe),
    ("sub", ReassocClass::ReassocSafe),
    ("mul", ReassocClass::ReassocSafe),
    ("div", ReassocClass::ReassocSafe),
    ("scale", ReassocClass::ReassocSafe),
    ("add_scalar", ReassocClass::ReassocSafe),
    ("add_const", ReassocClass::ReassocSafe),
    ("mul_const", ReassocClass::ReassocSafe),
    ("exp", ReassocClass::ReassocSafe),
    ("log", ReassocClass::ReassocSafe),
    ("sqrt", ReassocClass::ReassocSafe),
    ("square", ReassocClass::ReassocSafe),
    ("relu", ReassocClass::ReassocSafe),
    ("gelu", ReassocClass::ReassocSafe),
    ("tanh", ReassocClass::ReassocSafe),
    ("sigmoid", ReassocClass::ReassocSafe),
    ("clamp", ReassocClass::ReassocSafe),
    // Data movement: copies only.
    ("reshape", ReassocClass::ReassocSafe),
    ("transpose_last2", ReassocClass::ReassocSafe),
    ("permute", ReassocClass::ReassocSafe),
    ("concat", ReassocClass::ReassocSafe),
    ("slice_axis", ReassocClass::ReassocSafe),
    ("index_select_rows", ReassocClass::ReassocSafe),
    // Reductions: strict single-chain accumulation, order is contractual.
    ("matmul", ReassocClass::FixedOrder),
    ("matmul_transb", ReassocClass::FixedOrder),
    ("matmul_transa", ReassocClass::FixedOrder),
    ("sum_all", ReassocClass::FixedOrder),
    ("mean_all", ReassocClass::FixedOrder),
    ("sum_axis", ReassocClass::FixedOrder),
    ("softmax_last", ReassocClass::FixedOrder),
    ("log_softmax_last", ReassocClass::FixedOrder),
    ("cross_entropy", ReassocClass::FixedOrder),
];

/// Looks up an op's declared class; `None` means the op is unregistered
/// (which the determinism audit treats as a failure).
pub fn reassoc_class(op: &str) -> Option<ReassocClass> {
    CLASSIFIED_OPS
        .iter()
        .find(|(name, _)| *name == op)
        .map(|(_, c)| *c)
}

/// How a SIMD kernel vectorises an op, relative to the scalar reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// One vector lane carries one output element's full strict-order
    /// accumulation chain (vectorised *across* outputs, never across the
    /// reduction axis; separate mul/add, no FMA). Bitwise-identical to
    /// scalar — legal for any class, and the only path legal for
    /// [`ReassocClass::FixedOrder`] ops.
    OrderPreserving,
    /// Wide accumulators that reassociate the reduction. Only legal for
    /// [`ReassocClass::ReassocSafe`] ops.
    Reassociating,
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdPath::OrderPreserving => write!(f, "order-preserving"),
            SimdPath::Reassociating => write!(f, "reassociating"),
        }
    }
}

/// Every tape op that has a SIMD kernel (`crate::simd`), with the path
/// shape that kernel uses. The determinism audit enforces two invariants
/// over this table: every listed op must also appear in
/// [`CLASSIFIED_OPS`], and a `FixedOrder` op may only use an
/// [`SimdPath::OrderPreserving`] path. An op that gains a SIMD kernel
/// without being declared here (and classified there) fails `msgc check`.
pub const SIMD_OPS: &[(&str, SimdPath)] = &[
    // GEMM family: the 4×8 stripe kernel and the dense axpy row vectorise
    // across output columns; each lane is one scalar accumulation chain.
    ("matmul", SimdPath::OrderPreserving),
    ("matmul_transb", SimdPath::OrderPreserving),
    ("matmul_transa", SimdPath::OrderPreserving),
    // Same-shape elementwise fast path: lane-pure, no reduction at all.
    ("add", SimdPath::OrderPreserving),
    ("sub", SimdPath::OrderPreserving),
    ("mul", SimdPath::OrderPreserving),
    ("div", SimdPath::OrderPreserving),
];

/// Looks up an op's declared SIMD path; `None` means the op has no SIMD
/// kernel (scalar-only, which is always legal).
pub fn simd_path(op: &str) -> Option<SimdPath> {
    SIMD_OPS
        .iter()
        .find(|(name, _)| *name == op)
        .map(|(_, p)| *p)
}

/// True when the op's kernel accumulates across elements (max/sum style
/// folds or dot-product chains). Every such op must be
/// [`ReassocClass::FixedOrder`]; the audit cross-checks this against
/// [`reassoc_class`] so a misclassified reduction cannot slip through.
pub fn is_reduction(op: &str) -> bool {
    matches!(
        op,
        "matmul"
            | "matmul_transb"
            | "matmul_transa"
            | "sum_all"
            | "mean_all"
            | "sum_axis"
            | "softmax_last"
            | "log_softmax_last"
            | "cross_entropy"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reduction_is_fixed_order() {
        for (op, class) in CLASSIFIED_OPS {
            if is_reduction(op) {
                assert_eq!(*class, ReassocClass::FixedOrder, "reduction op {op}");
            }
        }
    }

    #[test]
    fn every_reduction_is_classified() {
        for op in [
            "matmul",
            "matmul_transb",
            "matmul_transa",
            "sum_all",
            "mean_all",
            "sum_axis",
            "softmax_last",
            "log_softmax_last",
            "cross_entropy",
        ] {
            assert!(is_reduction(op));
            assert_eq!(reassoc_class(op), Some(ReassocClass::FixedOrder));
        }
    }

    #[test]
    fn unknown_op_is_unclassified() {
        assert_eq!(reassoc_class("warp_reduce"), None);
    }

    #[test]
    fn table_has_no_duplicates() {
        for (i, (a, _)) in CLASSIFIED_OPS.iter().enumerate() {
            assert!(
                !CLASSIFIED_OPS[i + 1..].iter().any(|(b, _)| a == b),
                "duplicate op {a}"
            );
        }
    }

    #[test]
    fn every_simd_op_is_classified() {
        for (op, path) in SIMD_OPS {
            let class = reassoc_class(op);
            assert!(class.is_some(), "SIMD op {op} missing from CLASSIFIED_OPS");
            if class == Some(ReassocClass::FixedOrder) {
                assert_eq!(
                    *path,
                    SimdPath::OrderPreserving,
                    "FixedOrder op {op} must keep a lane-order-preserving SIMD path"
                );
            }
        }
    }

    #[test]
    fn simd_table_has_no_duplicates() {
        for (i, (a, _)) in SIMD_OPS.iter().enumerate() {
            assert!(
                !SIMD_OPS[i + 1..].iter().any(|(b, _)| a == b),
                "duplicate SIMD op {a}"
            );
        }
    }
}

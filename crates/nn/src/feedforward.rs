//! Position-wise feed-forward network (Eq. 8).

use autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;

use crate::{Dropout, Linear, Module};

/// Activation used inside [`FeedForward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice, Eq. 8).
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

/// `FFN(x) = act(x·W₁ + b₁)·W₂ + b₂` applied position-wise.
pub struct FeedForward {
    pub(crate) l1: Linear,
    pub(crate) l2: Linear,
    pub(crate) activation: Activation,
    dropout: Dropout,
}

impl FeedForward {
    /// Creates an FFN `dim → hidden → dim`.
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        hidden: usize,
        activation: Activation,
        dropout: f32,
    ) -> Self {
        FeedForward {
            l1: Linear::new(rng, &format!("{name}.l1"), dim, hidden, true),
            l2: Linear::new(rng, &format!("{name}.l2"), hidden, dim, true),
            activation,
            dropout: Dropout::new(dropout),
        }
    }

    /// Applies the FFN (no residual; the caller adds it per Eq. 8).
    pub fn forward(&self, g: &Graph, x: &Var, rng: &mut StdRng, training: bool) -> Var {
        let h = self.l1.forward(g, x);
        let h = match self.activation {
            Activation::Relu => h.relu(),
            Activation::Gelu => h.gelu(),
        };
        let h = self.dropout.forward(&h, rng, training);
        self.dropout.forward(&self.l2.forward(g, &h), rng, training)
    }
}

impl Module for FeedForward {
    fn parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.l1.parameters();
        ps.extend(self.l2.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Graph;
    use rand::SeedableRng;
    use tensor::{init, Tensor};

    #[test]
    fn shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(&mut rng, "ffn", 6, 12, Activation::Relu, 0.0);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![2, 4, 6], 0.0, 1.0));
        assert_eq!(ffn.forward(&g, &x, &mut rng, false).dims(), vec![2, 4, 6]);
        assert_eq!(ffn.parameters().len(), 4);
    }

    #[test]
    fn relu_zeroes_negatives_internally() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(&mut rng, "ffn", 2, 2, Activation::Relu, 0.0);
        // Force l1 output strongly negative: weights -1, bias 0.
        ffn.l1.parameters()[0].borrow_mut().value = Tensor::full(vec![2, 2], -1.0);
        ffn.l2.parameters()[1].borrow_mut().value = Tensor::zeros(vec![2]);
        let g = Graph::new();
        let y = ffn.forward(&g, &g.constant(Tensor::ones(vec![1, 2])), &mut rng, false);
        // relu(-2) = 0 → output is just l2 bias (zero).
        assert_eq!(y.value().data(), &[0.0, 0.0]);
    }

    #[test]
    fn gradcheck_ffn() {
        use autograd::numeric::assert_grads_close;
        let mut rng = StdRng::seed_from_u64(3);
        let ffn = FeedForward::new(&mut rng, "ffn", 3, 5, Activation::Gelu, 0.0);
        let x = init::uniform(&mut rng, vec![2, 3], -1.0, 1.0);
        let params = ffn.parameters();
        assert_grads_close(&params, 1e-2, 3e-2, move |g| {
            let mut r = StdRng::seed_from_u64(0);
            ffn.forward(g, &g.constant(x.clone()), &mut r, false)
                .square()
                .sum_all()
        });
    }
}

//! Inverted dropout.

use autograd::Var;
use rand::rngs::StdRng;
use rand::Rng;
use tensor::Tensor;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1−p)`; at evaluation it is identity.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Dropout { p }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout. `training = false` or `p == 0` is identity.
    pub fn forward(&self, x: &Var, rng: &mut StdRng, training: bool) -> Var {
        if !training || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let dims = x.dims();
        let mut mask = Tensor::zeros(dims);
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < keep { scale } else { 0.0 };
        }
        x.mul_const(&mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Graph;
    use rand::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![10]));
        let mut rng = StdRng::seed_from_u64(0);
        let y = d.forward(&x, &mut rng, false);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn zero_p_is_identity_in_training() {
        let d = Dropout::new(0.0);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![10]));
        let mut rng = StdRng::seed_from_u64(0);
        let y = d.forward(&x, &mut rng, true);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn expectation_preserved() {
        let d = Dropout::new(0.3);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![20_000]));
        let mut rng = StdRng::seed_from_u64(7);
        let y = d.forward(&x, &mut rng, true).value();
        assert!((y.mean_all() - 1.0).abs() < 0.02, "mean {}", y.mean_all());
        // Survivors are scaled by 1/keep.
        let max = y.max_all();
        assert!((max - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}

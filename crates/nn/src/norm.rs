//! Layer normalization over the last axis.

use autograd::{Graph, ParamRef, Parameter, Var};
use tensor::Tensor;

use crate::Module;

/// LayerNorm with learnable gain `γ` and bias `β`.
///
/// Composed from autograd primitives, so its gradient is exact by
/// construction (covered by the composite gradient checks).
pub struct LayerNorm {
    pub(crate) gamma: ParamRef,
    pub(crate) beta: ParamRef,
    pub(crate) eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm over a last axis of size `dim` (γ=1, β=0).
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Parameter::shared(format!("{name}.gamma"), Tensor::ones(vec![dim])),
            beta: Parameter::shared(format!("{name}.beta"), Tensor::zeros(vec![dim])),
            eps: 1e-5,
        }
    }

    /// Normalizes the last axis of `x` and applies the affine transform.
    pub fn forward(&self, g: &Graph, x: &Var) -> Var {
        let last = x.dims().len() - 1;
        let mean = x.mean_axis(last, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(last, true);
        let inv_std = var.add_scalar(self.eps).sqrt();
        let normed = centered.div(&inv_std);
        normed.mul(&g.param(&self.gamma)).add(&g.param(&self.beta))
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<ParamRef> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_standardized() {
        let ln = LayerNorm::new("ln", 4);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0],
            vec![2, 4],
        ));
        let y = ln.forward(&g, &x).value();
        for row in y.data().chunks_exact(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn affine_params_apply() {
        let ln = LayerNorm::new("ln", 2);
        ln.parameters()[0].borrow_mut().value = Tensor::from_vec(vec![2.0, 2.0], vec![2]);
        ln.parameters()[1].borrow_mut().value = Tensor::from_vec(vec![1.0, 1.0], vec![2]);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![-1.0, 1.0], vec![1, 2]));
        let y = ln.forward(&g, &x).value();
        // normalized = [-1, 1] (approximately), so y ≈ [-1, 3]
        assert!((y.data()[0] + 1.0).abs() < 1e-2);
        assert!((y.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn gradcheck_layernorm() {
        use autograd::numeric::assert_grads_close;
        use rand::{rngs::StdRng, SeedableRng};
        use tensor::init;
        let ln = LayerNorm::new("ln", 3);
        let mut rng = StdRng::seed_from_u64(5);
        let x = init::uniform(&mut rng, vec![2, 3], -1.0, 1.0);
        let params = ln.parameters();
        let w = Tensor::arange(6).reshape(vec![2, 3]).unwrap();
        assert_grads_close(&params, 1e-3, 2e-2, move |g| {
            ln.forward(g, &g.constant(x.clone()))
                .mul_const(&w)
                .sum_all()
        });
    }
}

//! Stacked self-attention blocks (Eqs. 9–10): the paper's `SAN(·)`.

use autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;
use tensor::Tensor;

use crate::{Activation, Dropout, FeedForward, LayerNorm, Module, MultiHeadSelfAttention};

/// One SAN block: attention + residual + LayerNorm, FFN + residual +
/// LayerNorm (post-norm, SASRec style).
pub struct TransformerLayer {
    pub(crate) mha: MultiHeadSelfAttention,
    pub(crate) ffn: FeedForward,
    pub(crate) ln1: LayerNorm,
    pub(crate) ln2: LayerNorm,
    dropout: Dropout,
}

impl TransformerLayer {
    /// Creates one encoder layer with FFN hidden size `4·dim`… scaled down:
    /// the paper uses hidden = dim (SASRec convention), which we follow.
    pub fn new(rng: &mut StdRng, name: &str, dim: usize, heads: usize, dropout: f32) -> Self {
        TransformerLayer {
            mha: MultiHeadSelfAttention::new(rng, &format!("{name}.mha"), dim, heads, dropout),
            ffn: FeedForward::new(
                rng,
                &format!("{name}.ffn"),
                dim,
                dim,
                Activation::Relu,
                dropout,
            ),
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            dropout: Dropout::new(dropout),
        }
    }

    /// Applies the block to `x: [b, n, dim]` with an optional additive
    /// attention mask.
    pub fn forward(
        &self,
        g: &Graph,
        x: &Var,
        mask: Option<&Tensor>,
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let attn = self.mha.forward(g, x, mask, rng, training);
        let attn = self.dropout.forward(&attn, rng, training);
        let h = self.ln1.forward(g, &x.add(&attn));
        let ff = self.ffn.forward(g, &h, rng, training);
        self.ln2.forward(g, &h.add(&ff))
    }
}

impl Module for TransformerLayer {
    fn parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.mha.parameters();
        ps.extend(self.ffn.parameters());
        ps.extend(self.ln1.parameters());
        ps.extend(self.ln2.parameters());
        ps
    }
}

/// A stack of [`TransformerLayer`]s: `F^(l) = SAN(F^(l−1))` (Eq. 10).
pub struct TransformerEncoder {
    pub(crate) layers: Vec<TransformerLayer>,
}

impl TransformerEncoder {
    /// Creates `n_layers` stacked blocks.
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        n_layers: usize,
        dim: usize,
        heads: usize,
        dropout: f32,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|i| TransformerLayer::new(rng, &format!("{name}.layer{i}"), dim, heads, dropout))
            .collect();
        TransformerEncoder { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the stack over `x: [b, n, dim]`.
    ///
    /// `timeline` is an optional `[b, n, 1]`-broadcastable multiplicative
    /// mask (1 for real positions, 0 for padding) applied after every layer
    /// so padded positions stay zero, as in SASRec.
    pub fn forward(
        &self,
        g: &Graph,
        x: &Var,
        mask: Option<&Tensor>,
        timeline: Option<&Tensor>,
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let mut h = x.clone();
        if let Some(t) = timeline {
            h = h.mul_const(t);
        }
        for layer in &self.layers {
            h = layer.forward(g, &h, mask, rng, training);
            if let Some(t) = timeline {
                h = h.mul_const(t);
            }
        }
        h
    }
}

impl Module for TransformerEncoder {
    fn parameters(&self) -> Vec<ParamRef> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal_mask;
    use rand::SeedableRng;
    use tensor::init;

    #[test]
    fn encoder_shape_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut rng, "enc", 2, 8, 2, 0.1);
        assert_eq!(enc.n_layers(), 2);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![2, 5, 8], 0.0, 1.0));
        let y = enc.forward(&g, &x, Some(&causal_mask(5)), None, &mut rng, false);
        assert_eq!(y.dims(), vec![2, 5, 8]);
        // per layer: 4 attn mats + 4 ffn tensors + 2×2 layernorm = 12
        assert_eq!(enc.parameters().len(), 24);
    }

    #[test]
    fn timeline_mask_zeroes_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut rng, "enc", 1, 4, 1, 0.0);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![1, 3, 4], 0.0, 1.0));
        let mut timeline = Tensor::ones(vec![1, 3, 1]);
        timeline.data_mut()[0] = 0.0; // first position is padding
        let y = enc
            .forward(
                &g,
                &x,
                Some(&causal_mask(3)),
                Some(&timeline),
                &mut rng,
                false,
            )
            .value();
        for j in 0..4 {
            assert_eq!(y.at(&[0, 0, j]), 0.0);
        }
        assert!(y.at(&[0, 1, 0]).abs() > 0.0);
    }

    #[test]
    fn training_with_dropout_differs_from_eval() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut rng, "enc", 1, 4, 2, 0.5);
        let g = Graph::new();
        let xt = init::randn(&mut rng, vec![1, 3, 4], 0.0, 1.0);
        let x = g.constant(xt);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let ytrain = enc.forward(&g, &x, None, None, &mut r1, true).value();
        let yeval = enc.forward(&g, &x, None, None, &mut r2, false).value();
        assert_ne!(ytrain.data(), yeval.data());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let e1 = TransformerEncoder::new(&mut rng1, "e", 1, 4, 2, 0.0);
        let e2 = TransformerEncoder::new(&mut rng2, "e", 1, 4, 2, 0.0);
        let g = Graph::new();
        let x = Tensor::ones(vec![1, 2, 4]);
        let y1 = e1
            .forward(&g, &g.constant(x.clone()), None, None, &mut rng1, false)
            .value();
        let y2 = e2
            .forward(&g, &g.constant(x), None, None, &mut rng2, false)
            .value();
        assert_eq!(y1.data(), y2.data());
    }
}

//! Multi-head self-attention (Eqs. 5–7 of the paper).

use autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;
use tensor::Tensor;

use crate::{Dropout, Linear, Module};

/// Additive causal mask of shape `[n, n]`: position `i` may attend to
/// positions `j ≤ i`; future positions receive `−1e9` ("we block all items
/// after the current moment to avoid information leakage").
pub fn causal_mask(n: usize) -> Tensor {
    let mut m = Tensor::zeros(vec![n, n]);
    for i in 0..n {
        let row = &mut m.data_mut()[i * n..(i + 1) * n];
        for (j, v) in row.iter_mut().enumerate() {
            if j > i {
                *v = -1e9;
            }
        }
    }
    m
}

/// Additive key-padding mask of shape `[batch·heads, 1, n]`: padded key
/// positions receive `−1e9` for every query. `pad[b][j]` is true when the
/// j-th position of sequence `b` is padding.
pub fn padding_additive_mask(pad: &[Vec<bool>], heads: usize) -> Tensor {
    let b = pad.len();
    let n = pad.first().map_or(0, Vec::len);
    let mut m = Tensor::zeros(vec![b * heads, 1, n]);
    let data = m.data_mut();
    for (bi, row) in pad.iter().enumerate() {
        debug_assert_eq!(row.len(), n);
        for h in 0..heads {
            let base = (bi * heads + h) * n;
            for (j, &is_pad) in row.iter().enumerate() {
                if is_pad {
                    data[base + j] = -1e9;
                }
            }
        }
    }
    m
}

/// Multi-head scaled dot-product self-attention with fused `d×d`
/// query/key/value projections (equivalent to the paper's per-head
/// `d × d/h` matrices `W_i^Q, W_i^K, W_i^V`) and an output projection.
pub struct MultiHeadSelfAttention {
    pub(crate) wq: Linear,
    pub(crate) wk: Linear,
    pub(crate) wv: Linear,
    pub(crate) wo: Linear,
    pub(crate) heads: usize,
    pub(crate) dim: usize,
    dropout: Dropout,
}

impl MultiHeadSelfAttention {
    /// Creates an attention block. `dim` must be divisible by `heads`.
    pub fn new(rng: &mut StdRng, name: &str, dim: usize, heads: usize, dropout: f32) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} not divisible by heads {heads}"
        );
        MultiHeadSelfAttention {
            wq: Linear::new(rng, &format!("{name}.wq"), dim, dim, false),
            wk: Linear::new(rng, &format!("{name}.wk"), dim, dim, false),
            wv: Linear::new(rng, &format!("{name}.wv"), dim, dim, false),
            wo: Linear::new(rng, &format!("{name}.wo"), dim, dim, false),
            heads,
            dim,
            dropout: Dropout::new(dropout),
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn split_heads(&self, x: &Var, b: usize, n: usize) -> Var {
        let dh = self.dim / self.heads;
        x.reshape(vec![b, n, self.heads, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(vec![b * self.heads, n, dh])
    }

    /// Applies self-attention to `x: [b, n, dim]`.
    ///
    /// `mask` is an additive logits mask broadcastable to
    /// `[b·heads, n, n]` (e.g. [`causal_mask`], a padding mask, or their
    /// tensor sum); `None` means full bidirectional attention.
    pub fn forward(
        &self,
        g: &Graph,
        x: &Var,
        mask: Option<&Tensor>,
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let dims = x.dims();
        let (b, n) = (dims[0], dims[1]);
        debug_assert_eq!(dims[2], self.dim);
        let dh = self.dim / self.heads;

        let q = self.split_heads(&self.wq.forward(g, x), b, n);
        let k = self.split_heads(&self.wk.forward(g, x), b, n);
        let v = self.split_heads(&self.wv.forward(g, x), b, n);

        let mut scores = q.matmul_transb(&k).scale(1.0 / (dh as f32).sqrt());
        if let Some(m) = mask {
            scores = scores.add_const(m);
        }
        let attn = self.dropout.forward(&scores.softmax_last(), rng, training);
        let ctx = attn
            .matmul(&v)
            .reshape(vec![b, self.heads, n, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(vec![b, n, self.dim]);
        self.wo.forward(g, &ctx)
    }
}

impl Module for MultiHeadSelfAttention {
    fn parameters(&self) -> Vec<ParamRef> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tensor::init;

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.at(&[0, 0]), 0.0);
        assert_eq!(m.at(&[0, 1]), -1e9);
        assert_eq!(m.at(&[2, 1]), 0.0);
        assert_eq!(m.at(&[1, 2]), -1e9);
    }

    #[test]
    fn padding_mask_marks_keys() {
        let m = padding_additive_mask(&[vec![true, false], vec![false, false]], 2);
        assert_eq!(m.dims(), &[4, 1, 2]);
        assert_eq!(m.at(&[0, 0, 0]), -1e9); // batch 0, head 0, key 0 padded
        assert_eq!(m.at(&[1, 0, 0]), -1e9); // batch 0, head 1
        assert_eq!(m.at(&[2, 0, 0]), 0.0); // batch 1 unpadded
    }

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadSelfAttention::new(&mut rng, "mha", 8, 2, 0.0);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![3, 5, 8], 0.0, 1.0));
        let y = mha.forward(&g, &x, Some(&causal_mask(5)), &mut rng, false);
        assert_eq!(y.dims(), vec![3, 5, 8]);
        assert_eq!(mha.parameters().len(), 4);
    }

    #[test]
    fn causality_first_position_ignores_rest() {
        // With a causal mask, output at position 0 must not change when
        // later inputs change.
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadSelfAttention::new(&mut rng, "mha", 8, 2, 0.0);
        let base = init::randn(&mut rng, vec![1, 4, 8], 0.0, 1.0);
        let mut altered = base.clone();
        for i in 8..32 {
            altered.data_mut()[i] += 5.0; // change positions 1..4
        }
        let g = Graph::new();
        let m = causal_mask(4);
        let y0 = mha
            .forward(&g, &g.constant(base), Some(&m), &mut rng, false)
            .value();
        let y1 = mha
            .forward(&g, &g.constant(altered), Some(&m), &mut rng, false)
            .value();
        for j in 0..8 {
            assert!((y0.at(&[0, 0, j]) - y1.at(&[0, 0, j])).abs() < 1e-5);
        }
        // Later positions do change.
        assert!((y0.at(&[0, 3, 0]) - y1.at(&[0, 3, 0])).abs() > 1e-4);
    }

    #[test]
    fn gradcheck_attention() {
        use autograd::numeric::assert_grads_close;
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadSelfAttention::new(&mut rng, "mha", 4, 2, 0.0);
        let x = init::uniform(&mut rng, vec![2, 3, 4], -1.0, 1.0);
        let params = mha.parameters();
        let m = causal_mask(3);
        assert_grads_close(&params, 1e-2, 3e-2, move |g| {
            let mut r = StdRng::seed_from_u64(0);
            mha.forward(g, &g.constant(x.clone()), Some(&m), &mut r, false)
                .square()
                .sum_all()
        });
    }
}

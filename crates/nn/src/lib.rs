//! Neural-network layers built on [`autograd`], sized for the Meta-SGCL
//! reproduction: linear/embedding/layer-norm/dropout primitives, multi-head
//! self-attention, Transformer encoder blocks (SASRec-style), and a GRU for
//! the GRU4Rec baseline.
//!
//! Every layer follows the same conventions:
//!
//! * construction takes an explicit `&mut StdRng` (reproducibility),
//! * `forward` takes the [`autograd::Graph`] for the current step plus input
//!   [`autograd::Var`]s,
//! * `parameters()` exposes the trainable leaves for optimizers and for the
//!   meta-optimized freezing schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod dropout;
mod embedding;
mod feedforward;
mod gru;
pub mod infer;
pub mod io;
mod linear;
mod norm;
mod transformer;

pub use attention::{causal_mask, padding_additive_mask, MultiHeadSelfAttention};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use feedforward::{Activation, FeedForward};
pub use gru::Gru;
pub use infer::{
    AttnKv, EncoderKv, Freeze, FrozenEmbedding, FrozenFeedForward, FrozenGru, FrozenLayerNorm,
    FrozenLinear, FrozenMultiHeadSelfAttention, FrozenTransformerEncoder, FrozenTransformerLayer,
    InferModule, Quantize,
};
pub use linear::Linear;
pub use norm::LayerNorm;
pub use transformer::{TransformerEncoder, TransformerLayer};

use autograd::ParamRef;

/// A trainable component exposing its parameter leaves.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<ParamRef>;

    /// Marks every parameter (non-)trainable. Used to freeze modules during
    /// the meta-optimized second stage.
    fn set_trainable(&self, trainable: bool) {
        for p in self.parameters() {
            p.borrow_mut().trainable = trainable;
        }
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.borrow_mut().zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters()
            .iter()
            .map(|p| p.borrow().value.numel())
            .sum()
    }
}

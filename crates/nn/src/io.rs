//! Checkpoint I/O: the versioned **MSGC2** container (length-prefixed,
//! CRC32-checksummed records, written atomically) plus a hardened read-only
//! loader for the legacy `MSGC1` parameter format.
//!
//! # MSGC2 layout
//!
//! ```text
//! file    := magic "MSGC2" | version u32 | record* | end
//! record  := kind u8 | len u64 | payload[len] | crc32(payload) u32
//! end     := kind 0x00 | len 0 | crc32("") (= 0)
//! ```
//!
//! All integers are little-endian. The trailing END record makes truncation
//! at any record boundary detectable; truncation or corruption inside a
//! record is caught by the length prefix (validated against the bytes
//! actually remaining in the file *before* any allocation) and the CRC.
//! Files are written to a `.tmp` sibling, flushed, fsynced, and atomically
//! renamed into place, so a crash mid-write never clobbers the previous
//! checkpoint.
//!
//! Record kinds used by this workspace (unknown kinds are skipped on read,
//! so the format is forward-extensible):
//!
//! | kind | meaning | payload |
//! |------|---------|---------|
//! | `0x00` | END marker | empty |
//! | `0x01` | model parameters | named tensor list |
//! | `0x02` | optimizer slot | slot name, step `t`, per-param `(m, v)` moments |
//! | `0x03` | RNG state | 4 × u64 xoshiro words |
//! | `0x04` | training progress | epoch, batch, step, KL-annealing config |

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use autograd::ParamRef;
use tensor::Tensor;

/// Legacy parameter-only format magic (read-only support).
pub const MAGIC_V1: &[u8; 5] = b"MSGC1";
/// Current container magic.
pub const MAGIC_V2: &[u8; 5] = b"MSGC2";
/// Current container version.
pub const VERSION: u32 = 1;

/// END marker record (always last).
pub const REC_END: u8 = 0x00;
/// Model parameters as a named tensor list.
pub const REC_PARAMS: u8 = 0x01;
/// One optimizer slot (Adam moments + step counter).
pub const REC_OPTIMIZER: u8 = 0x02;
/// RNG word state.
pub const REC_RNG: u8 = 0x03;
/// Training progress (epoch / batch / step cursors + schedule config).
pub const REC_PROGRESS: u8 = 0x04;
/// Telemetry snapshot: deterministic counter values at save time (optional;
/// readers that predate it skip the record).
pub const REC_TELEMETRY: u8 = 0x05;

/// Largest tensor rank a checkpoint may declare. Real models use ≤ 4; the
/// cap stops a corrupted `ndim` field from driving a huge dims loop.
const MAX_NDIM: usize = 16;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial as zip/zlib, computed bytewise without a table. Checkpoint
/// payloads are megabytes at most, so table-free is plenty fast.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Wire helpers: append-only encoding and a bounds-checked decoding cursor.
// ---------------------------------------------------------------------------

/// Payload encoding helpers (little-endian, length-prefixed strings).
pub mod wire {
    use super::{bad, Tensor, MAX_NDIM};
    use std::io;

    /// Appends a `u64` (LE).
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` (LE).
    pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u64(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a tensor: rank, dims, then raw f32 data.
    pub fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
        put_u64(buf, t.dims().len() as u64);
        for &d in t.dims() {
            put_u64(buf, d as u64);
        }
        for &x in t.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Bounds-checked reader over an in-memory payload. Every accessor
    /// returns `InvalidData` instead of panicking when the payload is too
    /// short or a declared length is inconsistent.
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        /// Wraps a payload slice.
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Fails unless the whole payload was consumed.
        pub fn finish(&self) -> io::Result<()> {
            if self.remaining() == 0 {
                Ok(())
            } else {
                Err(bad(format!(
                    "{} trailing bytes in record",
                    self.remaining()
                )))
            }
        }

        fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
            if n > self.remaining() {
                return Err(bad(format!(
                    "record truncated: need {n} bytes, {} remain",
                    self.remaining()
                )));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads a `u64` (LE).
        pub fn take_u64(&mut self) -> io::Result<u64> {
            let mut b = [0u8; 8];
            b.copy_from_slice(self.take(8)?);
            Ok(u64::from_le_bytes(b))
        }

        /// Reads a `u64` and validates it fits a `usize` no larger than the
        /// remaining payload (for use as an element/byte count).
        pub fn take_len(&mut self) -> io::Result<usize> {
            let v = self.take_u64()?;
            let v = usize::try_from(v).map_err(|_| bad("length field overflows usize"))?;
            if v > self.remaining() {
                return Err(bad(format!(
                    "declared length {v} exceeds {} remaining bytes",
                    self.remaining()
                )));
            }
            Ok(v)
        }

        /// Reads an `f32` (LE).
        pub fn take_f32(&mut self) -> io::Result<f32> {
            let mut b = [0u8; 4];
            b.copy_from_slice(self.take(4)?);
            Ok(f32::from_le_bytes(b))
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn take_str(&mut self) -> io::Result<String> {
            let n = self.take_len()?;
            String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("invalid UTF-8 in name"))
        }

        /// Reads a tensor written by [`put_tensor`]: validates the rank cap,
        /// computes `numel` with overflow checks, and bulk-decodes the f32
        /// payload.
        pub fn take_tensor(&mut self) -> io::Result<Tensor> {
            let ndim = self.take_u64()? as usize;
            if ndim > MAX_NDIM {
                return Err(bad(format!("tensor rank {ndim} exceeds cap {MAX_NDIM}")));
            }
            let mut dims = Vec::with_capacity(ndim);
            let mut numel = 1usize;
            for _ in 0..ndim {
                let d = usize::try_from(self.take_u64()?)
                    .map_err(|_| bad("dimension overflows usize"))?;
                numel = numel
                    .checked_mul(d)
                    .ok_or_else(|| bad("tensor element count overflows"))?;
                dims.push(d);
            }
            let nbytes = numel
                .checked_mul(4)
                .ok_or_else(|| bad("tensor byte count overflows"))?;
            let raw = self.take(nbytes)?;
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(Tensor::from_vec(data, dims))
        }
    }
}

// ---------------------------------------------------------------------------
// Container writer / reader.
// ---------------------------------------------------------------------------

/// Accumulates records in memory, then commits them to disk atomically:
/// temp file in the destination directory → flush → fsync → rename →
/// best-effort directory fsync.
#[derive(Default)]
pub struct CheckpointWriter {
    records: Vec<(u8, Vec<u8>)>,
}

impl CheckpointWriter {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn record(&mut self, kind: u8, payload: Vec<u8>) -> &mut Self {
        debug_assert_ne!(kind, REC_END, "END is written by commit()");
        self.records.push((kind, payload));
        self
    }

    /// Writes magic, version, every record, and the END marker to `path`
    /// via a temp file + fsync + atomic rename.
    pub fn commit(self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            w.write_all(MAGIC_V2)?;
            w.write_all(&VERSION.to_le_bytes())?;
            for (kind, payload) in &self.records {
                w.write_all(&[*kind])?;
                w.write_all(&(payload.len() as u64).to_le_bytes())?;
                w.write_all(payload)?;
                w.write_all(&crc32(payload).to_le_bytes())?;
            }
            // END marker: empty payload, whose CRC is 0.
            w.write_all(&[REC_END])?;
            w.write_all(&0u64.to_le_bytes())?;
            w.write_all(&crc32(&[]).to_le_bytes())?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself. Directory fsync is not available on
        // every platform; failure here cannot corrupt the checkpoint.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// Reads and fully validates an MSGC2 container: magic, version, every
/// record's length (against the bytes actually remaining) and CRC, and the
/// trailing END marker. Returns `(kind, payload)` pairs excluding END.
pub fn read_records(path: impl AsRef<Path>) -> io::Result<Vec<(u8, Vec<u8>)>> {
    let file = File::open(path)?;
    let total = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC_V2 {
        return Err(bad("not an MSGC2 checkpoint"));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    let version = u32::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(bad(format!("unsupported MSGC2 version {version}")));
    }
    let mut consumed = 9u64; // magic + version
    let mut records = Vec::new();
    loop {
        let mut kind = [0u8; 1];
        if r.read_exact(&mut kind).is_err() {
            return Err(bad("checkpoint truncated: missing END record"));
        }
        let mut lbuf = [0u8; 8];
        r.read_exact(&mut lbuf)
            .map_err(|_| bad("checkpoint truncated in record header"))?;
        let len = u64::from_le_bytes(lbuf);
        consumed += 9;
        // Validate the declared length against what the file can still hold
        // (payload + 4-byte CRC) before allocating anything.
        if len > total.saturating_sub(consumed + 4) {
            return Err(bad(format!(
                "record length {len} exceeds remaining file size"
            )));
        }
        let len = usize::try_from(len).map_err(|_| bad("record length overflows usize"))?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)
            .map_err(|_| bad("checkpoint truncated in record payload"))?;
        let mut cbuf = [0u8; 4];
        r.read_exact(&mut cbuf)
            .map_err(|_| bad("checkpoint truncated before record CRC"))?;
        let stored = u32::from_le_bytes(cbuf);
        let actual = crc32(&payload);
        if stored != actual {
            return Err(bad(format!(
                "CRC mismatch in record kind {:#04x}: stored {stored:#010x}, computed {actual:#010x}",
                kind[0]
            )));
        }
        consumed += len as u64 + 4;
        if kind[0] == REC_END {
            if len != 0 {
                return Err(bad("END record must be empty"));
            }
            // Anything after END is garbage appended to the file.
            let mut extra = [0u8; 1];
            if r.read_exact(&mut extra).is_ok() {
                return Err(bad("trailing bytes after END record"));
            }
            return Ok(records);
        }
        records.push((kind[0], payload));
    }
}

/// Returns the first record of `kind`, or `InvalidData` if absent.
pub fn find_record(records: &[(u8, Vec<u8>)], kind: u8) -> io::Result<&[u8]> {
    records
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, p)| p.as_slice())
        .ok_or_else(|| bad(format!("checkpoint has no record of kind {kind:#04x}")))
}

// ---------------------------------------------------------------------------
// Named-tensor payloads (the PARAMS record, shared with optimizer slots).
// ---------------------------------------------------------------------------

/// Encodes a named tensor list: count, then `(name, tensor)` entries.
pub fn encode_named_tensors(entries: &[(String, Tensor)]) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, entries.len() as u64);
    for (name, t) in entries {
        wire::put_str(&mut buf, name);
        wire::put_tensor(&mut buf, t);
    }
    buf
}

/// Decodes a payload written by [`encode_named_tensors`].
pub fn decode_named_tensors(payload: &[u8]) -> io::Result<Vec<(String, Tensor)>> {
    let mut c = wire::Cursor::new(payload);
    let count = c.take_u64()? as usize;
    // Each entry needs ≥ 24 bytes (name len + rank + data would follow);
    // reject counts the payload cannot possibly hold before reserving.
    if count > payload.len() / 16 {
        return Err(bad(format!(
            "entry count {count} impossible for {}-byte payload",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = c.take_str()?;
        let t = c.take_tensor()?;
        out.push((name, t));
    }
    c.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parameter save / load (public API used by the models).
// ---------------------------------------------------------------------------

/// Serializes parameters (name, shape, f32 data) to `path` as an MSGC2
/// container with a single PARAMS record, written atomically.
///
/// The gradient and trainability flag are not persisted — parameter
/// checkpoints store model state, not optimizer state (full training state
/// goes through the TrainCheckpoint layer in `meta-sgcl`).
pub fn save_parameters(path: impl AsRef<Path>, params: &[ParamRef]) -> io::Result<()> {
    let entries: Vec<(String, Tensor)> = params
        .iter()
        .map(|p| {
            let pb = p.borrow();
            (pb.name.clone(), pb.value.clone())
        })
        .collect();
    let mut w = CheckpointWriter::new();
    w.record(REC_PARAMS, encode_named_tensors(&entries));
    w.commit(path)
}

/// Restores parameters saved by [`save_parameters`] into `params`, matching
/// by name. Every parameter in `params` must be present in the file with an
/// identical shape; extra entries in the file are ignored.
///
/// Both the current `MSGC2` container and the legacy `MSGC1` flat format
/// are accepted (MSGC1 read-only, with every header field validated against
/// the file size before allocation).
pub fn load_parameters(path: impl AsRef<Path>, params: &[ParamRef]) -> io::Result<()> {
    let path = path.as_ref();
    let mut magic = [0u8; 5];
    File::open(path)?.read_exact(&mut magic)?;
    let loaded = if &magic == MAGIC_V2 {
        let records = read_records(path)?;
        decode_named_tensors(find_record(&records, REC_PARAMS)?)?
    } else if &magic == MAGIC_V1 {
        load_parameters_v1(path)?
    } else {
        return Err(bad("not an MSGC1/MSGC2 checkpoint"));
    };
    let by_name: std::collections::HashMap<&str, &Tensor> =
        loaded.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let mut pb = p.borrow_mut();
        let t = by_name
            .get(pb.name.as_str())
            .ok_or_else(|| bad(format!("parameter {} missing from checkpoint", pb.name)))?;
        if t.dims() != pb.value.dims() {
            return Err(bad(format!(
                "shape mismatch for {}: file {:?} vs model {:?}",
                pb.name,
                t.dims(),
                pb.value.dims()
            )));
        }
        pb.value = (*t).clone();
    }
    Ok(())
}

/// Bulk-reads `numel` little-endian f32s in large chunks (one syscall per
/// chunk instead of one per value).
fn read_f32s(r: &mut impl Read, numel: usize) -> io::Result<Vec<f32>> {
    const CHUNK: usize = 1 << 16; // 64 KiB of bytes per read
    let mut data = Vec::with_capacity(numel);
    let mut buf = vec![0u8; CHUNK.min(numel.saturating_mul(4).max(4))];
    let mut left = numel * 4;
    while left > 0 {
        let take = left.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        data.extend(
            buf[..take]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        left -= take;
    }
    Ok(data)
}

/// Legacy MSGC1 reader. Every length/count field is validated against the
/// bytes actually remaining in the file before any allocation, so a
/// truncated or bit-flipped file yields `InvalidData` instead of an
/// OOM-abort.
fn load_parameters_v1(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let file = File::open(path)?;
    let total = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    debug_assert_eq!(&magic, MAGIC_V1);
    let mut consumed = 5u64;

    let read_u64 = |r: &mut BufReader<File>, consumed: &mut u64| -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        *consumed += 8;
        Ok(u64::from_le_bytes(b))
    };
    // A count/length can never exceed the bytes left in the file.
    let checked = |v: u64, consumed: u64, what: &str| -> io::Result<usize> {
        if v > total.saturating_sub(consumed) {
            return Err(bad(format!(
                "{what} {v} exceeds remaining file size ({} bytes left)",
                total.saturating_sub(consumed)
            )));
        }
        usize::try_from(v).map_err(|_| bad(format!("{what} overflows usize")))
    };

    let count = read_u64(&mut r, &mut consumed)?;
    // Each parameter record is ≥ 24 bytes of headers.
    let count = checked(count, consumed, "parameter count")?;
    let mut loaded = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name_len = read_u64(&mut r, &mut consumed)?;
        let name_len = checked(name_len, consumed, "name length")?;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        consumed += name_len as u64;
        let name = String::from_utf8(name).map_err(|_| bad("invalid parameter name"))?;
        let ndim = read_u64(&mut r, &mut consumed)?;
        if ndim > MAX_NDIM as u64 {
            return Err(bad(format!("tensor rank {ndim} exceeds cap {MAX_NDIM}")));
        }
        let mut dims = Vec::with_capacity(ndim as usize);
        let mut numel = 1usize;
        for _ in 0..ndim {
            let d = read_u64(&mut r, &mut consumed)?;
            let d = usize::try_from(d).map_err(|_| bad("dimension overflows usize"))?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| bad("tensor element count overflows"))?;
            dims.push(d);
        }
        let nbytes = numel
            .checked_mul(4)
            .ok_or_else(|| bad("tensor byte count overflows"))? as u64;
        if nbytes > total.saturating_sub(consumed) {
            return Err(bad(format!(
                "tensor data ({nbytes} bytes) exceeds remaining file size"
            )));
        }
        let data = read_f32s(&mut r, numel)?;
        consumed += nbytes;
        loaded.push((name, Tensor::from_vec(data, dims)));
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("msgc_io_test");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    /// Writes a legacy MSGC1 file the way the pre-MSGC2 code did.
    fn write_v1(path: &Path, params: &[ParamRef]) {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for p in params {
            let pb = p.borrow();
            let name = pb.name.as_bytes();
            buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
            buf.extend_from_slice(name);
            let dims = pb.value.dims();
            buf.extend_from_slice(&(dims.len() as u64).to_le_bytes());
            for &d in dims {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in pb.value.data() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        std::fs::write(path, buf).unwrap();
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_values() {
        let path = tmp("rt.msgc2");
        let a = Parameter::shared(
            "layer.weight",
            Tensor::arange(6).reshape(vec![2, 3]).unwrap(),
        );
        let b = Parameter::shared("layer.bias", Tensor::from_vec(vec![-1.5, 2.5], vec![2]));
        save_parameters(&path, &[a.clone(), b.clone()]).unwrap();

        // Corrupt the in-memory values, then reload.
        a.borrow_mut().value = Tensor::zeros(vec![2, 3]);
        b.borrow_mut().value = Tensor::zeros(vec![2]);
        load_parameters(&path, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(a.borrow().value.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.borrow().value.data(), &[-1.5, 2.5]);
    }

    #[test]
    fn save_is_atomic_leaves_no_tmp() {
        let path = tmp("atomic.msgc2");
        let a = Parameter::shared("a", Tensor::ones(vec![4]));
        save_parameters(&path, &[a]).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
        // First 5 bytes are the new magic.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..5], MAGIC_V2);
        assert_eq!(*bytes.last().unwrap_or(&1), 0, "CRC of empty END is 0");
    }

    #[test]
    fn legacy_v1_files_stay_loadable() {
        let path = tmp("legacy.msgc1");
        let a = Parameter::shared("w", Tensor::from_vec(vec![1.0, -2.0, 3.5], vec![3]));
        write_v1(&path, std::slice::from_ref(&a));
        a.borrow_mut().value = Tensor::zeros(vec![3]);
        load_parameters(&path, std::slice::from_ref(&a)).unwrap();
        assert_eq!(a.borrow().value.data(), &[1.0, -2.0, 3.5]);
    }

    #[test]
    fn legacy_v1_truncation_is_invalid_data_not_oom() {
        let path = tmp("legacy_trunc.msgc1");
        let a = Parameter::shared("w", Tensor::ones(vec![64]));
        write_v1(&path, std::slice::from_ref(&a));
        let full = std::fs::read(&path).unwrap();
        // A huge declared count must not trigger a huge allocation.
        let mut evil = full.clone();
        evil[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &evil).unwrap();
        let err = load_parameters(&path, std::slice::from_ref(&a)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        // Same for a huge dimension.
        let mut evil = full.clone();
        // count(8) + name_len(8) + "w"(1) + ndim(8) → dims[0] at offset 5+25.
        evil[30..38].copy_from_slice(&(u64::MAX / 8).to_le_bytes());
        std::fs::write(&path, &evil).unwrap();
        let err = load_parameters(&path, std::slice::from_ref(&a)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        // Truncation mid-data.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert!(load_parameters(&path, &[a]).is_err());
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let path = tmp("missing.msgc2");
        let a = Parameter::shared("a", Tensor::ones(vec![2]));
        save_parameters(&path, &[a]).unwrap();
        let c = Parameter::shared("c", Tensor::ones(vec![2]));
        let err = load_parameters(&path, &[c]).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let path = tmp("shape.msgc2");
        let a = Parameter::shared("a", Tensor::ones(vec![2]));
        save_parameters(&path, &[a]).unwrap();
        let a2 = Parameter::shared("a", Tensor::ones(vec![3]));
        let err = load_parameters(&path, &[a2]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"hello world").unwrap();
        let a = Parameter::shared("a", Tensor::ones(vec![1]));
        assert!(load_parameters(&path, &[a]).is_err());
    }

    #[test]
    fn corrupted_record_crc_is_rejected() {
        let path = tmp("crc.msgc2");
        let a = Parameter::shared("a", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4]));
        save_parameters(&path, std::slice::from_ref(&a)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the PARAMS payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_parameters(&path, &[a]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn truncated_container_is_rejected() {
        let path = tmp("trunc.msgc2");
        let a = Parameter::shared("a", Tensor::ones(vec![8]));
        save_parameters(&path, std::slice::from_ref(&a)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() - 13, 9, 5, 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = load_parameters(&path, std::slice::from_ref(&a)).unwrap_err();
            assert!(
                err.kind() == io::ErrorKind::InvalidData
                    || err.kind() == io::ErrorKind::UnexpectedEof,
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn unknown_record_kinds_are_skipped() {
        let path = tmp("forward.msgc2");
        let a = Parameter::shared("a", Tensor::ones(vec![2]));
        let entries = vec![("a".to_string(), Tensor::ones(vec![2]))];
        let mut w = CheckpointWriter::new();
        w.record(0x7F, vec![1, 2, 3]); // future record kind
        w.record(REC_PARAMS, encode_named_tensors(&entries));
        w.commit(&path).unwrap();
        load_parameters(&path, &[a]).unwrap();
    }
}

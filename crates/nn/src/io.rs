//! Parameter checkpointing: a tiny self-describing binary format
//! (`MSGC1` magic, little-endian) for saving and restoring named parameter
//! sets without external dependencies.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use autograd::ParamRef;
use tensor::Tensor;

const MAGIC: &[u8; 5] = b"MSGC1";

/// Serializes parameters (name, shape, f32 data) to `path`.
///
/// The gradient and trainability flag are not persisted — checkpoints store
/// model state, not optimizer state.
pub fn save_parameters(path: impl AsRef<Path>, params: &[ParamRef]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let pb = p.borrow();
        let name = pb.name.as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        let dims = pb.value.dims();
        w.write_all(&(dims.len() as u64).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in pb.value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Restores parameters saved by [`save_parameters`] into `params`,
/// matching by name. Every parameter in `params` must be present in the
/// file with an identical shape; extra entries in the file are ignored.
pub fn load_parameters(path: impl AsRef<Path>, params: &[ParamRef]) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a MSGC1 checkpoint"));
    }
    let count = read_u64(&mut r)? as usize;
    let mut loaded: std::collections::HashMap<String, Tensor> =
        std::collections::HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u64(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("invalid parameter name"))?;
        let ndim = read_u64(&mut r)? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_u64(&mut r)? as usize);
        }
        let numel: usize = dims.iter().product();
        let mut data = vec![0f32; numel];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        loaded.insert(name, Tensor::from_vec(data, dims));
    }
    for p in params {
        let mut pb = p.borrow_mut();
        let t = loaded
            .get(&pb.name)
            .ok_or_else(|| bad(&format!("parameter {} missing from checkpoint", pb.name)))?;
        if t.dims() != pb.value.dims() {
            return Err(bad(&format!(
                "shape mismatch for {}: file {:?} vs model {:?}",
                pb.name,
                t.dims(),
                pb.value.dims()
            )));
        }
        pb.value = t.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;

    #[test]
    fn round_trip_preserves_values() {
        let dir = std::env::temp_dir().join("msgc_io_test_rt");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ckpt.bin");
        let a = Parameter::shared(
            "layer.weight",
            Tensor::arange(6).reshape(vec![2, 3]).unwrap(),
        );
        let b = Parameter::shared("layer.bias", Tensor::from_vec(vec![-1.5, 2.5], vec![2]));
        save_parameters(&path, &[a.clone(), b.clone()]).unwrap();

        // Corrupt the in-memory values, then reload.
        a.borrow_mut().value = Tensor::zeros(vec![2, 3]);
        b.borrow_mut().value = Tensor::zeros(vec![2]);
        load_parameters(&path, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(a.borrow().value.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.borrow().value.data(), &[-1.5, 2.5]);
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let dir = std::env::temp_dir().join("msgc_io_test_missing");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ckpt.bin");
        let a = Parameter::shared("a", Tensor::ones(vec![2]));
        save_parameters(&path, &[a]).unwrap();
        let c = Parameter::shared("c", Tensor::ones(vec![2]));
        let err = load_parameters(&path, &[c]).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let dir = std::env::temp_dir().join("msgc_io_test_shape");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ckpt.bin");
        let a = Parameter::shared("a", Tensor::ones(vec![2]));
        save_parameters(&path, &[a]).unwrap();
        let a2 = Parameter::shared("a", Tensor::ones(vec![3]));
        let err = load_parameters(&path, &[a2]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn rejects_garbage_files() {
        let dir = std::env::temp_dir().join("msgc_io_test_bad");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"hello world").unwrap();
        let a = Parameter::shared("a", Tensor::ones(vec![1]));
        assert!(load_parameters(&path, &[a]).is_err());
    }
}

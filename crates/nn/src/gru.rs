//! Gated recurrent unit, for the GRU4Rec baseline.

use autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;
use tensor::Tensor;

use crate::{Linear, Module};

/// A single-layer GRU.
///
/// Update equations (Cho et al., 2014):
/// ```text
/// z  = σ(x·Wz + h·Uz + bz)
/// r  = σ(x·Wr + h·Ur + br)
/// h̃  = tanh(x·Wh + (r⊙h)·Uh + bh)
/// h' = (1−z)⊙h + z⊙h̃
/// ```
pub struct Gru {
    pub(crate) wz: Linear,
    pub(crate) uz: Linear,
    pub(crate) wr: Linear,
    pub(crate) ur: Linear,
    pub(crate) wh: Linear,
    pub(crate) uh: Linear,
    pub(crate) dim: usize,
}

impl Gru {
    /// Creates a GRU with input and hidden size `dim`.
    pub fn new(rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Gru {
            wz: Linear::new(rng, &format!("{name}.wz"), dim, dim, true),
            uz: Linear::new(rng, &format!("{name}.uz"), dim, dim, false),
            wr: Linear::new(rng, &format!("{name}.wr"), dim, dim, true),
            ur: Linear::new(rng, &format!("{name}.ur"), dim, dim, false),
            wh: Linear::new(rng, &format!("{name}.wh"), dim, dim, true),
            uh: Linear::new(rng, &format!("{name}.uh"), dim, dim, false),
            dim,
        }
    }

    /// Hidden size.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One step: `x: [b, dim]`, `h: [b, dim]` → new hidden `[b, dim]`.
    pub fn step(&self, g: &Graph, x: &Var, h: &Var) -> Var {
        let z = self.wz.forward(g, x).add(&self.uz.forward(g, h)).sigmoid();
        let r = self.wr.forward(g, x).add(&self.ur.forward(g, h)).sigmoid();
        let h_cand = self
            .wh
            .forward(g, x)
            .add(&self.uh.forward(g, &r.mul(h)))
            .tanh();
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(h).add(&z.mul(&h_cand))
    }

    /// Runs the GRU over a sequence `x: [b, n, dim]`, returning all hidden
    /// states stacked as `[b, n, dim]` (initial hidden is zero).
    pub fn forward_sequence(&self, g: &Graph, x: &Var) -> Var {
        let dims = x.dims();
        let (b, n) = (dims[0], dims[1]);
        let mut h = g.constant(Tensor::zeros(vec![b, self.dim]));
        let mut outputs: Vec<Var> = Vec::with_capacity(n);
        for t in 0..n {
            let xt = x.slice_axis(1, t, t + 1).reshape(vec![b, self.dim]);
            h = self.step(g, &xt, &h);
            outputs.push(h.reshape(vec![b, 1, self.dim]));
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        Var::concat(&refs, 1)
    }
}

impl Module for Gru {
    fn parameters(&self) -> Vec<ParamRef> {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tensor::init;

    #[test]
    fn step_and_sequence_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut rng, "gru", 4);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![2, 4], 0.0, 1.0));
        let h = g.constant(Tensor::zeros(vec![2, 4]));
        assert_eq!(gru.step(&g, &x, &h).dims(), vec![2, 4]);

        let xs = g.constant(init::randn(&mut rng, vec![2, 5, 4], 0.0, 1.0));
        assert_eq!(gru.forward_sequence(&g, &xs).dims(), vec![2, 5, 4]);
    }

    #[test]
    fn hidden_bounded_by_tanh_dynamics() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut rng, "gru", 4);
        let g = Graph::new();
        let xs = g.constant(init::randn(&mut rng, vec![1, 20, 4], 0.0, 10.0));
        let h = gru.forward_sequence(&g, &xs).value();
        // h is a convex combination of tanh outputs, so |h| ≤ 1.
        assert!(h.max_all() <= 1.0 + 1e-5);
        assert!(h.min_all() >= -1.0 - 1e-5);
    }

    #[test]
    fn sequence_is_causal() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut rng, "gru", 3);
        let base = init::randn(&mut rng, vec![1, 4, 3], 0.0, 1.0);
        let mut altered = base.clone();
        // change only the last timestep
        for j in 0..3 {
            altered.set(&[0, 3, j], 9.0);
        }
        let g = Graph::new();
        let y0 = gru.forward_sequence(&g, &g.constant(base)).value();
        let y1 = gru.forward_sequence(&g, &g.constant(altered)).value();
        for t in 0..3 {
            for j in 0..3 {
                assert!((y0.at(&[0, t, j]) - y1.at(&[0, t, j])).abs() < 1e-6);
            }
        }
        assert!((y0.at(&[0, 3, 0]) - y1.at(&[0, 3, 0])).abs() > 1e-4);
    }

    #[test]
    fn gradcheck_gru_step() {
        use autograd::numeric::assert_grads_close;
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(&mut rng, "gru", 3);
        let x = init::uniform(&mut rng, vec![2, 3], -1.0, 1.0);
        let h0 = init::uniform(&mut rng, vec![2, 3], -0.5, 0.5);
        let params = gru.parameters();
        assert_grads_close(&params, 1e-2, 3e-2, move |g| {
            gru.step(g, &g.constant(x.clone()), &g.constant(h0.clone()))
                .square()
                .sum_all()
        });
    }
}

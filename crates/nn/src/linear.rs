//! Fully-connected (affine) layer.

use autograd::{Graph, ParamRef, Parameter, Var};
use rand::rngs::StdRng;
use tensor::{init, Tensor};

use crate::Module;

/// `y = x · W (+ b)` for inputs of shape `[.., in_dim]` (rank 2 or 3).
pub struct Linear {
    pub(crate) weight: ParamRef,
    pub(crate) bias: Option<ParamRef>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(rng: &mut StdRng, name: &str, in_dim: usize, out_dim: usize, bias: bool) -> Self {
        let weight = Parameter::shared(
            format!("{name}.weight"),
            init::xavier_uniform(rng, vec![in_dim, out_dim]),
        );
        let bias =
            bias.then(|| Parameter::shared(format!("{name}.bias"), Tensor::zeros(vec![out_dim])));
        Linear { weight, bias }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.borrow().value.dim(0)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.borrow().value.dim(1)
    }

    /// Applies the layer. `x` has shape `[.., in_dim]` (rank 2 or 3).
    pub fn forward(&self, g: &Graph, x: &Var) -> Var {
        let mut y = x.matmul(&g.param(&self.weight));
        if let Some(b) = &self.bias {
            y = y.add(&g.param(b));
        }
        y
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<ParamRef> {
        let mut out = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            out.push(b.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_2d_and_3d() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, "l", 4, 3, true);
        assert_eq!((l.in_dim(), l.out_dim()), (4, 3));
        let g = Graph::new();
        let x2 = g.constant(Tensor::ones(vec![2, 4]));
        assert_eq!(l.forward(&g, &x2).dims(), vec![2, 3]);
        let x3 = g.constant(Tensor::ones(vec![2, 5, 4]));
        assert_eq!(l.forward(&g, &x3).dims(), vec![2, 5, 3]);
    }

    #[test]
    fn bias_is_added() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, "l", 2, 2, true);
        l.parameters()[1].borrow_mut().value = Tensor::from_vec(vec![10.0, 20.0], vec![2]);
        l.parameters()[0].borrow_mut().value = Tensor::zeros(vec![2, 2]);
        let g = Graph::new();
        let y = l.forward(&g, &g.constant(Tensor::ones(vec![1, 2])));
        assert_eq!(y.value().data(), &[10.0, 20.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Linear::new(&mut rng, "l", 4, 3, true).num_parameters(), 15);
        assert_eq!(Linear::new(&mut rng, "l", 4, 3, false).num_parameters(), 12);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, "l", 3, 2, true);
        let g = Graph::new();
        let y = l
            .forward(&g, &g.constant(Tensor::ones(vec![2, 3])))
            .sum_all();
        y.backward();
        for p in l.parameters() {
            assert!(
                p.borrow().grad.norm() > 0.0,
                "no grad for {}",
                p.borrow().name
            );
        }
    }
}

//! Tape-free inference counterparts of the training modules.
//!
//! Every training module in this crate holds its weights as
//! [`autograd::ParamRef`] (`Arc<RwLock<Parameter>>`) and runs its forward
//! through the autograd `Var` graph, which records a tape node, clones
//! shape metadata, and takes a lock per parameter read. None of that is
//! needed at serving time. [`Freeze`] converts a trained module into a
//! frozen twin holding plain contiguous [`Tensor`]s; the frozen forwards
//! run straight on `tensor::ops` with no graph, no locks, and no gradient
//! bookkeeping.
//!
//! # Bitwise parity contract
//!
//! The frozen forwards are **bitwise identical** to the autograd forwards
//! on the same weights, by construction: each one composes the exact same
//! `tensor::ops` calls (and `Tensor::map` closures) in the exact same
//! order as the corresponding `Var` op chain. The speedup comes from
//! skipping tape/lock/grad overhead and from incremental state reuse —
//! never from reordering float arithmetic. Ops that merely move data
//! (`reshape`, `slice_axis`, `concat`, `permute`) may be elided where the
//! moved values are not read, since copies cannot change bits.
//!
//! # Incremental attention state
//!
//! [`AttnKv`] caches per-head key/value rows so that extending a sequence
//! by one position costs one row of projections plus one attention row,
//! instead of a full re-encode. This is exact (not approximate) because
//! every GEMM output element in `tensor::ops` is a single strict k-order
//! accumulation chain starting at `+0.0`, independent of how many rows are
//! computed alongside it, and softmax/LayerNorm/elementwise ops are
//! row-independent. A causally-masked position therefore has a hidden
//! state that never changes as later positions are appended — provided
//! position indices are stable under append (left-aligned positions
//! `0..len`, no left padding). The incremental entry points below assume
//! exactly that convention; callers that need the training-time
//! left-padded convention must use the full forwards.

use tensor::bug::OrBug;
use tensor::{ops, QuantMatrix, QuantMode, Tensor};

use crate::{
    Activation, Embedding, FeedForward, Gru, LayerNorm, Linear, MultiHeadSelfAttention,
    TransformerEncoder, TransformerLayer,
};

/// Common surface of all frozen inference modules.
pub trait InferModule {
    /// Total number of weight scalars held by this module.
    fn num_weights(&self) -> usize;

    /// Resident bytes of this module's weight storage. The default assumes
    /// dense f32; modules whose matrices live in a [`QuantMatrix`]
    /// override this to report the quantised footprint.
    fn weight_bytes(&self) -> usize {
        self.num_weights() * 4
    }
}

/// In-place weight quantisation of a frozen module for serving.
///
/// Freezing always produces f32 storage (the bitwise-parity default);
/// `quantize` re-encodes each weight **matrix** to the requested mode.
/// Vectors that are cheap and precision-critical — biases, LayerNorm
/// gamma/beta — always stay f32. Quantising to [`QuantMode::F32`] is an
/// exact no-op, so the mode can be threaded unconditionally from config.
pub trait Quantize {
    /// Re-encodes this module's weight matrices to `mode`.
    fn quantize(&mut self, mode: QuantMode);
}

/// Conversion from the trained `ParamRef` form into the frozen form.
///
/// Freezing clones the current parameter values out of their locks; the
/// frozen module is fully detached from subsequent training updates.
pub trait Freeze {
    /// The frozen twin type.
    type Frozen: InferModule;
    /// Snapshots current weights into a tape-free module.
    fn freeze(&self) -> Self::Frozen;
}

fn frozen_value(p: &autograd::ParamRef) -> Tensor {
    p.borrow().value.clone()
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Frozen [`Linear`]: `y = x · W (+ b)`.
///
/// The weight matrix lives in a [`QuantMatrix`]; in the default
/// [`QuantMode::F32`] mode the forward is bitwise-identical to the
/// autograd twin (`matmul_q` passes the stored tensor straight to
/// `matmul`). The bias stays f32 in every mode.
pub struct FrozenLinear {
    weight: QuantMatrix,
    bias: Option<Tensor>,
}

impl FrozenLinear {
    /// Applies the layer to `x: [.., in_dim]` (rank 2 or 3).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = ops::matmul_q(x, &self.weight).or_bug("frozen linear matmul");
        match &self.bias {
            Some(b) => ops::add(&y, b).or_bug("frozen linear bias"),
            None => y,
        }
    }

    /// Declares the tape ops of `Linear::forward` (the autograd twin).
    pub fn op_trace(&self, out: &mut Vec<&'static str>) {
        out.push("matmul");
        if self.bias.is_some() {
            out.push("add");
        }
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }
}

impl InferModule for FrozenLinear {
    fn num_weights(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.as_ref().map_or(0, |b| b.data().len())
    }

    fn weight_bytes(&self) -> usize {
        self.weight.resident_bytes() + self.bias.as_ref().map_or(0, |b| b.data().len() * 4)
    }
}

impl Quantize for FrozenLinear {
    fn quantize(&mut self, mode: QuantMode) {
        self.weight.requantize(mode);
    }
}

impl Freeze for Linear {
    type Frozen = FrozenLinear;
    fn freeze(&self) -> FrozenLinear {
        FrozenLinear {
            weight: QuantMatrix::from_tensor(frozen_value(&self.weight), QuantMode::F32)
                .or_bug("linear weight is rank 2"),
            bias: self.bias.as_ref().map(frozen_value),
        }
    }
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Frozen [`Embedding`]: a `[vocab, dim]` lookup table, stored in a
/// [`QuantMatrix`]. In the default f32 mode lookups and the tied scoring
/// GEMM are bitwise-identical to the autograd twin; in bf16/int8 modes
/// rows are dequantised on the fly and the table is the dominant share of
/// the serving footprint reduction.
pub struct FrozenEmbedding {
    table: QuantMatrix,
    vocab: usize,
    dim: usize,
}

impl FrozenEmbedding {
    /// Looks up a flat index list, returning `[indices.len(), dim]`.
    pub fn lookup_flat(&self, indices: &[usize]) -> Tensor {
        self.table
            .select_rows(indices)
            .or_bug("frozen embedding lookup")
    }

    /// Looks up a batch of equal-length sequences: `[batch, seq_len, dim]`.
    pub fn lookup_batch(&self, batch: &[Vec<usize>]) -> Tensor {
        let b = batch.len();
        let n = batch.first().map_or(0, Vec::len);
        let flat: Vec<usize> = batch
            .iter()
            .flat_map(|s| {
                assert_eq!(s.len(), n, "all sequences in a batch must be padded equal");
                s.iter().copied()
            })
            .collect();
        self.lookup_flat(&flat)
            .reshape(vec![b, n, self.dim])
            .or_bug("frozen embedding reshape")
    }

    /// Declares the tape ops of `Embedding::forward_flat`.
    pub fn lookup_flat_trace(out: &mut Vec<&'static str>) {
        out.push("index_select_rows");
    }

    /// Declares the tape ops of `Embedding::forward_batch`.
    pub fn lookup_batch_trace(out: &mut Vec<&'static str>) {
        out.push("index_select_rows");
        out.push("reshape");
    }

    /// The full table (tied output projection), in its stored encoding —
    /// feed it to `ops::matmul_transb_q` for the scoring GEMM.
    pub fn table_q(&self) -> &QuantMatrix {
        &self.table
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl InferModule for FrozenEmbedding {
    fn num_weights(&self) -> usize {
        self.table.rows() * self.table.cols()
    }

    fn weight_bytes(&self) -> usize {
        self.table.resident_bytes()
    }
}

impl Quantize for FrozenEmbedding {
    fn quantize(&mut self, mode: QuantMode) {
        self.table.requantize(mode);
    }
}

impl Freeze for Embedding {
    type Frozen = FrozenEmbedding;
    fn freeze(&self) -> FrozenEmbedding {
        FrozenEmbedding {
            table: QuantMatrix::from_tensor(frozen_value(&self.table), QuantMode::F32)
                .or_bug("embedding table is rank 2"),
            vocab: self.vocab,
            dim: self.dim,
        }
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Frozen [`LayerNorm`].
pub struct FrozenLayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl FrozenLayerNorm {
    /// Normalizes the last axis of `x` and applies the affine transform.
    /// Mirrors `LayerNorm::forward` op-for-op.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let last = x.dims().len() - 1;
        let mean = ops::mean_axis(x, last, true).or_bug("ln mean");
        let centered = ops::sub(x, &mean).or_bug("ln center");
        let sq = centered.map(|v| v * v);
        let var = ops::mean_axis(&sq, last, true).or_bug("ln var");
        let eps = self.eps;
        let inv_std = var.map(|v| v + eps).map(f32::sqrt);
        let normed = ops::div(&centered, &inv_std).or_bug("ln div");
        let scaled = ops::mul(&normed, &self.gamma).or_bug("ln gamma");
        ops::add(&scaled, &self.beta).or_bug("ln beta")
    }

    /// Declares the tape ops of `LayerNorm::forward`. On tape,
    /// `mean_axis` is the composite `sum_axis`+`scale`, and the
    /// `map` closures here mirror `square`/`add_scalar`/`sqrt` ops.
    pub fn op_trace(out: &mut Vec<&'static str>) {
        out.extend([
            "sum_axis",
            "scale", // mean
            "sub",
            "square",
            "sum_axis",
            "scale", // variance
            "add_scalar",
            "sqrt",
            "div",
            "mul", // gamma
            "add", // beta
        ]);
    }
}

impl InferModule for FrozenLayerNorm {
    fn num_weights(&self) -> usize {
        self.gamma.data().len() + self.beta.data().len()
    }
}

impl Freeze for LayerNorm {
    type Frozen = FrozenLayerNorm;
    fn freeze(&self) -> FrozenLayerNorm {
        FrozenLayerNorm {
            gamma: frozen_value(&self.gamma),
            beta: frozen_value(&self.beta),
            eps: self.eps,
        }
    }
}

// ---------------------------------------------------------------------------
// FeedForward
// ---------------------------------------------------------------------------

/// Frozen [`FeedForward`] (dropout is identity at inference).
pub struct FrozenFeedForward {
    l1: FrozenLinear,
    l2: FrozenLinear,
    activation: Activation,
}

impl FrozenFeedForward {
    /// Applies the FFN position-wise (no residual; caller adds it).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let h = self.l1.forward(x);
        let h = match self.activation {
            Activation::Relu => h.map(|v| v.max(0.0)),
            Activation::Gelu => {
                const C: f32 = 0.797_884_6; // sqrt(2/pi), as in Var::gelu
                h.map(|v| 0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh()))
            }
        };
        self.l2.forward(&h)
    }

    /// Declares the tape ops of `FeedForward::forward` at eval (dropout
    /// records nothing when not training).
    pub fn op_trace(&self, out: &mut Vec<&'static str>) {
        self.l1.op_trace(out);
        out.push(match self.activation {
            Activation::Relu => "relu",
            Activation::Gelu => "gelu",
        });
        self.l2.op_trace(out);
    }
}

impl InferModule for FrozenFeedForward {
    fn num_weights(&self) -> usize {
        self.l1.num_weights() + self.l2.num_weights()
    }

    fn weight_bytes(&self) -> usize {
        self.l1.weight_bytes() + self.l2.weight_bytes()
    }
}

impl Quantize for FrozenFeedForward {
    fn quantize(&mut self, mode: QuantMode) {
        self.l1.quantize(mode);
        self.l2.quantize(mode);
    }
}

impl Freeze for FeedForward {
    type Frozen = FrozenFeedForward;
    fn freeze(&self) -> FrozenFeedForward {
        FrozenFeedForward {
            l1: self.l1.freeze(),
            l2: self.l2.freeze(),
            activation: self.activation,
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-head self-attention
// ---------------------------------------------------------------------------

/// Cached key/value rows for one attention block of one sequence.
///
/// Layout: per head, a flat row-major `[len, head_dim]` buffer. Rows are
/// append-only; cached rows are never recomputed (see the module-level
/// exactness argument).
pub struct AttnKv {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    len: usize,
}

impl AttnKv {
    /// Empty cache for `heads` attention heads.
    pub fn new(heads: usize) -> Self {
        AttnKv {
            k: vec![Vec::new(); heads],
            v: vec![Vec::new(); heads],
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Frozen [`MultiHeadSelfAttention`].
pub struct FrozenMultiHeadSelfAttention {
    wq: FrozenLinear,
    wk: FrozenLinear,
    wv: FrozenLinear,
    wo: FrozenLinear,
    heads: usize,
    dim: usize,
}

impl FrozenMultiHeadSelfAttention {
    fn split_heads(&self, x: &Tensor, b: usize, n: usize) -> Tensor {
        let dh = self.dim / self.heads;
        let r = x
            .reshape(vec![b, n, self.heads, dh])
            .or_bug("split reshape");
        let p = ops::permute(&r, &[0, 2, 1, 3]).or_bug("split permute");
        p.reshape(vec![b * self.heads, n, dh]).or_bug("split merge")
    }

    /// Full self-attention over `x: [b, n, dim]` with an optional additive
    /// mask broadcastable to `[b·heads, n, n]`. Mirrors
    /// `MultiHeadSelfAttention::forward` (eval mode) op-for-op.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        self.forward_collect(x, mask, None)
    }

    /// As [`FrozenMultiHeadSelfAttention::forward`], additionally filling
    /// `collect` with this block's per-head K/V rows (requires `b == 1`).
    pub fn forward_collect(
        &self,
        x: &Tensor,
        mask: Option<&Tensor>,
        collect: Option<&mut AttnKv>,
    ) -> Tensor {
        let dims = x.dims();
        let (b, n) = (dims[0], dims[1]);
        debug_assert_eq!(dims[2], self.dim);
        let dh = self.dim / self.heads;

        let q = self.split_heads(&self.wq.forward(x), b, n);
        let k = self.split_heads(&self.wk.forward(x), b, n);
        let v = self.split_heads(&self.wv.forward(x), b, n);

        if let Some(kv) = collect {
            assert_eq!(b, 1, "K/V collection is per-sequence");
            for h in 0..self.heads {
                let span = h * n * dh..(h + 1) * n * dh;
                kv.k[h] = k.data()[span.clone()].to_vec();
                kv.v[h] = v.data()[span].to_vec();
            }
            kv.len = n;
        }

        let scale = 1.0 / (dh as f32).sqrt();
        let mut scores = ops::matmul_transb(&q, &k)
            .or_bug("attn scores")
            .map(|s| s * scale);
        if let Some(m) = mask {
            scores = ops::add(&scores, m).or_bug("attn mask");
        }
        let attn = ops::softmax_last(&scores);
        let ctx = ops::matmul(&attn, &v).or_bug("attn ctx");
        scores.recycle();
        let ctx = ctx
            .reshape(vec![b, self.heads, n, dh])
            .or_bug("merge reshape");
        let ctx = ops::permute(&ctx, &[0, 2, 1, 3]).or_bug("merge permute");
        let ctx = ctx.reshape(vec![b, n, self.dim]).or_bug("merge flatten");
        self.wo.forward(&ctx)
    }

    /// Appends one position per sequence: `x: [b, dim]` holds the new
    /// position's input row for `b` independent sequences whose caches are
    /// `kvs`. Returns the new positions' outputs `[b, dim]`.
    ///
    /// Bitwise-identical to the last row of
    /// [`FrozenMultiHeadSelfAttention::forward`] over the full (causally
    /// masked, unpadded) sequence: the projections are row-independent
    /// GEMMs, the causal mask contributes exactly `+0.0` to the final row
    /// (mirrored below so `-0.0` scores normalize identically), and
    /// softmax/context are per-row chains.
    pub fn step_append(&self, x: &Tensor, kvs: &mut [&mut AttnKv]) -> Tensor {
        let b = x.dims()[0];
        debug_assert_eq!(kvs.len(), b);
        let dh = self.dim / self.heads;
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = Tensor::zeros(vec![b, self.dim]);
        for (bi, kv) in kvs.iter_mut().enumerate() {
            for h in 0..self.heads {
                let span = h * dh..(h + 1) * dh;
                kv.k[h].extend_from_slice(&k.row(bi)[span.clone()]);
                kv.v[h].extend_from_slice(&v.row(bi)[span.clone()]);
                let len = kv.k[h].len() / dh;
                let qt = Tensor::from_vec(q.row(bi)[span.clone()].to_vec(), vec![1, dh]);
                let kt = Tensor::from_vec(std::mem::take(&mut kv.k[h]), vec![len, dh]);
                let scores = ops::matmul_transb(&qt, &kt)
                    .or_bug("attn step scores")
                    .map(|s| s * scale)
                    // The causal-mask row for the newest position is all
                    // zeros; `s + 0.0` reproduces the full path's additive
                    // mask bit-for-bit (it maps -0.0 to +0.0).
                    .map(|s| s + 0.0);
                kv.k[h] = kt.into_vec();
                let attn = ops::softmax_last(&scores);
                let vt = Tensor::from_vec(std::mem::take(&mut kv.v[h]), vec![len, dh]);
                let c = ops::matmul(&attn, &vt).or_bug("attn step ctx");
                kv.v[h] = vt.into_vec();
                ctx.row_mut(bi)[span].copy_from_slice(c.row(0));
            }
            kv.len += 1;
        }
        self.wo.forward(&ctx)
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Declares the tape ops of `MultiHeadSelfAttention::forward` at eval.
    /// `masked` states whether an additive mask was supplied (it always is
    /// in the backbone paths; bidirectional unmasked use drops `add_const`).
    pub fn op_trace(&self, masked: bool, out: &mut Vec<&'static str>) {
        for _ in 0..3 {
            // wq/wk/wv projection + split_heads (reshape/permute/reshape).
            out.extend(["matmul", "reshape", "permute", "reshape"]);
        }
        out.extend(["matmul_transb", "scale"]);
        if masked {
            out.push("add_const");
        }
        // softmax, context mix, merge_heads, output projection. Attention
        // dropout records nothing at eval.
        out.extend([
            "softmax_last",
            "matmul",
            "reshape",
            "permute",
            "reshape",
            "matmul",
        ]);
    }
}

impl InferModule for FrozenMultiHeadSelfAttention {
    fn num_weights(&self) -> usize {
        self.wq.num_weights()
            + self.wk.num_weights()
            + self.wv.num_weights()
            + self.wo.num_weights()
    }

    fn weight_bytes(&self) -> usize {
        self.wq.weight_bytes()
            + self.wk.weight_bytes()
            + self.wv.weight_bytes()
            + self.wo.weight_bytes()
    }
}

impl Quantize for FrozenMultiHeadSelfAttention {
    fn quantize(&mut self, mode: QuantMode) {
        self.wq.quantize(mode);
        self.wk.quantize(mode);
        self.wv.quantize(mode);
        self.wo.quantize(mode);
    }
}

impl Freeze for MultiHeadSelfAttention {
    type Frozen = FrozenMultiHeadSelfAttention;
    fn freeze(&self) -> FrozenMultiHeadSelfAttention {
        FrozenMultiHeadSelfAttention {
            wq: self.wq.freeze(),
            wk: self.wk.freeze(),
            wv: self.wv.freeze(),
            wo: self.wo.freeze(),
            heads: self.heads,
            dim: self.dim,
        }
    }
}

// ---------------------------------------------------------------------------
// Transformer layer / encoder
// ---------------------------------------------------------------------------

/// Frozen [`TransformerLayer`] (post-norm, SASRec style).
pub struct FrozenTransformerLayer {
    mha: FrozenMultiHeadSelfAttention,
    ffn: FrozenFeedForward,
    ln1: FrozenLayerNorm,
    ln2: FrozenLayerNorm,
}

impl FrozenTransformerLayer {
    /// Applies the block to `x: [b, n, dim]`.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        self.forward_collect(x, mask, None)
    }

    /// As [`FrozenTransformerLayer::forward`], collecting this layer's K/V
    /// cache (requires `b == 1`).
    pub fn forward_collect(
        &self,
        x: &Tensor,
        mask: Option<&Tensor>,
        collect: Option<&mut AttnKv>,
    ) -> Tensor {
        let attn = self.mha.forward_collect(x, mask, collect);
        let h = self.ln1.forward(&ops::add(x, &attn).or_bug("resid1"));
        let ff = self.ffn.forward(&h);
        self.ln2.forward(&ops::add(&h, &ff).or_bug("resid2"))
    }

    /// One-position append for `b` independent sequences (`x: [b, dim]`).
    pub fn step_append(&self, x: &Tensor, kvs: &mut [&mut AttnKv]) -> Tensor {
        let attn = self.mha.step_append(x, kvs);
        let h = self.ln1.forward(&ops::add(x, &attn).or_bug("resid1"));
        let ff = self.ffn.forward(&h);
        self.ln2.forward(&ops::add(&h, &ff).or_bug("resid2"))
    }

    /// Declares the tape ops of `TransformerLayer::forward` at eval.
    pub fn op_trace(&self, masked: bool, out: &mut Vec<&'static str>) {
        self.mha.op_trace(masked, out);
        out.push("add"); // attention residual
        FrozenLayerNorm::op_trace(out);
        self.ffn.op_trace(out);
        out.push("add"); // FFN residual
        FrozenLayerNorm::op_trace(out);
    }
}

impl InferModule for FrozenTransformerLayer {
    fn num_weights(&self) -> usize {
        self.mha.num_weights()
            + self.ffn.num_weights()
            + self.ln1.num_weights()
            + self.ln2.num_weights()
    }

    fn weight_bytes(&self) -> usize {
        // LayerNorm vectors stay f32 in every mode.
        self.mha.weight_bytes()
            + self.ffn.weight_bytes()
            + self.ln1.weight_bytes()
            + self.ln2.weight_bytes()
    }
}

impl Quantize for FrozenTransformerLayer {
    fn quantize(&mut self, mode: QuantMode) {
        self.mha.quantize(mode);
        self.ffn.quantize(mode);
    }
}

impl Freeze for TransformerLayer {
    type Frozen = FrozenTransformerLayer;
    fn freeze(&self) -> FrozenTransformerLayer {
        FrozenTransformerLayer {
            mha: self.mha.freeze(),
            ffn: self.ffn.freeze(),
            ln1: self.ln1.freeze(),
            ln2: self.ln2.freeze(),
        }
    }
}

/// Per-layer K/V caches for one sequence through a frozen encoder stack.
pub struct EncoderKv {
    layers: Vec<AttnKv>,
}

impl EncoderKv {
    /// Empty caches for an `n_layers`-deep stack with `heads` heads.
    pub fn new(n_layers: usize, heads: usize) -> Self {
        EncoderKv {
            layers: (0..n_layers).map(|_| AttnKv::new(heads)).collect(),
        }
    }

    /// Number of cached positions (0 when empty).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, AttnKv::len)
    }

    /// True when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Frozen [`TransformerEncoder`].
pub struct FrozenTransformerEncoder {
    layers: Vec<FrozenTransformerLayer>,
}

impl FrozenTransformerEncoder {
    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Attention heads per layer (stacks are homogeneous).
    pub fn heads(&self) -> usize {
        self.layers.first().map_or(1, |l| l.mha.heads)
    }

    /// Runs the stack over `x: [b, n, dim]`, mirroring
    /// `TransformerEncoder::forward` (eval mode) op-for-op, including the
    /// multiplicative timeline mask before the stack and after each layer.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>, timeline: Option<&Tensor>) -> Tensor {
        let mut h = x.clone();
        if let Some(t) = timeline {
            h = ops::mul(&h, t).or_bug("timeline");
        }
        for layer in &self.layers {
            h = layer.forward(&h, mask);
            if let Some(t) = timeline {
                h = ops::mul(&h, t).or_bug("timeline");
            }
        }
        h
    }

    /// Encodes one unpadded sequence `x: [1, n, dim]` under `mask`,
    /// filling `state` with every layer's K/V cache. No timeline mask:
    /// incremental sequences contain no padding.
    pub fn encode_collect(
        &self,
        x: &Tensor,
        mask: Option<&Tensor>,
        state: &mut EncoderKv,
    ) -> Tensor {
        debug_assert_eq!(state.layers.len(), self.layers.len());
        let mut h = x.clone();
        for (layer, kv) in self.layers.iter().zip(state.layers.iter_mut()) {
            h = layer.forward_collect(&h, mask, Some(kv));
        }
        h
    }

    /// Appends one position to each of `b` independent sequences.
    /// `x: [b, dim]` holds the new embedded input rows; `states[i]` is the
    /// i-th sequence's cache. Returns the new top-layer rows `[b, dim]`.
    ///
    /// The per-layer projections and FFN/LayerNorm run as one `[b, ..]`
    /// GEMM-friendly batch; only the attention mixing is per-sequence.
    pub fn append_batch(&self, x: &Tensor, states: &mut [&mut EncoderKv]) -> Tensor {
        let mut h = x.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut kvs: Vec<&mut AttnKv> = states.iter_mut().map(|s| &mut s.layers[li]).collect();
            h = layer.step_append(&h, &mut kvs);
        }
        h
    }

    /// Declares the tape ops of `TransformerEncoder::forward` at eval:
    /// `timeline` applies the multiplicative mask before the stack and
    /// after every layer, exactly as the training forward does.
    pub fn op_trace(&self, masked: bool, timeline: bool, out: &mut Vec<&'static str>) {
        if timeline {
            out.push("mul_const");
        }
        for layer in &self.layers {
            layer.op_trace(masked, out);
            if timeline {
                out.push("mul_const");
            }
        }
    }
}

impl InferModule for FrozenTransformerEncoder {
    fn num_weights(&self) -> usize {
        self.layers.iter().map(InferModule::num_weights).sum()
    }

    fn weight_bytes(&self) -> usize {
        self.layers.iter().map(InferModule::weight_bytes).sum()
    }
}

impl Quantize for FrozenTransformerEncoder {
    fn quantize(&mut self, mode: QuantMode) {
        for layer in &mut self.layers {
            layer.quantize(mode);
        }
    }
}

impl Freeze for TransformerEncoder {
    type Frozen = FrozenTransformerEncoder;
    fn freeze(&self) -> FrozenTransformerEncoder {
        FrozenTransformerEncoder {
            layers: self.layers.iter().map(Freeze::freeze).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// GRU
// ---------------------------------------------------------------------------

/// Frozen [`Gru`].
pub struct FrozenGru {
    wz: FrozenLinear,
    uz: FrozenLinear,
    wr: FrozenLinear,
    ur: FrozenLinear,
    wh: FrozenLinear,
    uh: FrozenLinear,
    dim: usize,
}

impl FrozenGru {
    /// Hidden size.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One step for `b` independent sequences: `x: [b, dim]`,
    /// `h: [b, dim]` → `[b, dim]`. Mirrors `Gru::step` op-for-op.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let sigmoid = |t: Tensor| t.map(|v| 1.0 / (1.0 + (-v).exp()));
        let z = sigmoid(ops::add(&self.wz.forward(x), &self.uz.forward(h)).or_bug("gru z"));
        let r = sigmoid(ops::add(&self.wr.forward(x), &self.ur.forward(h)).or_bug("gru r"));
        let rh = ops::mul(&r, h).or_bug("gru rh");
        let h_cand = ops::add(&self.wh.forward(x), &self.uh.forward(&rh))
            .or_bug("gru cand")
            .map(f32::tanh);
        let one_minus_z = z.map(|v| -v).map(|v| v + 1.0);
        let a = ops::mul(&one_minus_z, h).or_bug("gru keep");
        let b = ops::mul(&z, &h_cand).or_bug("gru update");
        ops::add(&a, &b).or_bug("gru mix")
    }

    /// Declares the tape ops of one `Gru::step`. `wz`/`wr`/`wh` carry a
    /// bias, `uz`/`ur`/`uh` do not, and the `map` closures in
    /// [`FrozenGru::step`] mirror `sigmoid`/`tanh`/`neg`(= `scale`)/
    /// `add_scalar` ops.
    pub fn step_op_trace(&self, out: &mut Vec<&'static str>) {
        for (w, u) in [(&self.wz, &self.uz), (&self.wr, &self.ur)] {
            // z and r gates: Wx (+bias), Uh, add, sigmoid.
            w.op_trace(out);
            u.op_trace(out);
            out.extend(["add", "sigmoid"]);
        }
        // candidate: Wx (+bias), r⊙h, Uh, add, tanh.
        self.wh.op_trace(out);
        out.push("mul");
        self.uh.op_trace(out);
        out.extend(["add", "tanh"]);
        // h' = (1−z)⊙h + z⊙h̃.
        out.extend(["scale", "add_scalar", "mul", "mul", "add"]);
    }

    /// Runs the GRU over `x: [b, n, dim]` (initial hidden zero) and
    /// returns the **last** hidden state `[b, dim]`.
    ///
    /// Matches the last row of `Gru::forward_sequence` bitwise: the
    /// training path's concat/slice merely move values.
    pub fn forward_sequence_last(&self, x: &Tensor) -> Tensor {
        let dims = x.dims();
        let (b, n) = (dims[0], dims[1]);
        let mut h = Tensor::zeros(vec![b, self.dim]);
        for t in 0..n {
            let xt = ops::slice_axis(x, 1, t, t + 1)
                .or_bug("gru slice")
                .reshape(vec![b, self.dim])
                .or_bug("gru reshape");
            h = self.step(&xt, &h);
        }
        h
    }
}

impl InferModule for FrozenGru {
    fn num_weights(&self) -> usize {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .map(|l| l.num_weights())
            .sum()
    }

    fn weight_bytes(&self) -> usize {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .map(|l| l.weight_bytes())
            .sum()
    }
}

impl Quantize for FrozenGru {
    fn quantize(&mut self, mode: QuantMode) {
        for l in [
            &mut self.wz,
            &mut self.uz,
            &mut self.wr,
            &mut self.ur,
            &mut self.wh,
            &mut self.uh,
        ] {
            l.quantize(mode);
        }
    }
}

impl Freeze for Gru {
    type Frozen = FrozenGru;
    fn freeze(&self) -> FrozenGru {
        FrozenGru {
            wz: self.wz.freeze(),
            uz: self.uz.freeze(),
            wr: self.wr.freeze(),
            ur: self.ur.freeze(),
            wh: self.wh.freeze(),
            uh: self.uh.freeze(),
            dim: self.dim,
        }
    }
}

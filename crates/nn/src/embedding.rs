//! Item/position embedding table (the `M ∈ R^{N×d}` of Eq. 4).

use autograd::{Graph, ParamRef, Parameter, Var};
use rand::rngs::StdRng;
use tensor::init;

use crate::Module;

/// A learnable lookup table `[vocab, dim]`.
///
/// Index 0 is conventionally the padding item; models typically multiply
/// padded positions by a timeline mask, and evaluation never ranks item 0.
pub struct Embedding {
    pub(crate) table: ParamRef,
    pub(crate) vocab: usize,
    pub(crate) dim: usize,
}

impl Embedding {
    /// New table with `N(0, 0.02²)` entries (SASRec convention).
    pub fn new(rng: &mut StdRng, name: &str, vocab: usize, dim: usize) -> Self {
        let table = Parameter::shared(
            format!("{name}.table"),
            init::embedding_init(rng, vec![vocab, dim]),
        );
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a flat index list, returning `[indices.len(), dim]`.
    pub fn forward_flat(&self, g: &Graph, indices: &[usize]) -> Var {
        g.param(&self.table).index_select_rows(indices)
    }

    /// Looks up a batch of fixed-length sequences, returning
    /// `[batch, seq_len, dim]`.
    pub fn forward_batch(&self, g: &Graph, batch: &[Vec<usize>]) -> Var {
        let b = batch.len();
        let n = batch.first().map_or(0, Vec::len);
        let flat: Vec<usize> = batch
            .iter()
            .flat_map(|s| {
                assert_eq!(s.len(), n, "all sequences in a batch must be padded equal");
                s.iter().copied()
            })
            .collect();
        self.forward_flat(g, &flat).reshape(vec![b, n, self.dim])
    }

    /// The full table as a graph var (for output projection `z · Mᵀ`).
    pub fn full(&self, g: &Graph) -> Var {
        g.param(&self.table)
    }

    /// Direct handle to the parameter (for analytics like Fig. 6).
    pub fn table(&self) -> &ParamRef {
        &self.table
    }
}

impl Module for Embedding {
    fn parameters(&self) -> Vec<ParamRef> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn lookup_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, "item", 10, 4);
        let g = Graph::new();
        assert_eq!(e.forward_flat(&g, &[1, 2, 3]).dims(), vec![3, 4]);
        let batch = vec![vec![1, 2], vec![3, 0]];
        assert_eq!(e.forward_batch(&g, &batch).dims(), vec![2, 2, 4]);
    }

    #[test]
    fn lookup_matches_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, "item", 5, 3);
        e.table().borrow_mut().value = Tensor::arange(15).reshape(vec![5, 3]).unwrap();
        let g = Graph::new();
        let v = e.forward_flat(&g, &[4, 1]);
        assert_eq!(v.value().data(), &[12.0, 13.0, 14.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn repeated_indices_accumulate_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, "item", 5, 2);
        let g = Graph::new();
        let loss = e.forward_flat(&g, &[2, 2, 2]).sum_all();
        loss.backward();
        let grad = e.table().borrow().grad.clone();
        assert_eq!(grad.row(2), &[3.0, 3.0]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "padded equal")]
    fn ragged_batch_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, "item", 5, 2);
        let g = Graph::new();
        let _ = e.forward_batch(&g, &[vec![1, 2], vec![3]]);
    }
}

//! Property tests for the MSGC2 container: arbitrary payloads and named
//! tensor lists round-trip **bitwise** (including NaN/inf/subnormal f32 bit
//! patterns), and every corruption — truncation at any byte, truncation at
//! record boundaries, single-byte flips anywhere — yields a structured
//! `InvalidData` error, never a panic, OOM-sized allocation, or silently
//! wrong tensor.

#![allow(clippy::expect_used)] // test helpers outside #[test] fns

use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};

use nn::io::{
    crc32, decode_named_tensors, encode_named_tensors, find_record, read_records, CheckpointWriter,
    REC_PARAMS,
};
use proptest::prelude::*;
use tensor::Tensor;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("msgc_corruption_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// Reads a container and decodes its PARAMS record — the full validation
/// path a corrupted parameter checkpoint has to get past.
fn load_strict(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let records = read_records(path)?;
    decode_named_tensors(find_record(&records, REC_PARAMS)?)
}

/// Byte offsets of every record boundary in an MSGC2 file (after the
/// magic + version header and after each record, excluding EOF itself).
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut pos = 9;
    let mut out = vec![pos];
    while pos < bytes.len() {
        let len =
            u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8-byte slice")) as usize;
        pos += 9 + len + 4;
        out.push(pos);
    }
    assert_eq!(
        pos,
        bytes.len(),
        "parsed boundaries disagree with file size"
    );
    out.pop(); // the last boundary is EOF, not a truncation point
    out
}

/// Random named tensor lists whose f32 data covers the whole bit space
/// (NaNs, infinities, subnormals) — round-tripping must preserve bits, not
/// just values.
fn entries() -> impl Strategy<Value = Vec<(String, Tensor)>> {
    prop::collection::vec(
        prop::collection::vec(1usize..4, 1..4).prop_flat_map(|dims| {
            let n: usize = dims.iter().product();
            (Just(dims), prop::collection::vec(0u64..1 << 32, n..=n))
        }),
        1..5,
    )
    .prop_map(|tensors| {
        tensors
            .into_iter()
            .enumerate()
            .map(|(i, (dims, bits))| {
                let data = bits.into_iter().map(|b| f32::from_bits(b as u32)).collect();
                (format!("p{i}"), Tensor::from_vec(data, dims))
            })
            .collect()
    })
}

fn write_params(path: &Path, entries: &[(String, Tensor)], extra_records: &[(u8, Vec<u8>)]) {
    let mut w = CheckpointWriter::new();
    for (kind, payload) in extra_records {
        w.record(*kind, payload.clone());
    }
    w.record(REC_PARAMS, encode_named_tensors(entries));
    w.commit(path).expect("commit failed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn named_tensors_round_trip_bitwise(es in entries()) {
        let path = tmp("round_trip.msgc2");
        write_params(&path, &es, &[]);
        let back = load_strict(&path).unwrap();
        prop_assert_eq!(back.len(), es.len());
        for ((n0, t0), (n1, t1)) in es.iter().zip(&back) {
            prop_assert_eq!(n0, n1);
            prop_assert_eq!(t0.dims(), t1.dims());
            let bits0: Vec<u32> = t0.data().iter().map(|x| x.to_bits()).collect();
            let bits1: Vec<u32> = t1.data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits0, bits1, "f32 bit patterns changed in transit");
        }
    }

    #[test]
    fn arbitrary_records_round_trip(
        recs in prop::collection::vec(
            (1u8..255, prop::collection::vec(0u64..256, 0..64)),
            0..4,
        ),
        es in entries(),
    ) {
        // Interleave unknown future record kinds with a real PARAMS record:
        // the container must carry them verbatim and the decoder must still
        // find the parameters.
        let path = tmp("extra_records.msgc2");
        let extra: Vec<(u8, Vec<u8>)> = recs
            .iter()
            .map(|(k, bytes)| {
                let kind = if *k == REC_PARAMS { 0x7F } else { *k };
                (kind, bytes.iter().map(|&b| b as u8).collect())
            })
            .collect();
        write_params(&path, &es, &extra);
        let records = read_records(&path).unwrap();
        prop_assert_eq!(records.len(), extra.len() + 1);
        for ((k0, p0), (k1, p1)) in extra.iter().zip(&records) {
            prop_assert_eq!(k0, k1);
            prop_assert_eq!(p0, p1);
        }
        prop_assert_eq!(load_strict(&path).unwrap().len(), es.len());
    }

    #[test]
    fn truncation_at_every_record_boundary_is_invalid_data(es in entries()) {
        let path = tmp("boundary_trunc.msgc2");
        write_params(&path, &es, &[(0x10, vec![1, 2, 3]), (0x11, vec![])]);
        let bytes = std::fs::read(&path).unwrap();
        for cut in record_boundaries(&bytes) {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = load_strict(&path).unwrap_err();
            prop_assert_eq!(
                err.kind(),
                ErrorKind::InvalidData,
                "cut at boundary {}: {}", cut, err
            );
        }
    }

    #[test]
    fn truncation_at_any_byte_never_panics(es in entries(), frac in 0u64..1000) {
        let path = tmp("any_trunc.msgc2");
        write_params(&path, &es, &[]);
        let bytes = std::fs::read(&path).unwrap();
        let cut = (frac as usize * bytes.len()) / 1000;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = load_strict(&path).unwrap_err();
        prop_assert!(
            matches!(err.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof),
            "cut at {cut}: unexpected error kind {:?} ({err})", err.kind()
        );
    }

    #[test]
    fn single_byte_flips_are_always_rejected(
        es in entries(),
        pos_frac in 0u64..1000,
        flip in 1u64..256,
    ) {
        let path = tmp("byte_flip.msgc2");
        write_params(&path, &es, &[]);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_frac as usize * bytes.len()) / 1000;
        bytes[pos] ^= flip as u8;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_strict(&path).unwrap_err();
        prop_assert_eq!(
            err.kind(),
            ErrorKind::InvalidData,
            "flip {:#04x} at byte {}: {}", flip, pos, err
        );
    }
}

#[test]
fn crc32_catches_every_single_byte_error_in_a_small_payload() {
    // CRC-32 guarantees detection of any single-byte error; spot-check the
    // table-free implementation byte by byte.
    let payload = b"meta-sgcl checkpoint payload".to_vec();
    let reference = crc32(&payload);
    for pos in 0..payload.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = payload.clone();
            corrupted[pos] ^= flip;
            assert_ne!(crc32(&corrupted), reference, "flip {flip:#04x} at {pos}");
        }
    }
}

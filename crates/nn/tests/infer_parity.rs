//! Bitwise parity gates: every frozen module must reproduce its autograd
//! twin's eval-mode forward exactly (`==` on the raw f32 data), and the
//! incremental attention/GRU paths must reproduce the full re-encode
//! exactly at every prefix length.

use autograd::Graph;
use nn::{
    causal_mask, Activation, AttnKv, EncoderKv, FeedForward, Freeze, Gru, LayerNorm, Linear,
    Module, MultiHeadSelfAttention, TransformerEncoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, ops, Tensor};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn linear_parity() {
    let mut r = rng(1);
    for bias in [true, false] {
        let l = Linear::new(&mut r, "l", 6, 4, bias);
        let fl = l.freeze();
        let x = init::randn(&mut r, vec![3, 6], 0.0, 1.0);
        let g = Graph::new();
        let want = l.forward(&g, &g.constant(x.clone())).value();
        assert_eq!(fl.forward(&x).data(), want.data());
        // Rank-3 inputs too.
        let x3 = init::randn(&mut r, vec![2, 5, 6], 0.0, 1.0);
        let want3 = l.forward(&g, &g.constant(x3.clone())).value();
        assert_eq!(fl.forward(&x3).data(), want3.data());
    }
}

#[test]
fn layernorm_parity() {
    let mut r = rng(2);
    let ln = LayerNorm::new("ln", 5);
    // Non-trivial affine params.
    ln.parameters()[0].borrow_mut().value = init::randn(&mut r, vec![5], 1.0, 0.3);
    ln.parameters()[1].borrow_mut().value = init::randn(&mut r, vec![5], 0.0, 0.2);
    let fln = ln.freeze();
    let x = init::randn(&mut r, vec![2, 3, 5], 0.0, 2.0);
    let g = Graph::new();
    let want = ln.forward(&g, &g.constant(x.clone())).value();
    assert_eq!(fln.forward(&x).data(), want.data());
}

#[test]
fn feedforward_parity_both_activations() {
    let mut r = rng(3);
    for act in [Activation::Relu, Activation::Gelu] {
        let ffn = FeedForward::new(&mut r, "ffn", 6, 9, act, 0.3);
        let f = ffn.freeze();
        let x = init::randn(&mut r, vec![2, 4, 6], 0.0, 1.0);
        let g = Graph::new();
        let want = ffn
            .forward(&g, &g.constant(x.clone()), &mut rng(0), false)
            .value();
        assert_eq!(f.forward(&x).data(), want.data());
    }
}

#[test]
fn attention_parity_with_mask() {
    let mut r = rng(4);
    let mha = MultiHeadSelfAttention::new(&mut r, "mha", 8, 2, 0.2);
    let f = mha.freeze();
    let x = init::randn(&mut r, vec![3, 5, 8], 0.0, 1.0);
    let m = causal_mask(5);
    let g = Graph::new();
    let want = mha
        .forward(&g, &g.constant(x.clone()), Some(&m), &mut rng(0), false)
        .value();
    assert_eq!(f.forward(&x, Some(&m)).data(), want.data());
    let want_nomask = mha
        .forward(&g, &g.constant(x.clone()), None, &mut rng(0), false)
        .value();
    assert_eq!(f.forward(&x, None).data(), want_nomask.data());
}

#[test]
fn encoder_parity_with_timeline() {
    let mut r = rng(5);
    let enc = TransformerEncoder::new(&mut r, "enc", 2, 8, 2, 0.1);
    let f = enc.freeze();
    let x = init::randn(&mut r, vec![2, 4, 8], 0.0, 1.0);
    let m = causal_mask(4);
    let mut timeline = Tensor::ones(vec![2, 4, 1]);
    timeline.data_mut()[0] = 0.0;
    let g = Graph::new();
    let want = enc
        .forward(
            &g,
            &g.constant(x.clone()),
            Some(&m),
            Some(&timeline),
            &mut rng(0),
            false,
        )
        .value();
    assert_eq!(f.forward(&x, Some(&m), Some(&timeline)).data(), want.data());
}

/// The incremental K/V path must equal the full causal re-encode at every
/// prefix length: appending never recomputes (or changes) cached rows.
#[test]
fn incremental_attention_equals_full_reencode() {
    let mut r = rng(6);
    let enc = TransformerEncoder::new(&mut r, "enc", 2, 8, 2, 0.0);
    let f = enc.freeze();
    let n = 7;
    let rows = init::randn(&mut r, vec![n, 8], 0.0, 1.0);

    // Build incrementally: encode the first 3 rows in one shot (collecting
    // K/V), then append the rest one at a time.
    let seed_len = 3;
    let x0 = Tensor::from_vec(rows.data()[..seed_len * 8].to_vec(), vec![1, seed_len, 8]);
    let mut state = EncoderKv::new(f.n_layers(), f.heads());
    let h0 = f.encode_collect(&x0, Some(&causal_mask(seed_len)), &mut state);
    let mut incr_last = h0
        .reshape(vec![seed_len, 8])
        .unwrap()
        .row(seed_len - 1)
        .to_vec();

    for t in seed_len..n {
        // Full re-encode of the prefix 0..=t (the oracle).
        let xt = Tensor::from_vec(rows.data()[..(t + 1) * 8].to_vec(), vec![1, t + 1, 8]);
        let mut fresh = EncoderKv::new(f.n_layers(), f.heads());
        let full = f.encode_collect(&xt, Some(&causal_mask(t + 1)), &mut fresh);
        let full_last = full.reshape(vec![t + 1, 8]).unwrap().row(t).to_vec();

        // Incremental append of row t.
        let xrow = Tensor::from_vec(rows.row(t).to_vec(), vec![1, 8]);
        let mut states = [&mut state];
        let out = f.append_batch(&xrow, &mut states);
        incr_last = out.row(0).to_vec();

        assert_eq!(incr_last, full_last, "prefix len {} diverged", t + 1);
        assert_eq!(state.len(), t + 1);
    }
    assert_eq!(incr_last.len(), 8);
}

/// Batched appends across independent sequences must match one-at-a-time
/// appends bitwise (GEMM row chains are independent of batch size).
#[test]
fn batched_append_equals_single_appends() {
    let mut r = rng(7);
    let enc = TransformerEncoder::new(&mut r, "enc", 1, 8, 2, 0.0);
    let f = enc.freeze();

    // Two sequences with different cached lengths.
    let a_rows = init::randn(&mut r, vec![4, 8], 0.0, 1.0);
    let b_rows = init::randn(&mut r, vec![2, 8], 0.0, 1.0);
    let mk = |rows: &Tensor, n: usize| {
        let x = Tensor::from_vec(rows.data()[..n * 8].to_vec(), vec![1, n, 8]);
        let mut s = EncoderKv::new(f.n_layers(), f.heads());
        f.encode_collect(&x, Some(&causal_mask(n)), &mut s);
        s
    };
    let (mut sa, mut sb) = (mk(&a_rows, 4), mk(&b_rows, 2));
    let (mut sa2, mut sb2) = (mk(&a_rows, 4), mk(&b_rows, 2));

    let new_a = init::randn(&mut r, vec![1, 8], 0.0, 1.0);
    let new_b = init::randn(&mut r, vec![1, 8], 0.0, 1.0);

    // One at a time.
    let oa = f.append_batch(&new_a, &mut [&mut sa]);
    let ob = f.append_batch(&new_b, &mut [&mut sb]);

    // Batched.
    let stacked = ops::concat(&[&new_a, &new_b], 0).unwrap();
    let both = f.append_batch(&stacked, &mut [&mut sa2, &mut sb2]);

    assert_eq!(both.row(0), oa.row(0));
    assert_eq!(both.row(1), ob.row(0));
}

#[test]
fn gru_parity_and_incremental() {
    let mut r = rng(8);
    let gru = Gru::new(&mut r, "gru", 6);
    let f = gru.freeze();
    let x = init::randn(&mut r, vec![2, 5, 6], 0.0, 1.0);
    let g = Graph::new();

    // step parity
    let x1 = init::randn(&mut r, vec![3, 6], 0.0, 1.0);
    let h1 = init::randn(&mut r, vec![3, 6], 0.0, 0.5);
    let want = gru
        .step(&g, &g.constant(x1.clone()), &g.constant(h1.clone()))
        .value();
    assert_eq!(f.step(&x1, &h1).data(), want.data());

    // last-hidden parity vs the training sequence loop
    let hs = gru.forward_sequence(&g, &g.constant(x.clone())).value();
    let mut want_last: Vec<f32> = Vec::new();
    for b in 0..2 {
        for j in 0..6 {
            want_last.push(hs.at(&[b, 4, j]));
        }
    }
    assert_eq!(f.forward_sequence_last(&x).data(), &want_last[..]);

    // incremental recurrence equals the full loop at every prefix
    let mut h = Tensor::zeros(vec![1, 6]);
    for t in 0..5 {
        let xt = Tensor::from_vec(x.data()[t * 6..(t + 1) * 6].to_vec(), vec![1, 6]);
        h = f.step(&xt, &h);
        let prefix = Tensor::from_vec(x.data()[..(t + 1) * 6].to_vec(), vec![1, t + 1, 6]);
        assert_eq!(h.data(), f.forward_sequence_last(&prefix).data());
    }
}

#[test]
fn freeze_snapshots_are_detached_from_training() {
    let mut r = rng(9);
    let l = Linear::new(&mut r, "l", 3, 3, false);
    let frozen = l.freeze();
    let before = frozen.forward(&Tensor::ones(vec![1, 3]));
    l.parameters()[0].borrow_mut().value = Tensor::zeros(vec![3, 3]);
    let after = frozen.forward(&Tensor::ones(vec![1, 3]));
    assert_eq!(
        before.data(),
        after.data(),
        "frozen weights must not track updates"
    );
}

#[test]
fn attn_kv_reports_len() {
    let kv = AttnKv::new(2);
    assert!(kv.is_empty());
    assert_eq!(kv.len(), 0);
}

//! Corruption robustness for checkpoint loading: every truncation and
//! every single-byte flip of a valid checkpoint must surface as a
//! structured `io::Error` — never a panic, never a silent partial load.
//!
//! This pins down the load-path error-handling audit: all `unwrap()`s in
//! `nn::io` live in its `#[cfg(test)]` module; the production read path
//! reports `InvalidData` for malformed input, which these fuzz loops
//! exercise byte by byte.

#![allow(clippy::expect_used)] // test helpers outside #[test] fns

use autograd::{ParamRef, Parameter};
use nn::io::{load_parameters, save_parameters};
use tensor::Tensor;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("msgc_io_robustness");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn fixture_params() -> Vec<ParamRef> {
    vec![
        Parameter::shared(
            "enc.weight",
            Tensor::arange(12).reshape(vec![3, 4]).expect("3x4"),
        ),
        Parameter::shared("enc.bias", Tensor::from_vec(vec![0.5, -1.25, 3.0], vec![3])),
    ]
}

#[test]
fn every_truncation_of_msgc2_is_a_structured_error() {
    let path = tmp("trunc.msgc2");
    save_parameters(&path, &fixture_params()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 32, "fixture checkpoint unexpectedly small");

    let cut_path = tmp("trunc_cut.msgc2");
    for cut in 0..bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let target = fixture_params();
        let res = load_parameters(&cut_path, &target);
        assert!(
            res.is_err(),
            "truncation at byte {cut}/{} was accepted",
            bytes.len()
        );
    }
}

#[test]
fn every_single_byte_flip_of_msgc2_is_a_structured_error() {
    let path = tmp("flip.msgc2");
    save_parameters(&path, &fixture_params()).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    let flip_path = tmp("flip_cut.msgc2");
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut mutated = bytes.clone();
            mutated[i] ^= bit;
            std::fs::write(&flip_path, &mutated).unwrap();
            let target = fixture_params();
            let res = load_parameters(&flip_path, &target);
            assert!(
                res.is_err(),
                "flipping bit {bit:#04x} of byte {i} was accepted"
            );
        }
    }
}

#[test]
fn trailing_garbage_after_end_record_is_rejected() {
    let path = tmp("tail.msgc2");
    save_parameters(&path, &fixture_params()).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.push(0u8);
    std::fs::write(&path, &bytes).unwrap();
    assert!(load_parameters(&path, &fixture_params()).is_err());
}

/// Legacy MSGC1 flat files get the same treatment: the read-only loader
/// validates every header field against the remaining file size, so any
/// truncation must fail cleanly.
#[test]
fn every_truncation_of_legacy_msgc1_is_a_structured_error() {
    let params = fixture_params();
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(nn::io::MAGIC_V1);
    buf.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for p in &params {
        let pb = p.borrow();
        let name = pb.name.as_bytes();
        buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
        buf.extend_from_slice(name);
        let dims = pb.value.dims();
        buf.extend_from_slice(&(dims.len() as u64).to_le_bytes());
        for &d in dims {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &x in pb.value.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    let path = tmp("trunc.msgc1");
    std::fs::write(&path, &buf).unwrap();
    load_parameters(&path, &fixture_params()).expect("intact v1 file loads");

    let cut_path = tmp("trunc_cut.msgc1");
    for cut in 0..buf.len() {
        std::fs::write(&cut_path, &buf[..cut]).unwrap();
        let res = load_parameters(&cut_path, &fixture_params());
        assert!(res.is_err(), "v1 truncation at byte {cut} was accepted");
    }
}

//! Property-based tests for nn layers: shape preservation, determinism,
//! masking semantics, and gradient flow across random configurations.

use autograd::Graph;
use nn::{
    causal_mask, Activation, Dropout, Embedding, FeedForward, LayerNorm, Module,
    MultiHeadSelfAttention, TransformerEncoder,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn attention_preserves_shape_for_any_config(
        b in 1usize..4,
        n in 1usize..6,
        heads_pow in 0u32..3,
        seed in 0u64..100,
    ) {
        let heads = 1usize << heads_pow; // 1, 2, 4
        let dim = heads * 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let mha = MultiHeadSelfAttention::new(&mut rng, "mha", dim, heads, 0.0);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![b, n, dim], 0.0, 1.0));
        let y = mha.forward(&g, &x, Some(&causal_mask(n)), &mut rng, false);
        prop_assert_eq!(y.dims(), vec![b, n, dim]);
        prop_assert!(!y.value().has_non_finite());
    }

    #[test]
    fn layernorm_output_always_standardized(rows in 1usize..6, dim in 2usize..10,
                                            seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ln = LayerNorm::new("ln", dim);
        let g = Graph::new();
        let x = g.constant(init::randn(&mut rng, vec![rows, dim], 3.0, 5.0));
        let y = ln.forward(&g, &x).value();
        for row in y.data().chunks_exact(dim) {
            let mean: f32 = row.iter().sum::<f32>() / dim as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn encoder_deterministic_in_eval_mode(n in 2usize..6, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = TransformerEncoder::new(&mut rng, "enc", 1, 8, 2, 0.3);
        let g = Graph::new();
        let x = init::randn(&mut rng, vec![2, n, 8], 0.0, 1.0);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999); // different rng: eval ignores it
        let y1 = enc.forward(&g, &g.constant(x.clone()), None, None, &mut r1, false).value();
        let y2 = enc.forward(&g, &g.constant(x), None, None, &mut r2, false).value();
        prop_assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn dropout_mask_is_binary_scaled(p in 0.05f32..0.8, seed in 0u64..100) {
        let d = Dropout::new(p);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![500]));
        let mut rng = StdRng::seed_from_u64(seed);
        let y = d.forward(&x, &mut rng, true).value();
        let scale = 1.0 / (1.0 - p);
        for &v in y.data() {
            prop_assert!(v == 0.0 || (v - scale).abs() < 1e-5, "unexpected value {v}");
        }
    }

    #[test]
    fn embedding_gradients_only_touch_selected_rows(
        vocab in 4usize..12,
        picks in prop::collection::vec(0usize..4, 1..6),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = Embedding::new(&mut rng, "e", vocab, 3);
        let g = Graph::new();
        let loss = e.forward_flat(&g, &picks).sum_all();
        loss.backward();
        let grad = e.table().borrow().grad.clone();
        for row in 0..vocab {
            let touched = picks.contains(&row);
            let nonzero = grad.row(row).iter().any(|&x| x != 0.0);
            prop_assert_eq!(touched, nonzero, "row {} touched={} nonzero={}", row, touched, nonzero);
        }
    }

    #[test]
    fn ffn_gradcheck_random_dims(dim in 2usize..5, hidden in 2usize..6, seed in 0u64..50) {
        use autograd::numeric::max_grad_rel_error;
        let mut rng = StdRng::seed_from_u64(seed);
        let ffn = FeedForward::new(&mut rng, "ffn", dim, hidden, Activation::Gelu, 0.0);
        let x = init::uniform(&mut rng, vec![2, dim], -1.0, 1.0);
        let params = ffn.parameters();
        let err = max_grad_rel_error(&params, 1e-2, move |g| {
            let mut r = StdRng::seed_from_u64(0);
            ffn.forward(g, &g.constant(x.clone()), &mut r, false).square().sum_all()
        });
        prop_assert!(err < 5e-2, "rel err {err}");
    }
}

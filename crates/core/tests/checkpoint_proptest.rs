//! Property tests for full MSGC2 *training* checkpoints: random
//! model + optimizer + RNG + progress state round-trips bitwise (load →
//! re-save reproduces the exact file bytes), and corruption — truncation at
//! every record boundary, single-byte flips anywhere — always yields
//! `Err(InvalidData)`, never a panic or a silently different state.

#![allow(clippy::expect_used)] // test helpers outside #[test] fns

use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};

use meta_sgcl::checkpoint::{OptimizerSlot, TrainCheckpoint, TrainProgress};
use proptest::prelude::*;
use tensor::Tensor;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("msgc_ckpt_proptest");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// Loads a checkpoint *and* demands the optimizer slots the training loop
/// would ask for — the full validation path a resume has to get past.
fn load_strict(path: &Path, slots: &[String]) -> io::Result<TrainCheckpoint> {
    let ck = TrainCheckpoint::load(path)?;
    for name in slots {
        ck.slot(name)?;
    }
    Ok(ck)
}

/// Byte offsets of every record boundary (after the header and after each
/// record, excluding EOF itself).
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut pos = 9;
    let mut out = vec![pos];
    while pos < bytes.len() {
        let len =
            u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8-byte slice")) as usize;
        pos += 9 + len + 4;
        out.push(pos);
    }
    assert_eq!(
        pos,
        bytes.len(),
        "parsed boundaries disagree with file size"
    );
    out.pop();
    out
}

fn tensor_bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// A random tensor whose f32 data spans the whole bit space (NaNs,
/// infinities, subnormals included).
fn any_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(1usize..4, 1..3).prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        (Just(dims), prop::collection::vec(0u64..1 << 32, n..=n)).prop_map(|(dims, bits)| {
            let data = bits.into_iter().map(|b| f32::from_bits(b as u32)).collect();
            Tensor::from_vec(data, dims)
        })
    })
}

/// A random full training checkpoint: parameters, one optimizer slot per
/// strategy-appropriate name with matching moment shapes, nonzero RNG
/// words, and a progress cursor.
fn any_checkpoint() -> impl Strategy<Value = TrainCheckpoint> {
    let params = prop::collection::vec(any_tensor(), 1..4).prop_map(|ts| {
        ts.into_iter()
            .enumerate()
            .map(|(i, t)| (format!("p{i}"), t))
            .collect::<Vec<_>>()
    });
    let telemetry = prop::collection::vec(0u64..u64::MAX, 0..4).prop_map(|vs| {
        vs.into_iter()
            .enumerate()
            .map(|(i, v)| (format!("telemetry.counter.{i}"), v))
            .collect::<Vec<_>>()
    });
    let meta = (params, 0usize..2, 1u64..u64::MAX, 0u64..1000, telemetry);
    let cursor = (
        0u64..50,
        0u64..50,
        0u64..100_000,
        0u64..1 << 32,
        0u64..10_000,
    );
    (meta, cursor).prop_map(
        |(
            (params, joint, word0, t0, telemetry),
            (epoch, batch, step, beta_bits, kl_warmup_steps),
        )| {
            let slot_names: &[&str] = if joint == 0 {
                &["all"]
            } else {
                &["main", "meta"]
            };
            let optimizers = slot_names
                .iter()
                .enumerate()
                .map(|(i, name)| OptimizerSlot {
                    name: name.to_string(),
                    t: t0 + i as u64,
                    moments: params
                        .iter()
                        .map(|(n, t)| {
                            let numel: usize = t.dims().iter().product();
                            let m = Tensor::from_vec(vec![0.25; numel], t.dims().to_vec());
                            let v = Tensor::from_vec(vec![0.5; numel], t.dims().to_vec());
                            (n.clone(), m, v)
                        })
                        .collect(),
                })
                .collect();
            TrainCheckpoint {
                params,
                optimizers,
                rng_words: [word0, word0 ^ 0xABCD, word0.rotate_left(17), !word0],
                strategy: if joint == 0 { "joint" } else { "meta-two-step" }.to_string(),
                progress: TrainProgress { epoch, batch, step },
                beta_max: f32::from_bits(beta_bits as u32),
                kl_warmup_steps,
                telemetry,
            }
        },
    )
}

fn slot_names(ck: &TrainCheckpoint) -> Vec<String> {
    ck.optimizers.iter().map(|s| s.name.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_state_round_trips_bitwise(ck in any_checkpoint()) {
        let path = tmp("round_trip.msgc2");
        ck.save(&path).unwrap();
        let back = load_strict(&path, &slot_names(&ck)).unwrap();

        prop_assert_eq!(&back.strategy, &ck.strategy);
        prop_assert_eq!(back.progress, ck.progress);
        prop_assert_eq!(back.rng_words, ck.rng_words);
        prop_assert_eq!(back.beta_max.to_bits(), ck.beta_max.to_bits());
        prop_assert_eq!(back.kl_warmup_steps, ck.kl_warmup_steps);
        prop_assert_eq!(&back.telemetry, &ck.telemetry);

        prop_assert_eq!(back.params.len(), ck.params.len());
        for ((n0, t0), (n1, t1)) in ck.params.iter().zip(&back.params) {
            prop_assert_eq!(n0, n1);
            prop_assert_eq!(t0.dims(), t1.dims());
            prop_assert_eq!(tensor_bits(t0), tensor_bits(t1));
        }
        prop_assert_eq!(back.optimizers.len(), ck.optimizers.len());
        for (s0, s1) in ck.optimizers.iter().zip(&back.optimizers) {
            prop_assert_eq!(&s0.name, &s1.name);
            prop_assert_eq!(s0.t, s1.t);
            prop_assert_eq!(s0.moments.len(), s1.moments.len());
            for ((n0, m0, v0), (n1, m1, v1)) in s0.moments.iter().zip(&s1.moments) {
                prop_assert_eq!(n0, n1);
                prop_assert_eq!(tensor_bits(m0), tensor_bits(m1));
                prop_assert_eq!(tensor_bits(v0), tensor_bits(v1));
            }
        }
    }

    #[test]
    fn load_then_save_reproduces_exact_bytes(ck in any_checkpoint()) {
        // The strongest bitwise statement: deserialize → reserialize is the
        // identity on the file bytes, so nothing is lost or renormalized.
        let (a, b) = (tmp("reser_a.msgc2"), tmp("reser_b.msgc2"));
        ck.save(&a).unwrap();
        TrainCheckpoint::load(&a).unwrap().save(&b).unwrap();
        prop_assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn truncation_at_every_record_boundary_is_invalid_data(ck in any_checkpoint()) {
        let path = tmp("boundary_trunc.msgc2");
        ck.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let names = slot_names(&ck);
        for cut in record_boundaries(&bytes) {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = load_strict(&path, &names).unwrap_err();
            prop_assert_eq!(
                err.kind(),
                ErrorKind::InvalidData,
                "cut at boundary {}: {}", cut, err
            );
        }
    }

    #[test]
    fn single_byte_flips_are_always_rejected(
        ck in any_checkpoint(),
        pos_frac in 0u64..1000,
        flip in 1u64..256,
    ) {
        let path = tmp("byte_flip.msgc2");
        ck.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_frac as usize * bytes.len()) / 1000;
        bytes[pos] ^= flip as u8;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_strict(&path, &slot_names(&ck)).unwrap_err();
        prop_assert_eq!(
            err.kind(),
            ErrorKind::InvalidData,
            "flip {:#04x} at byte {} of {}: {}", flip, pos, bytes.len(), err
        );
    }
}

//! Integration contract of the training telemetry: the metrics stream is
//! byte-identical across thread counts (the registry snapshot included),
//! every emitted line validates against the documented schema, per-batch
//! loss decomposition reaches observers, a healthy run passes
//! `--strict-health`, and deterministic counters persist through
//! checkpoint/resume monotonically.

#![allow(clippy::expect_used)] // test helpers outside #[test] fns

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use meta_sgcl::{BatchStats, MetaSgcl, MetaSgclConfig, TrainStrategy};
use models::{NetConfig, TrainConfig};
use proptest::prelude::*;
use recdata::ItemId;
use telemetry::json::{self, Json};
use telemetry::schema;

/// The metric registry and enabled flag are process-global; every test
/// that turns telemetry on serializes here.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    match TELEMETRY_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn ring(users: usize, items: usize, len: usize) -> Vec<Vec<ItemId>> {
    (0..users)
        .map(|u| (0..len).map(|t| 1 + (u + t) % items).collect())
        .collect()
}

fn small_cfg(seed: u64, strategy: TrainStrategy) -> MetaSgclConfig {
    MetaSgclConfig {
        net: NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            seed,
            ..NetConfig::for_items(6)
        },
        alpha: 0.02,
        beta: 0.05,
        strategy,
        ..MetaSgclConfig::for_items(6)
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("msgc_telemetry_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Trains 2 epochs × 2 batches with the metrics stream on; returns the
/// metrics file path.
fn train_with_metrics(dir: &Path, seed: u64, threads: usize, cfg_extra: &TrainConfig) -> PathBuf {
    let metrics = dir.join(format!("metrics-t{threads}.jsonl"));
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(seed, TrainStrategy::MetaTwoStep));
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 10,
        shard_size: 4,
        threads,
        metrics_out: Some(metrics.to_string_lossy().into_owned()),
        save_every: cfg_extra.save_every,
        keep_last: cfg_extra.keep_last,
        ckpt_dir: cfg_extra.ckpt_dir.clone(),
        resume: cfg_extra.resume.clone(),
        max_steps: cfg_extra.max_steps,
        ..Default::default()
    };
    m.train_model(&train, &tc).expect("training failed");
    metrics
}

/// The final deterministic counter lines of a metrics stream.
fn counters_from(path: &Path) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path).expect("read metrics");
    let mut out = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let obj = json::parse(line).expect("parse metrics line");
        if obj.get("ev").and_then(Json::as_str) == Some("metric")
            && obj.get("kind").and_then(Json::as_str) == Some("counter")
        {
            let name = obj.get("name").and_then(Json::as_str).expect("name");
            let value = obj.get("value").and_then(Json::as_num).expect("value");
            out.push((name.to_string(), value as u64));
        }
    }
    out
}

proptest! {
    // Each case trains twice; keep the count small but the seeds varied.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The whole metrics stream — per-batch decomposition, per-epoch
    /// reductions, and the final deterministic registry snapshot — is
    /// byte-identical between a serial and a 4-thread run of the same
    /// seeded configuration.
    #[test]
    fn metrics_stream_is_bitwise_identical_across_thread_counts(seed in 1u64..1_000_000) {
        let _g = lock();
        let dir = fresh_dir(&format!("threads-{seed}"));
        let serial = train_with_metrics(&dir, seed, 1, &TrainConfig::default());
        let parallel = train_with_metrics(&dir, seed, 4, &TrainConfig::default());
        let a = std::fs::read(&serial).expect("read serial metrics");
        let b = std::fs::read(&parallel).expect("read parallel metrics");
        prop_assert_eq!(a, b, "metrics stream differs between threads=1 and threads=4");
    }
}

#[test]
fn metrics_stream_validates_and_carries_the_decomposition() {
    let _g = lock();
    let dir = fresh_dir("schema");
    let path = train_with_metrics(&dir, 7, 2, &TrainConfig::default());
    let text = std::fs::read_to_string(&path).expect("read metrics");
    let counts = schema::validate_stream(&text).expect("stream validates");
    let count = |kind: &str| {
        counts
            .iter()
            .find(|(k, _)| k == kind)
            .map_or(0, |(_, n)| *n)
    };
    assert_eq!(count("run"), 1);
    assert_eq!(count("batch"), 4, "2 epochs x 2 batches");
    assert_eq!(count("epoch"), 2);
    assert!(count("metric") >= 4, "final registry snapshot present");

    // Every batch line decomposes the double ELBO into finite terms.
    for line in text.lines().filter(|l| l.contains("\"ev\":\"batch\"")) {
        let obj = json::parse(line).expect("parse batch line");
        for key in ["recon", "kl_a", "kl_b", "info_nce", "total"] {
            let v = obj.get(key).and_then(Json::as_num).expect(key);
            assert!(v.is_finite(), "{key} is not finite: {v}");
        }
        assert!(
            obj.get("kl_a").and_then(Json::as_num).expect("kl_a") > 0.0,
            "healthy KL must be positive"
        );
    }
}

#[test]
fn observer_receives_per_batch_decomposition() {
    #[derive(Default)]
    struct Collect(Vec<BatchStats>);
    impl meta_sgcl::TrainObserver for Collect {
        fn on_batch_end(&mut self, stats: &BatchStats) {
            self.0.push(*stats);
        }
    }

    // Lock even without output files: a concurrently running telemetry
    // test would otherwise record this run's kernel calls too.
    let _g = lock();
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(3, TrainStrategy::MetaTwoStep));
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 10,
        shard_size: 4,
        ..Default::default()
    };
    let mut seen = Collect::default();
    m.train_model_observed(&train, &tc, &mut seen)
        .expect("train");
    assert_eq!(seen.0.len(), 4, "one BatchStats per batch");
    for (i, s) in seen.0.iter().enumerate() {
        assert_eq!(s.step, i as u64 + 1);
        assert!(s.total.is_finite() && s.recon > 0.0, "batch {i}: {s:?}");
        assert!(s.kl_a > 0.0 && s.kl_b > 0.0, "batch {i}: {s:?}");
        assert!(
            s.grad_norm.is_some(),
            "stage-1 gradient norm missing on batch {i}"
        );
        assert!(
            s.meta_update_norm.is_some(),
            "meta stage-2 update norm missing on batch {i}"
        );
    }
}

#[test]
fn healthy_run_passes_strict_health() {
    let _g = lock();
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(11, TrainStrategy::MetaTwoStep));
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 10,
        shard_size: 4,
        strict_health: true,
        ..Default::default()
    };
    m.train_model(&train, &tc)
        .expect("healthy run must pass --strict-health");
}

/// Counters restored from a checkpoint continue monotonically: an
/// interrupted-then-resumed run finishes with exactly the counter values
/// of an uninterrupted reference run.
#[test]
fn resume_restores_counters_and_stays_monotonic() {
    let _g = lock();
    let ref_dir = fresh_dir("resume-ref");
    let int_dir = fresh_dir("resume-int");
    let ckpt = |dir: &Path| TrainConfig {
        save_every: 1,
        ckpt_dir: Some(dir.to_string_lossy().into_owned()),
        ..Default::default()
    };

    let reference = train_with_metrics(&ref_dir, 5, 1, &ckpt(&ref_dir));
    let ref_counters = counters_from(&reference);
    assert!(
        ref_counters
            .iter()
            .any(|(n, v)| n == "autograd.backward.calls" && *v > 0),
        "reference run must count backward passes: {ref_counters:?}"
    );

    // Interrupted run: halts after step 2 of 4, checkpoints every step.
    let mut halted_cfg = ckpt(&int_dir);
    halted_cfg.max_steps = 2;
    train_with_metrics(&int_dir, 5, 1, &halted_cfg);

    // The checkpoint it left behind carries a non-empty telemetry record
    // whose counts are strictly below the reference's final values.
    let step2 = int_dir.join(meta_sgcl::checkpoint::checkpoint_file_name(2));
    let ck = meta_sgcl::TrainCheckpoint::load(&step2).expect("load checkpoint");
    assert!(
        !ck.telemetry.is_empty(),
        "checkpoint telemetry record missing"
    );
    for (name, value) in &ck.telemetry {
        if let Some((_, full)) = ref_counters.iter().find(|(n, _)| n == name) {
            assert!(
                value < full,
                "{name}: checkpointed {value} not below final {full}"
            );
        }
    }

    // Resumed run: fresh process state, restores counters, runs to the end.
    let mut resume_cfg = ckpt(&int_dir);
    resume_cfg.resume = Some(int_dir.to_string_lossy().into_owned());
    let resumed = train_with_metrics(&int_dir, 5, 1, &resume_cfg);
    let resumed_counters = counters_from(&resumed);
    assert_eq!(
        resumed_counters, ref_counters,
        "interrupted+resumed counters must equal the uninterrupted run's"
    );
}

//! Determinism contract of the data-parallel executor: thread count must
//! not change a single bit of the trained parameters, and shard-gradient
//! merging must reproduce the single-shard gradient.

use autograd::{GradientSet, Graph, Parameter};
use meta_sgcl::{MetaSgcl, MetaSgclConfig, TrainStrategy};
use models::{NetConfig, SequentialRecommender, TrainConfig};
use recdata::ItemId;
use tensor::Tensor;

fn ring(users: usize, items: usize, len: usize) -> Vec<Vec<ItemId>> {
    (0..users)
        .map(|u| (0..len).map(|t| 1 + (u + t) % items).collect())
        .collect()
}

fn small_cfg(items: usize, strategy: TrainStrategy) -> MetaSgclConfig {
    MetaSgclConfig {
        net: NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            ..NetConfig::for_items(items)
        },
        alpha: 0.02,
        beta: 0.05,
        strategy,
        ..MetaSgclConfig::for_items(items)
    }
}

/// Trains two epochs with the given thread count and returns every
/// parameter value.
fn train_params(strategy: TrainStrategy, threads: usize) -> Vec<Tensor> {
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(6, strategy));
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 10,
        shard_size: 4, // forces several shards per batch (10 -> 4+4+2)
        threads,
        ..Default::default()
    };
    m.fit(&train, &tc);
    m.all_parameters()
        .iter()
        .map(|p| p.borrow().value.clone())
        .collect()
}

#[test]
fn threads_do_not_change_trained_parameters_meta() {
    let serial = train_params(TrainStrategy::MetaTwoStep, 1);
    let parallel = train_params(TrainStrategy::MetaTwoStep, 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(
            a, b,
            "parameter {i} differs between threads=1 and threads=4"
        );
    }
}

#[test]
fn threads_do_not_change_trained_parameters_joint() {
    let serial = train_params(TrainStrategy::Joint, 1);
    let parallel = train_params(TrainStrategy::Joint, 4);
    for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(
            a, b,
            "parameter {i} differs between threads=1 and threads=4"
        );
    }
}

/// Merging per-shard gradient sets with weights `shard_len / batch_len`
/// must equal the gradient of the whole batch computed in one shard, when
/// the per-row losses are independent (no cross-row coupling).
#[test]
fn shard_merge_equals_single_shard_gradient() {
    // loss(shard) = mean over rows of w · x_row, so the batch gradient is
    // the size-weighted mean of shard gradients — exactly what
    // merge_scaled computes.
    let w = Parameter::shared("w", Tensor::from_vec(vec![0.5, -1.0, 2.0], vec![3, 1]));
    let rows: Vec<Tensor> = (0..6)
        .map(|r| Tensor::from_vec(vec![r as f32, 1.0 + r as f32, 2.0 - r as f32], vec![1, 3]))
        .collect();

    let shard_grad = |rows: &[Tensor]| {
        let g = Graph::new();
        let wv = g.param(&w);
        let mut loss: Option<autograd::Var> = None;
        for row in rows {
            let term = g.constant(row.clone()).matmul(&wv).sum_all();
            loss = Some(match loss {
                None => term,
                Some(acc) => acc.add(&term),
            });
        }
        let loss = loss.unwrap().scale(1.0 / rows.len() as f32);
        loss.backward_collect()
    };

    let whole = shard_grad(&rows);

    let mut merged = GradientSet::new();
    for (shard, len) in [(&rows[0..4], 4.0f32), (&rows[4..6], 2.0f32)] {
        merged.merge_scaled(&shard_grad(shard), len / 6.0);
    }

    let a = whole.get(&w).expect("whole-batch grad");
    let b = merged.get(&w).expect("merged grad");
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        assert!((x - y).abs() < 1e-5, "merged {y} != single-shard {x}");
    }
}

/// `backward_collect` must leave the shared gradient buffers untouched so
/// concurrent shard backward passes cannot race on them.
#[test]
fn backward_collect_does_not_touch_shared_state() {
    let p = Parameter::shared("p", Tensor::from_vec(vec![1.0, 2.0], vec![2]));
    let g = Graph::new();
    let loss = g.param(&p).sum_all();
    let set = g.backward_collect(&loss);
    assert_eq!(p.borrow().grad.data(), &[0.0, 0.0]);
    set.apply();
    assert_eq!(p.borrow().grad.data(), &[1.0, 1.0]);
}

//! Resume-determinism contract of MSGC2 training checkpoints: a run killed
//! mid-training and resumed from its last checkpoint must produce
//! checkpoints **byte-identical** to an uninterrupted run — across thread
//! counts (extending the threads=1-vs-4 determinism harness) and for both
//! training strategies.

#![allow(clippy::expect_used)] // test helpers outside #[test] fns

use std::path::{Path, PathBuf};

use meta_sgcl::checkpoint::{checkpoint_file_name, list_checkpoints};
use meta_sgcl::{MetaSgcl, MetaSgclConfig, TrainStrategy};
use models::{NetConfig, TrainConfig};
use recdata::ItemId;

fn ring(users: usize, items: usize, len: usize) -> Vec<Vec<ItemId>> {
    (0..users)
        .map(|u| (0..len).map(|t| 1 + (u + t) % items).collect())
        .collect()
}

fn small_cfg(strategy: TrainStrategy) -> MetaSgclConfig {
    MetaSgclConfig {
        net: NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            ..NetConfig::for_items(6)
        },
        alpha: 0.02,
        beta: 0.05,
        strategy,
        ..MetaSgclConfig::for_items(6)
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("msgc_resume_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Two epochs of 20 sequences in batches of 10 → 2 batches per epoch,
/// 4 optimizer steps total, checkpoint every step.
fn train_cfg(dir: &Path, threads: usize, max_steps: u64, resume: Option<&Path>) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 10,
        shard_size: 4,
        threads,
        save_every: 1,
        keep_last: 0,
        ckpt_dir: Some(dir.to_string_lossy().into_owned()),
        resume: resume.map(|p| p.to_string_lossy().into_owned()),
        max_steps,
        ..Default::default()
    }
}

fn run(
    strategy: TrainStrategy,
    dir: &Path,
    threads: usize,
    max_steps: u64,
    resume: Option<&Path>,
) -> MetaSgcl {
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(strategy));
    m.train_model(&train, &train_cfg(dir, threads, max_steps, resume))
        .expect("training failed");
    m
}

fn assert_kill_resume_identical(strategy: TrainStrategy, kill_at: u64, resume_threads: usize) {
    let tag = format!("{strategy:?}-{kill_at}-{resume_threads}");
    let ref_dir = fresh_dir(&format!("ref-{tag}"));
    let int_dir = fresh_dir(&format!("int-{tag}"));

    // Uninterrupted reference run (serial).
    let reference = run(strategy, &ref_dir, 1, 0, None);
    assert_eq!(
        list_checkpoints(&ref_dir).expect("list ref").len(),
        4,
        "2 epochs × 2 batches at save_every=1"
    );

    // "Killed" run: halts after `kill_at` steps, leaving its checkpoints.
    run(strategy, &int_dir, 1, kill_at, None);
    assert_eq!(
        list_checkpoints(&int_dir).expect("list int").len(),
        kill_at as usize
    );

    // Resume from the directory (newest checkpoint) with a fresh model,
    // possibly on a different thread count.
    let resumed = run(strategy, &int_dir, resume_threads, 0, Some(&int_dir));

    // Every checkpoint from the kill point on must match byte-for-byte.
    for step in kill_at..=4 {
        let name = checkpoint_file_name(step);
        let a = std::fs::read(ref_dir.join(&name)).expect("read ref ckpt");
        let b = std::fs::read(int_dir.join(&name)).expect("read int ckpt");
        assert_eq!(a, b, "checkpoint {name} differs after kill+resume ({tag})");
    }
    // And so must the in-memory parameters.
    for (p, q) in reference
        .all_parameters()
        .iter()
        .zip(resumed.all_parameters().iter())
    {
        assert_eq!(
            p.borrow().value,
            q.borrow().value,
            "parameter {} differs after kill+resume ({tag})",
            p.borrow().name
        );
    }
}

#[test]
fn kill_mid_epoch_and_resume_is_bitwise_identical_meta() {
    // kill_at=3 stops after batch 1 of epoch 1 — a mid-epoch kill.
    assert_kill_resume_identical(TrainStrategy::MetaTwoStep, 3, 1);
}

#[test]
fn kill_at_epoch_boundary_and_resume_is_bitwise_identical_meta() {
    // kill_at=2 stops exactly at the epoch 0/1 boundary.
    assert_kill_resume_identical(TrainStrategy::MetaTwoStep, 2, 1);
}

#[test]
fn kill_and_resume_is_bitwise_identical_joint() {
    assert_kill_resume_identical(TrainStrategy::Joint, 3, 1);
}

#[test]
fn resume_on_four_threads_matches_serial_reference() {
    // The PR-1 determinism contract extends through kill+resume: a run
    // interrupted serially and resumed on 4 threads still produces the
    // serial reference's bytes.
    assert_kill_resume_identical(TrainStrategy::MetaTwoStep, 3, 4);
}

#[test]
fn keep_last_retention_prunes_during_training() {
    let dir = fresh_dir("retention");
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(TrainStrategy::MetaTwoStep));
    let mut cfg = train_cfg(&dir, 1, 0, None);
    cfg.keep_last = 2;
    m.train_model(&train, &cfg).unwrap();
    let names: Vec<String> = list_checkpoints(&dir)
        .unwrap()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        names,
        vec![checkpoint_file_name(3), checkpoint_file_name(4)]
    );
}

#[test]
fn resume_rejects_strategy_mismatch() {
    let dir = fresh_dir("strategy-mismatch");
    run(TrainStrategy::MetaTwoStep, &dir, 1, 2, None);
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(TrainStrategy::Joint));
    let err = m
        .train_model(&train, &train_cfg(&dir, 1, 0, Some(&dir)))
        .unwrap_err();
    assert!(
        err.to_string().contains("strategy"),
        "unexpected error: {err}"
    );
}

#[test]
fn resume_rejects_schedule_mismatch() {
    let dir = fresh_dir("schedule-mismatch");
    run(TrainStrategy::MetaTwoStep, &dir, 1, 2, None);
    let train = ring(20, 6, 8);
    let mut cfg = small_cfg(TrainStrategy::MetaTwoStep);
    cfg.kl_warmup_steps += 1;
    let mut m = MetaSgcl::new(cfg);
    let err = m
        .train_model(&train, &train_cfg(&dir, 1, 0, Some(&dir)))
        .unwrap_err();
    assert!(
        err.to_string().contains("KL-annealing"),
        "unexpected error: {err}"
    );
}

#[test]
fn resume_rejects_corrupted_checkpoint() {
    let dir = fresh_dir("corrupt");
    run(TrainStrategy::MetaTwoStep, &dir, 1, 1, None);
    let path = dir.join(checkpoint_file_name(1));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(TrainStrategy::MetaTwoStep));
    let err = m
        .train_model(&train, &train_cfg(&dir, 1, 0, Some(&path)))
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

#[test]
fn observer_sees_resume_and_checkpoints() {
    #[derive(Default)]
    struct Spy {
        checkpoints: Vec<u64>,
        resumes: Vec<(usize, usize, u64)>,
    }
    impl meta_sgcl::TrainObserver for Spy {
        fn on_checkpoint(&mut self, path: &Path, step: u64) {
            assert!(path.exists());
            self.checkpoints.push(step);
        }
        fn on_resume(&mut self, _path: &Path, epoch: usize, batch: usize, step: u64) {
            self.resumes.push((epoch, batch, step));
        }
    }

    let dir = fresh_dir("observer");
    let train = ring(20, 6, 8);
    let mut m = MetaSgcl::new(small_cfg(TrainStrategy::MetaTwoStep));
    let mut spy = Spy::default();
    m.train_model_observed(&train, &train_cfg(&dir, 1, 3, None), &mut spy)
        .unwrap();
    assert_eq!(spy.checkpoints, vec![1, 2, 3]);
    assert!(spy.resumes.is_empty());

    let mut m2 = MetaSgcl::new(small_cfg(TrainStrategy::MetaTwoStep));
    let mut spy2 = Spy::default();
    m2.train_model_observed(&train, &train_cfg(&dir, 1, 0, Some(&dir)), &mut spy2)
        .unwrap();
    // Step 3 was batch 1 of epoch 1; resume continues there.
    assert_eq!(spy2.resumes, vec![(1, 1, 3)]);
    assert_eq!(spy2.checkpoints, vec![4]);
}

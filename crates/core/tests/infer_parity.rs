//! Frozen-forward parity gates for Meta-SGCL: padded scores vs
//! `score_sequence`, incremental state vs `score_left_aligned`, batched vs
//! single appends, and concurrent `&self` scoring.

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::Freeze;

fn model(decoder_layers: usize) -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 6,
            dim: 8,
            layers: 2,
            ..NetConfig::for_items(12)
        },
        decoder_layers,
        ..MetaSgclConfig::for_items(12)
    })
}

#[test]
fn padded_scores_match_score_sequence_bitwise() {
    for dec in [0, 1] {
        let m = model(dec);
        let f = m.freeze();
        for seq in [
            vec![1usize, 2, 3],
            vec![5],
            vec![4, 4, 4, 4, 4, 4, 4, 4, 4], // longer than max_len
            vec![9, 2, 7, 1, 12, 6],
        ] {
            assert_eq!(
                f.score_padded(&seq),
                m.score_sequence(&seq),
                "decoder_layers={dec} seq={seq:?}"
            );
        }
        assert_eq!(f.score_padded(&[]), m.score_sequence(&[]));
    }
}

#[test]
fn incremental_begin_matches_left_aligned_reference() {
    for dec in [0, 1] {
        let m = model(dec);
        let f = m.freeze();
        for seq in [vec![1usize, 2, 3], vec![8], vec![3, 9, 1, 7, 2, 11]] {
            let (state, scores) = f.begin_incremental(&seq);
            assert_eq!(scores, m.score_left_aligned(&seq), "decoder_layers={dec}");
            assert_eq!(state.len(), seq.len());
        }
    }
}

#[test]
fn incremental_appends_match_left_aligned_reference() {
    for dec in [0, 1] {
        let m = model(dec);
        let f = m.freeze();
        let history: Vec<usize> = vec![2, 9, 4, 7, 1, 6];
        let (mut state, _) = f.begin_incremental(&history[..2]);
        for t in 2..history.len() {
            let scores = f.append_incremental(&[history[t]], &mut [&mut state]);
            assert_eq!(
                scores[0],
                m.score_left_aligned(&history[..=t]),
                "decoder_layers={dec} len={}",
                t + 1
            );
        }
        assert_eq!(state.len(), history.len());
    }
}

#[test]
fn slide_on_overflow_re_begins_exactly() {
    let m = model(1);
    let f = m.freeze();
    let history: Vec<usize> = vec![2, 9, 4, 7, 1, 6, 3, 8, 5];
    let max_len = f.max_len();
    let (mut state, _) = f.begin_incremental(&history[..max_len]);
    assert_eq!(state.len(), max_len);
    // Full cache: slide by re-beginning from the last max_len items.
    let window = &history[history.len() - max_len..];
    let (state2, scores) = f.begin_incremental(window);
    assert_eq!(scores, m.score_left_aligned(&history));
    assert_eq!(state2.len(), max_len);
    let _ = &mut state;
}

#[test]
fn batched_append_matches_single_appends() {
    let m = model(1);
    let f = m.freeze();
    let (mut sa, _) = f.begin_incremental(&[1, 2, 3]);
    let (mut sb, _) = f.begin_incremental(&[4, 5]);
    let (mut sa2, _) = f.begin_incremental(&[1, 2, 3]);
    let (mut sb2, _) = f.begin_incremental(&[4, 5]);

    let ra = f.append_incremental(&[6], &mut [&mut sa]);
    let rb = f.append_incremental(&[7], &mut [&mut sb]);
    let both = f.append_incremental(&[6, 7], &mut [&mut sa2, &mut sb2]);

    assert_eq!(both[0], ra[0]);
    assert_eq!(both[1], rb[0]);
}

/// Satellite 1: `score_sequence` takes `&self`, so concurrent readers can
/// score the same model simultaneously and agree with the single-threaded
/// result.
#[test]
fn concurrent_readers_score_through_shared_ref() {
    let m = model(0);
    let want = m.score_sequence(&[1, 2, 3]);
    let results: Vec<Vec<f32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| m.score_sequence(&[1, 2, 3])))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        assert_eq!(r, want);
    }
}

//! Durable training state: full MSGC2 training checkpoints.
//!
//! A *training* checkpoint extends the parameter-only format with
//! everything the meta-optimized two-step schedule needs to resume
//! bitwise-identically after a crash:
//!
//! * model parameters (`REC_PARAMS`),
//! * one `REC_OPTIMIZER` record per Adam slot (`main`/`meta` for the
//!   two-step strategy, `all` for joint training): step counter `t` plus
//!   first/second moments keyed by parameter name,
//! * the epoch-level RNG's word state **as of the start of the epoch being
//!   trained** (`REC_RNG`) — replaying the epoch's shuffle and per-batch
//!   seed draws from it reconstructs the exact stream position,
//! * a `REC_PROGRESS` cursor: strategy tag, epoch index, batches of that
//!   epoch already applied, global optimizer step, and the KL-annealing
//!   configuration (the β cursor is the step counter itself).
//!
//! Files are written atomically (temp + fsync + rename, see [`nn::io`]) and
//! named `ckpt-<step, zero-padded>.msgc2`, so lexicographic order equals
//! step order and retention/pruning is a directory listing away.

use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};

use autograd::ParamRef;
use nn::io::{
    decode_named_tensors, encode_named_tensors, find_record, read_records, wire, CheckpointWriter,
    REC_OPTIMIZER, REC_PARAMS, REC_PROGRESS, REC_RNG, REC_TELEMETRY,
};
use optim::{Adam, AdamState};
use tensor::Tensor;

use crate::config::TrainStrategy;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Position of a training run when a checkpoint was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainProgress {
    /// Epoch index being trained.
    pub epoch: u64,
    /// Batches of that epoch fully applied (the next batch to run).
    pub batch: u64,
    /// Global optimizer steps taken (KL-annealing / LR-schedule cursor).
    pub step: u64,
}

/// One optimizer slot's serialized state.
#[derive(Debug, Clone)]
pub struct OptimizerSlot {
    /// Slot name: `"main"`, `"meta"`, or `"all"`.
    pub name: String,
    /// Adam step counter.
    pub t: u64,
    /// Per-parameter `(name, m, v)` moment estimates.
    pub moments: Vec<(String, Tensor, Tensor)>,
}

/// A fully decoded training checkpoint.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Model parameters by name.
    pub params: Vec<(String, Tensor)>,
    /// Optimizer slots present in the file.
    pub optimizers: Vec<OptimizerSlot>,
    /// Epoch-start RNG word state.
    pub rng_words: [u64; 4],
    /// Strategy tag the checkpoint was written under.
    pub strategy: String,
    /// Position cursor.
    pub progress: TrainProgress,
    /// KL-annealing β ceiling at save time (config validation on resume).
    pub beta_max: f32,
    /// KL-annealing warm-up steps at save time.
    pub kl_warmup_steps: u64,
    /// Deterministic telemetry counter values at save time, so a resumed
    /// run continues its counts monotonically. Empty when the run had
    /// telemetry off; the record is then omitted entirely, and readers
    /// that predate `REC_TELEMETRY` skip it when present.
    pub telemetry: Vec<(String, u64)>,
}

/// Wire tag for a strategy.
pub(crate) fn strategy_tag(s: TrainStrategy) -> &'static str {
    match s {
        TrainStrategy::Joint => "joint",
        TrainStrategy::MetaTwoStep => "meta-two-step",
    }
}

impl TrainCheckpoint {
    /// Serializes and atomically writes the checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = CheckpointWriter::new();
        w.record(REC_PARAMS, encode_named_tensors(&self.params));
        for slot in &self.optimizers {
            let mut buf = Vec::new();
            wire::put_str(&mut buf, &slot.name);
            wire::put_u64(&mut buf, slot.t);
            wire::put_u64(&mut buf, slot.moments.len() as u64);
            for (name, m, v) in &slot.moments {
                wire::put_str(&mut buf, name);
                wire::put_tensor(&mut buf, m);
                wire::put_tensor(&mut buf, v);
            }
            w.record(REC_OPTIMIZER, buf);
        }
        let mut buf = Vec::new();
        for word in self.rng_words {
            wire::put_u64(&mut buf, word);
        }
        w.record(REC_RNG, buf);
        let mut buf = Vec::new();
        wire::put_str(&mut buf, &self.strategy);
        wire::put_u64(&mut buf, self.progress.epoch);
        wire::put_u64(&mut buf, self.progress.batch);
        wire::put_u64(&mut buf, self.progress.step);
        wire::put_f32(&mut buf, self.beta_max);
        wire::put_u64(&mut buf, self.kl_warmup_steps);
        w.record(REC_PROGRESS, buf);
        if !self.telemetry.is_empty() {
            let mut buf = Vec::new();
            wire::put_u64(&mut buf, self.telemetry.len() as u64);
            for (name, value) in &self.telemetry {
                wire::put_str(&mut buf, name);
                wire::put_u64(&mut buf, *value);
            }
            w.record(REC_TELEMETRY, buf);
        }
        w.commit(path)
    }

    /// Reads and fully validates a checkpoint written by
    /// [`TrainCheckpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<TrainCheckpoint> {
        let records = read_records(path)?;
        let params = decode_named_tensors(find_record(&records, REC_PARAMS)?)?;

        let mut optimizers = Vec::new();
        for (kind, payload) in &records {
            if *kind != REC_OPTIMIZER {
                continue;
            }
            let mut c = wire::Cursor::new(payload);
            let name = c.take_str()?;
            let t = c.take_u64()?;
            let count = c.take_u64()? as usize;
            if count > payload.len() / 16 {
                return Err(bad(format!(
                    "optimizer slot {name}: moment count {count} impossible for payload"
                )));
            }
            let mut moments = Vec::with_capacity(count);
            for _ in 0..count {
                let pname = c.take_str()?;
                let m = c.take_tensor()?;
                let v = c.take_tensor()?;
                if m.dims() != v.dims() {
                    return Err(bad(format!(
                        "optimizer slot {name}: m/v shape mismatch for {pname}"
                    )));
                }
                moments.push((pname, m, v));
            }
            c.finish()?;
            optimizers.push(OptimizerSlot { name, t, moments });
        }

        let mut c = wire::Cursor::new(find_record(&records, REC_RNG)?);
        let rng_words = [c.take_u64()?, c.take_u64()?, c.take_u64()?, c.take_u64()?];
        c.finish()?;
        if rng_words == [0; 4] {
            return Err(bad("all-zero RNG state is invalid"));
        }

        let mut c = wire::Cursor::new(find_record(&records, REC_PROGRESS)?);
        let strategy = c.take_str()?;
        let progress = TrainProgress {
            epoch: c.take_u64()?,
            batch: c.take_u64()?,
            step: c.take_u64()?,
        };
        let beta_max = c.take_f32()?;
        let kl_warmup_steps = c.take_u64()?;
        c.finish()?;

        // Optional (newer writers only): telemetry counter values.
        let mut telemetry = Vec::new();
        for (kind, payload) in &records {
            if *kind != REC_TELEMETRY {
                continue;
            }
            let mut c = wire::Cursor::new(payload);
            let count = c.take_u64()? as usize;
            if count > payload.len() / 8 {
                return Err(bad(format!(
                    "telemetry record: counter count {count} impossible for payload"
                )));
            }
            for _ in 0..count {
                let name = c.take_str()?;
                let value = c.take_u64()?;
                telemetry.push((name, value));
            }
            c.finish()?;
        }

        Ok(TrainCheckpoint {
            params,
            optimizers,
            rng_words,
            strategy,
            progress,
            beta_max,
            kl_warmup_steps,
            telemetry,
        })
    }

    /// The slot named `name`, or `InvalidData`.
    pub fn slot(&self, name: &str) -> io::Result<&OptimizerSlot> {
        self.optimizers
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| bad(format!("checkpoint has no optimizer slot `{name}`")))
    }
}

/// Copies checkpointed tensors into `params`, matching by name with shape
/// validation. Every parameter must be present; extras in the file are
/// ignored.
pub fn apply_named_tensors(entries: &[(String, Tensor)], params: &[ParamRef]) -> io::Result<()> {
    let by_name: std::collections::HashMap<&str, &Tensor> =
        entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let mut pb = p.borrow_mut();
        let t = by_name
            .get(pb.name.as_str())
            .ok_or_else(|| bad(format!("parameter {} missing from checkpoint", pb.name)))?;
        if t.dims() != pb.value.dims() {
            return Err(bad(format!(
                "shape mismatch for {}: file {:?} vs model {:?}",
                pb.name,
                t.dims(),
                pb.value.dims()
            )));
        }
        pb.value = (*t).clone();
    }
    Ok(())
}

/// Snapshots one Adam into a named slot (moments keyed by parameter name,
/// in optimizer order).
pub fn export_slot(name: &str, opt: &Adam) -> OptimizerSlot {
    let state = opt.export_state();
    let names = opt.param_names();
    OptimizerSlot {
        name: name.to_string(),
        t: state.t,
        moments: names
            .into_iter()
            .zip(state.m)
            .zip(state.v)
            .map(|((n, m), v)| (n, m, v))
            .collect(),
    }
}

/// Restores a serialized slot into `opt`, re-keying moments by parameter
/// name so on-disk order need not match optimizer order.
pub fn import_slot(slot: &OptimizerSlot, opt: &mut Adam) -> io::Result<()> {
    let by_name: std::collections::HashMap<&str, (&Tensor, &Tensor)> = slot
        .moments
        .iter()
        .map(|(n, m, v)| (n.as_str(), (m, v)))
        .collect();
    let mut m = Vec::new();
    let mut v = Vec::new();
    for name in opt.param_names() {
        let (mi, vi) = by_name.get(name.as_str()).ok_or_else(|| {
            bad(format!(
                "optimizer slot `{}` missing moments for {name}",
                slot.name
            ))
        })?;
        m.push((*mi).clone());
        v.push((*vi).clone());
    }
    opt.import_state(AdamState { t: slot.t, m, v }).map_err(bad)
}

/// File name of the periodic checkpoint at `step` (zero-padded so
/// lexicographic order equals step order).
pub fn checkpoint_file_name(step: u64) -> String {
    format!("ckpt-{step:012}.msgc2")
}

fn is_checkpoint_name(name: &str) -> bool {
    name.strip_prefix("ckpt-")
        .and_then(|r| r.strip_suffix(".msgc2"))
        .is_some_and(|mid| !mid.is_empty() && mid.bytes().all(|b| b.is_ascii_digit()))
}

/// All periodic checkpoints in `dir`, sorted oldest → newest.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str().is_some_and(is_checkpoint_name) {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Newest periodic checkpoint in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<PathBuf>> {
    Ok(list_checkpoints(dir)?.pop())
}

/// Deletes all but the newest `keep_last` checkpoints in `dir`
/// (`keep_last == 0` keeps everything). Returns the deleted paths.
pub fn prune_checkpoints(dir: &Path, keep_last: usize) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    if keep_last == 0 {
        return Ok(removed);
    }
    let ckpts = list_checkpoints(dir)?;
    if ckpts.len() > keep_last {
        for path in &ckpts[..ckpts.len() - keep_last] {
            std::fs::remove_file(path)?;
            removed.push(path.clone());
        }
    }
    Ok(removed)
}

/// Resolves a `--resume` spec: a checkpoint file is used as-is, a directory
/// resolves to its newest checkpoint.
pub fn resolve_resume(spec: &Path) -> io::Result<PathBuf> {
    if spec.is_dir() {
        latest_checkpoint(spec)?.ok_or_else(|| {
            io::Error::new(
                ErrorKind::NotFound,
                format!("no ckpt-*.msgc2 checkpoints in {}", spec.display()),
            )
        })
    } else if spec.is_file() {
        Ok(spec.to_path_buf())
    } else {
        Err(io::Error::new(
            ErrorKind::NotFound,
            format!("resume path {} does not exist", spec.display()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("msgc_ckpt_test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            params: vec![
                ("w".into(), Tensor::from_vec(vec![1.0, 2.0], vec![2])),
                ("b".into(), Tensor::from_vec(vec![-0.5], vec![1])),
            ],
            optimizers: vec![OptimizerSlot {
                name: "main".into(),
                t: 7,
                moments: vec![(
                    "w".into(),
                    Tensor::from_vec(vec![0.1, 0.2], vec![2]),
                    Tensor::from_vec(vec![0.01, 0.02], vec![2]),
                )],
            }],
            rng_words: [1, 2, 3, 4],
            strategy: "meta-two-step".into(),
            progress: TrainProgress {
                epoch: 3,
                batch: 5,
                step: 41,
            },
            beta_max: 0.2,
            kl_warmup_steps: 100,
            telemetry: vec![
                ("autograd.backward.calls".into(), 82),
                ("tensor.gemm.calls".into(), 4100),
            ],
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join(checkpoint_file_name(41));
        let ck = sample();
        ck.save(&path).unwrap();
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back.rng_words, ck.rng_words);
        assert_eq!(back.strategy, ck.strategy);
        assert_eq!(back.progress, ck.progress);
        assert_eq!(back.beta_max, ck.beta_max);
        assert_eq!(back.kl_warmup_steps, ck.kl_warmup_steps);
        assert_eq!(back.params.len(), 2);
        assert_eq!(back.params[0].1.data(), &[1.0, 2.0]);
        let slot = back.slot("main").unwrap();
        assert_eq!(slot.t, 7);
        assert_eq!(slot.moments[0].1.data(), &[0.1, 0.2]);
        assert!(back.slot("meta").is_err());
        assert_eq!(back.telemetry, ck.telemetry);
    }

    #[test]
    fn telemetry_record_is_optional() {
        let dir = tmpdir("telem_opt");
        let path = dir.join("no_telem.msgc2");
        let mut ck = sample();
        ck.telemetry.clear();
        ck.save(&path).unwrap();
        let back = TrainCheckpoint::load(&path).unwrap();
        assert!(back.telemetry.is_empty());
        // A telemetry-free checkpoint is byte-identical to the pre-0x05
        // format: the record is omitted, not written empty.
        let bytes = std::fs::read(&path).unwrap();
        let with = dir.join("with_telem.msgc2");
        sample().save(&with).unwrap();
        assert_ne!(bytes, std::fs::read(&with).unwrap());
    }

    #[test]
    fn saving_twice_is_byte_identical() {
        let dir = tmpdir("det");
        let (a, b) = (dir.join("a.msgc2"), dir.join("b.msgc2"));
        sample().save(&a).unwrap();
        sample().save(&b).unwrap();
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = tmpdir("prune");
        for step in [10u64, 20, 30, 40] {
            sample().save(dir.join(checkpoint_file_name(step))).unwrap();
        }
        // A non-checkpoint file must never be touched.
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed.len(), 2);
        let left = list_checkpoints(&dir).unwrap();
        assert_eq!(
            left.iter()
                .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
                .collect::<Vec<_>>(),
            vec![checkpoint_file_name(30), checkpoint_file_name(40)]
        );
        assert!(dir.join("notes.txt").exists());
        assert!(prune_checkpoints(&dir, 0).unwrap().is_empty());
    }

    #[test]
    fn resolve_resume_picks_latest_in_dir() {
        let dir = tmpdir("resolve");
        assert!(resolve_resume(&dir).is_err(), "empty dir has no checkpoint");
        sample().save(dir.join(checkpoint_file_name(5))).unwrap();
        sample().save(dir.join(checkpoint_file_name(12))).unwrap();
        let got = resolve_resume(&dir).unwrap();
        assert!(got.ends_with(checkpoint_file_name(12)));
        let direct = resolve_resume(&dir.join(checkpoint_file_name(5))).unwrap();
        assert!(direct.ends_with(checkpoint_file_name(5)));
        assert!(resolve_resume(&dir.join("nope.msgc2")).is_err());
    }

    #[test]
    fn import_slot_rekeys_by_name() {
        let pw = Parameter::shared("w", Tensor::zeros(vec![2]));
        let pb = Parameter::shared("b", Tensor::zeros(vec![1]));
        let mut opt = Adam::new(vec![pw, pb], 0.1);
        // Moments listed in reverse order on disk.
        let slot = OptimizerSlot {
            name: "main".into(),
            t: 9,
            moments: vec![
                (
                    "b".into(),
                    Tensor::from_vec(vec![0.5], vec![1]),
                    Tensor::from_vec(vec![0.25], vec![1]),
                ),
                (
                    "w".into(),
                    Tensor::from_vec(vec![0.1, 0.2], vec![2]),
                    Tensor::from_vec(vec![0.01, 0.02], vec![2]),
                ),
            ],
        };
        import_slot(&slot, &mut opt).unwrap();
        assert_eq!(opt.steps(), 9);
        let exported = export_slot("main", &opt);
        assert_eq!(exported.moments[0].0, "w");
        assert_eq!(exported.moments[0].1.data(), &[0.1, 0.2]);

        // A slot missing a parameter is rejected.
        let partial = OptimizerSlot {
            name: "main".into(),
            t: 1,
            moments: slot.moments[..1].to_vec(),
        };
        assert!(import_slot(&partial, &mut opt).is_err());
    }
}

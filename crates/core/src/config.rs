//! Meta-SGCL configuration: loss weights, training strategy, ablations.

use models::{NetConfig, Similarity};

/// Which training schedule to use (the paper's Fig. 3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStrategy {
    /// Single optimizer over all parameters with the full objective.
    Joint,
    /// The paper's meta-optimized two-step schedule: stage 1 updates
    /// everything except `Enc_σ'`; stage 2 freezes the rest and updates
    /// `Enc_σ'` from the contrastive loss alone.
    MetaTwoStep,
}

/// How the second contrastive view `z'` is produced.
///
/// The paper's contribution is [`SecondView::MetaSigma`]; the alternatives
/// implement the prior art's hand-crafted strategies *inside* the same
/// framework, realising the conclusion's "exploring different view
/// generators" future-work direction and enabling a controlled comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondView {
    /// The learned meta variance encoder `Enc_σ'` (Eqs. 14–15).
    MetaSigma,
    /// A second dropout-perturbed encoder pass (DuoRec-style model
    /// augmentation).
    Dropout,
    /// Re-encode a crop/mask/reorder-augmented copy of the input
    /// (CL4SRec/ContrastVAE-style data augmentation).
    DataAugmentation,
}

/// Loss-term ablations (the paper's Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full model.
    Full,
    /// `-cl`: remove the contrastive term (α = 0).
    NoCl,
    /// `-kl`: remove the KL terms (β = 0).
    NoKl,
    /// `-clkl`: remove both — the paper notes this degenerates to SASRec.
    NoClKl,
}

/// Full Meta-SGCL hyper-parameter set.
#[derive(Debug, Clone)]
pub struct MetaSgclConfig {
    /// Backbone architecture.
    pub net: NetConfig,
    /// Contrastive-loss weight α (paper Fig. 4: best around 0.03–0.1;
    /// reproduction default 0.05).
    pub alpha: f32,
    /// KL weight β (paper: 0.2 on Toys, 0.3 on Clothing).
    pub beta: f32,
    /// InfoNCE temperature τ (paper Table V: best at 1.0 on Toys).
    pub tau: f32,
    /// Similarity function in the contrastive loss (paper Table VII: dot).
    pub similarity: Similarity,
    /// Training schedule.
    pub strategy: TrainStrategy,
    /// Loss ablation.
    pub ablation: Ablation,
    /// KL-annealing warm-up steps (0 disables annealing).
    pub kl_warmup_steps: u64,
    /// Learning rate of the stage-2 meta update (defaults to the main lr).
    pub meta_lr: Option<f32>,
    /// Second-view generator (default: the paper's learned `Enc_σ'`).
    pub second_view: SecondView,
    /// Depth of the Seq2Seq decoder Transformer.
    ///
    /// Per Eqs. 21–22 the reconstruction term is formalized as next-item
    /// recommendation scored directly from the latent (`ŷ = z·Mᵀ`), which
    /// corresponds to `0` (the decoder collapses to the tied-embedding
    /// softmax). Setting this `> 0` inserts an explicit Transformer decoder
    /// between `z` and the softmax (the architecture reading of Eq. 13);
    /// the ablation bench compares both.
    pub decoder_layers: usize,
}

impl MetaSgclConfig {
    /// Paper-shaped defaults for a catalog of `num_items`.
    pub fn for_items(num_items: usize) -> Self {
        MetaSgclConfig {
            net: NetConfig::for_items(num_items),
            alpha: 0.05,
            beta: 0.2,
            tau: 1.0,
            similarity: Similarity::Dot,
            strategy: TrainStrategy::MetaTwoStep,
            ablation: Ablation::Full,
            kl_warmup_steps: 100,
            meta_lr: None,
            second_view: SecondView::MetaSigma,
            decoder_layers: 0,
        }
    }

    /// Effective α after the ablation switch.
    pub fn effective_alpha(&self) -> f32 {
        match self.ablation {
            Ablation::Full | Ablation::NoKl => self.alpha,
            Ablation::NoCl | Ablation::NoClKl => 0.0,
        }
    }

    /// Effective β after the ablation switch.
    pub fn effective_beta(&self) -> f32 {
        match self.ablation {
            Ablation::Full | Ablation::NoCl => self.beta,
            Ablation::NoKl | Ablation::NoClKl => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_switches_weights() {
        let mut c = MetaSgclConfig::for_items(10);
        c.alpha = 0.1;
        c.beta = 0.2;
        c.ablation = Ablation::Full;
        assert_eq!((c.effective_alpha(), c.effective_beta()), (0.1, 0.2));
        c.ablation = Ablation::NoCl;
        assert_eq!((c.effective_alpha(), c.effective_beta()), (0.0, 0.2));
        c.ablation = Ablation::NoKl;
        assert_eq!((c.effective_alpha(), c.effective_beta()), (0.1, 0.0));
        c.ablation = Ablation::NoClKl;
        assert_eq!((c.effective_alpha(), c.effective_beta()), (0.0, 0.0));
    }
}

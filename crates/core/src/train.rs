//! Training: the double-ELBO objective (Eqs. 16, 23–28) and the two
//! schedules — joint learning and the meta-optimized two-step strategy.

use autograd::{GradientSet, Graph, Var};
use models::cl::info_nce_masked;
use models::sampled::{self, SoftmaxMode};
use models::vae::gaussian_kl;
use models::{SequentialRecommender, TrainConfig};
use optim::{apply_step, Adam, KlAnnealing};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use recdata::{encode_input_only, item_crop, item_mask, item_reorder, Batch, Batcher, ItemId};
use tensor::bug::OrBug;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use telemetry::{Field, SpanId, Tracer};

use crate::checkpoint::{self, strategy_tag, OptimizerSlot, TrainCheckpoint, TrainProgress};
use crate::config::{SecondView, TrainStrategy};
use crate::exec::{
    reduce_outcomes, BatchStats, Executor, NullObserver, ShardOutcome, TrainObserver,
};
use crate::model::MetaSgcl;
use crate::obs::RunTelemetry;

/// Loss components of one epoch (averaged over batches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Reconstruction loss `L_rs = L_rs1 + L_rs2` (Eq. 23).
    pub rec: f64,
    /// KL of the first latent view (`Enc_σ`, Eq. 24), unweighted.
    pub kl_a: f64,
    /// KL of the second latent view (`Enc_σ'`, Eq. 25), unweighted.
    pub kl_b: f64,
    /// Combined KL loss `L_kl = L_kl1 + L_kl2` (Eqs. 24–25), unweighted.
    pub kl: f64,
    /// Contrastive loss `L_cl` (Eq. 26), unweighted.
    pub cl: f64,
    /// Weighted total (Eq. 28).
    pub total: f64,
    /// Wall-clock time of the epoch in milliseconds.
    pub wall_ms: f64,
    /// Training throughput: sequences processed per second.
    pub seqs_per_sec: f64,
}

/// The one formatting of epoch statistics, shared by `msgc train`'s verbose
/// log and `msgc report`. Timing is appended only when wall-clock was
/// actually measured (finite and positive), so stats re-aggregated from a
/// metrics file — which carries no timing by the determinism contract —
/// print without it.
impl fmt::Display for EpochStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} rec {:.4} kl_a {:.4} kl_b {:.4} cl {:.4} total {:.4}",
            self.epoch, self.rec, self.kl_a, self.kl_b, self.cl, self.total
        )?;
        if self.wall_ms.is_finite() && self.wall_ms > 0.0 {
            write!(
                f,
                " ({:.0} ms, {:.0} seqs/s)",
                self.wall_ms, self.seqs_per_sec
            )?;
        }
        Ok(())
    }
}

/// Per-epoch loss history.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// The last epoch's stats, if any.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }
}

/// Scalar loss pieces of one batch forward.
pub(crate) struct BatchLosses {
    pub(crate) total: Var,
    rec: f64,
    kl_a: f64,
    kl_b: f64,
    cl: f64,
}

/// Norm limit used by the opt-in sanitizer (`TrainConfig.sanitize`):
/// generous enough for healthy training at reproduction scale, small
/// enough to catch divergence long before overflow.
const SANITIZE_NORM_LIMIT: f32 = 1e6;

/// Scans the shard's tape and collected gradients, aborting with per-op
/// blame on the first violation (the `TrainConfig.sanitize` contract).
fn sanitize_or_panic(stage: &str, g: &Graph, grads: &GradientSet) {
    let mut issues = autograd::numeric::scan_graph(g, SANITIZE_NORM_LIMIT);
    issues.extend(autograd::numeric::scan_gradients(
        grads,
        SANITIZE_NORM_LIMIT,
    ));
    if !issues.is_empty() {
        let lines: Vec<String> = issues.iter().take(8).map(|i| i.to_string()).collect();
        panic!(
            "numeric sanitizer: {} issue(s) in `{stage}` stage: {}",
            issues.len(),
            lines.join("; ")
        );
    }
}

impl MetaSgcl {
    /// Builds the full double-ELBO objective (Eq. 28) for a batch.
    ///
    /// Both views share the encoder features and the posterior mean; view 1
    /// samples with `Enc_σ`, view 2 (the generated augmentation) with
    /// `Enc_σ'`.
    pub(crate) fn batch_losses(
        &self,
        g: &Graph,
        batch: &Batch,
        beta: f32,
        softmax: &SoftmaxMode,
        rng: &mut StdRng,
    ) -> BatchLosses {
        let (b, n) = (batch.len(), batch.seq_len());
        let vocab = self.backbone.vocab();
        let targets = sampled::flat_targets(batch);
        let with_logits = !softmax.is_sampled();

        let features = self.encode(g, &batch.inputs, &batch.pad, rng, true);
        let v1 = self.view(
            g,
            &features,
            &batch.pad,
            false,
            false,
            with_logits,
            rng,
            true,
        );
        let v2 = self.second_view(g, &features, batch, with_logits, rng);

        // L_rs1 + L_rs2 (Eq. 23). Candidates (sampled mode) are drawn once
        // per shard, after both views consumed their dropout/noise draws,
        // and shared by the two reconstruction terms.
        let rec = match sampled::draw_candidates(&targets, vocab - 1, softmax, rng) {
            Some(cands) => {
                let table = self.backbone.item_table_var(g);
                let rec1 = sampled::sampled_ce(&v1.h, &table, &targets, &cands);
                let rec2 = sampled::sampled_ce(&v2.h, &table, &targets, &cands);
                rec1.add(&rec2)
            }
            None => {
                let rec1 = v1
                    .logits
                    .or_bug("full-softmax view logits")
                    .reshape(vec![b * n, vocab])
                    .cross_entropy_with_logits(&targets);
                let rec2 = v2
                    .logits
                    .or_bug("full-softmax view logits")
                    .reshape(vec![b * n, vocab])
                    .cross_entropy_with_logits(&targets);
                rec1.add(&rec2)
            }
        };

        // L_kl1 + L_kl2 (Eqs. 24–25) — same μ, different variances.
        let kl1 = gaussian_kl(&v1.mu, &v1.logvar);
        let kl2 = gaussian_kl(&v2.mu, &v2.logvar);
        let kl = kl1.add(&kl2);

        // L_cl (Eq. 26) between the two sequence summaries.
        let alpha = self.cfg.effective_alpha();
        // False negatives (same next item) are masked out of the InfoNCE
        // denominator so the CL term does not fight the recommendation task
        // on small catalogs.
        let cl = if b >= 2 {
            info_nce_masked(
                &v1.z_last,
                &v2.z_last,
                self.cfg.tau,
                self.cfg.similarity,
                &batch.last_target,
            )
        } else {
            g.constant(tensor::Tensor::scalar(0.0))
        };

        // Eq. 28 with the corrected KL sign (see crate docs). The two views
        // share μ, so we average their KLs — this keeps the effective β
        // directly comparable to single-view VAE baselines (VSAN).
        let mut total = rec.clone();
        if beta > 0.0 {
            total = total.add(&kl.scale(beta * 0.5));
        }
        if alpha > 0.0 && b >= 2 {
            total = total.add(&cl.scale(alpha));
        }
        BatchLosses {
            rec: rec.item() as f64,
            kl_a: kl1.item() as f64,
            kl_b: kl2.item() as f64,
            cl: cl.item() as f64,
            total,
        }
    }

    /// Builds the second view according to the configured generator.
    fn second_view(
        &self,
        g: &Graph,
        features: &Var,
        batch: &Batch,
        with_logits: bool,
        rng: &mut StdRng,
    ) -> crate::model::View {
        match self.cfg.second_view {
            SecondView::MetaSigma => {
                self.view(g, features, &batch.pad, true, false, with_logits, rng, true)
            }
            SecondView::Dropout => {
                // Model augmentation: a fresh dropout-perturbed encoder pass
                // feeding the primary (Enc_σ) posterior.
                let f2 = self.encode(g, &batch.inputs, &batch.pad, rng, true);
                self.view(g, &f2, &batch.pad, false, false, with_logits, rng, true)
            }
            SecondView::DataAugmentation => {
                // Hand-crafted augmentation of the raw inputs. The mask
                // token is out of vocabulary here, so masked items fall
                // back to the padding id.
                let max_len = self.cfg.net.max_len;
                let n_items = self.cfg.net.num_items;
                let mut inputs = Vec::with_capacity(batch.len());
                let mut pads = Vec::with_capacity(batch.len());
                for input in &batch.inputs {
                    let raw: Vec<ItemId> = input.iter().copied().filter(|&x| x != 0).collect();
                    let aug: Vec<ItemId> = match rng.gen_range(0..3) {
                        0 => item_crop(&raw, 0.8, rng),
                        1 => item_mask(&raw, 0.2, n_items, rng)
                            .into_iter()
                            .map(|x| if x > n_items { 0 } else { x })
                            .collect(),
                        _ => item_reorder(&raw, 0.3, rng),
                    };
                    let (inp, pd) = encode_input_only(&aug, max_len);
                    inputs.push(inp);
                    pads.push(pd);
                }
                let f2 = self.encode(g, &inputs, &pads, rng, true);
                self.view(g, &f2, &pads, false, false, with_logits, rng, true)
            }
        }
    }

    /// Stage-2 objective: the contrastive loss alone, recomputed from a
    /// fresh forward pass with everything but `Enc_σ'` frozen.
    pub(crate) fn meta_stage_loss(&self, g: &Graph, batch: &Batch, rng: &mut StdRng) -> Var {
        // Contrastive-only objective: neither view's catalog logits are
        // read, so neither is materialized (`with_logits = false`).
        let features = self.encode(g, &batch.inputs, &batch.pad, rng, true);
        let v1 = self.view(g, &features, &batch.pad, false, false, false, rng, true);
        let v2 = self.second_view(g, &features, batch, false, rng);
        info_nce_masked(
            &v1.z_last,
            &v2.z_last,
            self.cfg.tau,
            self.cfg.similarity,
            &batch.last_target,
        )
    }

    /// Stage-1 / joint shard work: full double-ELBO forward + backward on a
    /// private tape, gradients collected locally. With `trace`, emits
    /// `forward` and `backward` spans under the given parent, tagged with
    /// the shard index (span ids are allocated in completion order, which
    /// is thread-dependent — timing data lives in the trace stream only).
    #[allow(clippy::too_many_arguments)]
    fn full_loss_shard(
        &self,
        shard: &Batch,
        beta: f32,
        softmax: &SoftmaxMode,
        seed: u64,
        sanitize: bool,
        shard_idx: usize,
        trace: Option<(&Tracer, SpanId)>,
    ) -> ShardOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Graph::new();
        let fwd = trace.map(|(t, parent)| t.begin("forward", parent));
        let losses = self.batch_losses(&g, shard, beta, softmax, &mut rng);
        if let (Some((t, _)), Some(span)) = (trace, fwd) {
            t.end(span, &[("shard", Field::U64(shard_idx as u64))]);
        }
        let bwd = trace.map(|(t, parent)| t.begin("backward", parent));
        let grads = losses.total.backward_collect();
        if let (Some((t, _)), Some(span)) = (trace, bwd) {
            t.end(span, &[("shard", Field::U64(shard_idx as u64))]);
        }
        if sanitize {
            sanitize_or_panic("full", &g, &grads);
        }
        ShardOutcome {
            grads,
            rec: losses.rec,
            kl_a: losses.kl_a,
            kl_b: losses.kl_b,
            cl: losses.cl,
            total: losses.total.item() as f64,
            len: shard.len(),
        }
    }

    /// Stage-2 shard work: contrastive loss only, with everything but
    /// `Enc_σ'` frozen by the caller. Returns `None` for shards with fewer
    /// than two rows (no in-shard negatives exist).
    fn contrastive_shard(
        &self,
        shard: &Batch,
        seed: u64,
        sanitize: bool,
        shard_idx: usize,
        trace: Option<(&Tracer, SpanId)>,
    ) -> Option<(GradientSet, usize)> {
        if shard.len() < 2 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Graph::new();
        let fwd = trace.map(|(t, parent)| t.begin("forward", parent));
        let loss = self.meta_stage_loss(&g, shard, &mut rng);
        if let (Some((t, _)), Some(span)) = (trace, fwd) {
            t.end(span, &[("shard", Field::U64(shard_idx as u64))]);
        }
        let bwd = trace.map(|(t, parent)| t.begin("backward", parent));
        let grads = loss.backward_collect();
        if let (Some((t, _)), Some(span)) = (trace, bwd) {
            t.end(span, &[("shard", Field::U64(shard_idx as u64))]);
        }
        if sanitize {
            sanitize_or_panic("meta", &g, &grads);
        }
        Some((grads, shard.len()))
    }

    /// Fans the full-loss stage over the shards and reduces to one merged
    /// gradient set plus shard-weighted loss statistics.
    #[allow(clippy::too_many_arguments)]
    fn full_loss_step(
        &self,
        exec: &Executor,
        shards: &[Batch],
        beta: f32,
        softmax: &SoftmaxMode,
        batch_seed: u64,
        sanitize: bool,
        trace: Option<(&Tracer, SpanId)>,
    ) -> (GradientSet, BatchStats) {
        let outcomes = exec.map_shards(shards, |i, shard| {
            self.full_loss_shard(
                shard,
                beta,
                softmax,
                Executor::shard_seed(batch_seed, 1, i as u64),
                sanitize,
                i,
                trace,
            )
        });
        reduce_outcomes(&outcomes)
    }

    /// Fans the contrastive stage over the shards; gradients of eligible
    /// shards (≥ 2 rows) are mean-reduced with weights renormalized over the
    /// eligible rows. `None` when no shard has two rows.
    fn contrastive_step(
        &self,
        exec: &Executor,
        shards: &[Batch],
        batch_seed: u64,
        sanitize: bool,
        trace: Option<(&Tracer, SpanId)>,
    ) -> Option<GradientSet> {
        let collected = exec.map_shards(shards, |i, shard| {
            self.contrastive_shard(
                shard,
                Executor::shard_seed(batch_seed, 2, i as u64),
                sanitize,
                i,
                trace,
            )
        });
        let eligible: usize = collected.iter().flatten().map(|(_, len)| len).sum();
        if eligible == 0 {
            return None;
        }
        let mut merged = GradientSet::new();
        for (grads, len) in collected.iter().flatten() {
            merged.merge_scaled(grads, *len as f32 / eligible as f32);
        }
        Some(merged)
    }

    /// Trains with the configured strategy, recording per-epoch losses in
    /// [`MetaSgcl::history`].
    ///
    /// Fails only on checkpoint I/O (a bad `resume` file, an unwritable
    /// `ckpt_dir`); training itself is infallible.
    pub fn train_model(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) -> io::Result<()> {
        self.train_model_observed(train, cfg, &mut NullObserver)
    }

    /// Builds the full training state for a periodic checkpoint: parameters,
    /// the optimizer slots of the active strategy, the epoch-start RNG
    /// words, and the position cursor.
    fn build_checkpoint(
        &self,
        progress: TrainProgress,
        rng_words: [u64; 4],
        slots: Vec<OptimizerSlot>,
        beta_max: f32,
        telemetry: Vec<(String, u64)>,
    ) -> TrainCheckpoint {
        let params = self
            .all_parameters()
            .iter()
            .map(|p| {
                let pb = p.borrow();
                (pb.name.clone(), pb.value.clone())
            })
            .collect();
        TrainCheckpoint {
            params,
            optimizers: slots,
            rng_words,
            strategy: strategy_tag(self.cfg.strategy).to_string(),
            progress,
            beta_max,
            kl_warmup_steps: self.cfg.kl_warmup_steps,
            telemetry,
        }
    }

    /// [`MetaSgcl::train_model`] with an observer receiving per-epoch
    /// statistics (loss components, wall-clock, throughput), checkpoint
    /// commits, and resume events as they are produced.
    ///
    /// # Durability and resume
    ///
    /// With `cfg.save_every > 0`, a full [`TrainCheckpoint`] is committed
    /// atomically to `cfg.ckpt_dir` every `save_every` optimizer steps and
    /// old checkpoints beyond `cfg.keep_last` are pruned. With
    /// `cfg.resume`, training restarts from the exact epoch/batch/RNG
    /// position of the checkpoint; a resumed run takes the same parameter
    /// trajectory — and writes byte-identical checkpoints — as a run that
    /// was never interrupted. The loss history of the partially re-run
    /// epoch covers only its post-resume batches.
    pub fn train_model_observed(
        &mut self,
        train: &[Vec<ItemId>],
        cfg: &TrainConfig,
        observer: &mut dyn TrainObserver,
    ) -> io::Result<()> {
        let exec = Executor::from_config(cfg);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.cfg.net.max_len, cfg.batch_size);
        let main_params = self.main_parameters();
        let meta_params = self.meta_parameters();
        let mut opt_main = Adam::new(main_params.clone(), cfg.lr);
        let mut opt_meta = Adam::new(meta_params.clone(), self.cfg.meta_lr.unwrap_or(cfg.lr));
        // Joint training updates σ' from the full loss with one optimizer.
        let all_params = self.all_parameters();
        let mut opt_all = Adam::new(all_params.clone(), cfg.lr);

        let anneal = if self.cfg.kl_warmup_steps > 0 {
            KlAnnealing::new(self.cfg.effective_beta(), self.cfg.kl_warmup_steps)
        } else {
            KlAnnealing::constant(self.cfg.effective_beta())
        };
        let mut step = 0u64;
        self.history.epochs.clear();
        let mut telem = RunTelemetry::from_config(cfg, strategy_tag(self.cfg.strategy))?;

        let ckpt_dir: Option<PathBuf> = if cfg.save_every > 0 {
            let dir = cfg.ckpt_dir.as_deref().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "save_every > 0 requires ckpt_dir",
                )
            })?;
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir)?;
            Some(dir)
        } else {
            None
        };

        let mut start_epoch = 0usize;
        let mut resume_skip = 0usize;
        if let Some(spec) = &cfg.resume {
            let path = checkpoint::resolve_resume(Path::new(spec))?;
            let ck = TrainCheckpoint::load(&path)?;
            let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
            if ck.strategy != strategy_tag(self.cfg.strategy) {
                return Err(invalid(format!(
                    "checkpoint was written by strategy `{}`, current strategy is `{}`",
                    ck.strategy,
                    strategy_tag(self.cfg.strategy)
                )));
            }
            // The β cursor is the step counter; a different annealing config
            // would silently break the resume-determinism guarantee.
            if ck.beta_max.to_bits() != anneal.beta_max().to_bits()
                || ck.kl_warmup_steps != self.cfg.kl_warmup_steps
            {
                return Err(invalid(format!(
                    "KL-annealing mismatch: checkpoint β_max={}, warmup={} vs config β_max={}, warmup={}",
                    ck.beta_max,
                    ck.kl_warmup_steps,
                    anneal.beta_max(),
                    self.cfg.kl_warmup_steps
                )));
            }
            checkpoint::apply_named_tensors(&ck.params, &self.all_parameters())?;
            match self.cfg.strategy {
                TrainStrategy::MetaTwoStep => {
                    checkpoint::import_slot(ck.slot("main")?, &mut opt_main)?;
                    checkpoint::import_slot(ck.slot("meta")?, &mut opt_meta)?;
                }
                TrainStrategy::Joint => {
                    checkpoint::import_slot(ck.slot("all")?, &mut opt_all)?;
                }
            }
            rng = StdRng::from_state_words(ck.rng_words)
                .ok_or_else(|| invalid("all-zero RNG state in checkpoint".into()))?;
            start_epoch = usize::try_from(ck.progress.epoch)
                .map_err(|_| invalid("epoch cursor overflows usize".into()))?;
            resume_skip = usize::try_from(ck.progress.batch)
                .map_err(|_| invalid("batch cursor overflows usize".into()))?;
            step = ck.progress.step;
            telem.on_resume(&path, start_epoch, resume_skip, step, &ck.telemetry);
            observer.on_resume(&path, start_epoch, resume_skip, step);
        }

        let mut halted = false;
        for epoch in start_epoch..cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let epoch_span = telem.span("epoch", SpanId::ROOT);
            let epoch_sid = RunTelemetry::span_id(&epoch_span);
            // Snapshot the stream at the epoch boundary: a checkpoint inside
            // this epoch stores these words, and resume replays the shuffle
            // and the per-batch seed draws from them.
            let epoch_words = rng.state_words();
            let mut sums = BatchStats::default();
            let mut batches = 0usize;
            let mut seqs = 0usize;
            let skip = if epoch == start_epoch { resume_skip } else { 0 };
            let epoch_batches = batcher.epoch(&mut rng);
            for (bi, batch) in epoch_batches.iter().enumerate() {
                let beta = anneal.beta(step);
                // One seed per batch; each shard derives its own stream from
                // it, so the arithmetic is independent of the thread count.
                // Skipped (already-applied) batches still consume their seed
                // so the resumed stream stays aligned.
                let batch_seed: u64 = rng.gen();
                if bi < skip {
                    continue;
                }
                let batch_span = telem.span("batch", epoch_sid);
                let batch_sid = RunTelemetry::span_id(&batch_span);
                let shards = batch.shard(exec.shard_size());
                let mut stats = match self.cfg.strategy {
                    TrainStrategy::Joint => {
                        let (grads, mut stats) = self.full_loss_step(
                            &exec,
                            &shards,
                            beta,
                            &cfg.softmax,
                            batch_seed,
                            cfg.sanitize,
                            telem.trace_ctx(batch_sid),
                        );
                        let opt_span = telem.span("opt_step", batch_sid);
                        let applied = apply_step(&mut opt_all, &all_params, &grads, cfg.grad_clip);
                        telem.end_span(opt_span, &[]);
                        stats.grad_norm = applied.grad_norm.map(f64::from);
                        stats
                    }
                    TrainStrategy::MetaTwoStep => {
                        // Stage 1: full loss, σ' frozen.
                        self.set_meta_trainable(false);
                        let stage1 = telem.span("stage1", batch_sid);
                        let stage1_sid = RunTelemetry::span_id(&stage1);
                        let (grads, mut stats) = self.full_loss_step(
                            &exec,
                            &shards,
                            beta,
                            &cfg.softmax,
                            batch_seed,
                            cfg.sanitize,
                            telem.trace_ctx(stage1_sid),
                        );
                        let opt_span = telem.span("opt_step", stage1_sid);
                        let applied =
                            apply_step(&mut opt_main, &main_params, &grads, cfg.grad_clip);
                        telem.end_span(opt_span, &[]);
                        telem.end_span(stage1, &[]);
                        stats.grad_norm = applied.grad_norm.map(f64::from);
                        self.set_meta_trainable(true);
                        // Stage 2: re-encode with the just-updated encoder,
                        // freeze it, and adapt Enc_σ' to the contrastive
                        // objective (Eq. 26).
                        self.set_main_trainable(false);
                        let stage2 = telem.span("stage2", batch_sid);
                        let stage2_sid = RunTelemetry::span_id(&stage2);
                        if let Some(grads) = self.contrastive_step(
                            &exec,
                            &shards,
                            batch_seed,
                            cfg.sanitize,
                            telem.trace_ctx(stage2_sid),
                        ) {
                            let opt_span = telem.span("opt_step", stage2_sid);
                            let applied =
                                apply_step(&mut opt_meta, &meta_params, &grads, cfg.grad_clip);
                            telem.end_span(opt_span, &[]);
                            stats.meta_update_norm = applied.update_norm;
                        }
                        telem.end_span(stage2, &[]);
                        self.set_main_trainable(true);
                        stats
                    }
                };
                step += 1;
                batches += 1;
                seqs += batch.len();
                stats.epoch = epoch as u64;
                stats.batch = bi as u64;
                stats.step = step;
                stats.beta = f64::from(beta);
                sums.recon += stats.recon;
                sums.kl_a += stats.kl_a;
                sums.kl_b += stats.kl_b;
                sums.info_nce += stats.info_nce;
                sums.total += stats.total;
                for warning in telem.on_batch(&stats) {
                    observer.on_health(&warning);
                }
                observer.on_batch_end(&stats);
                telem.end_span(
                    batch_span,
                    &[
                        ("epoch", Field::U64(epoch as u64)),
                        ("batch", Field::U64(bi as u64)),
                    ],
                );
                if let Some(dir) = ckpt_dir.as_deref() {
                    if step.is_multiple_of(cfg.save_every) {
                        let slots = match self.cfg.strategy {
                            TrainStrategy::MetaTwoStep => vec![
                                checkpoint::export_slot("main", &opt_main),
                                checkpoint::export_slot("meta", &opt_meta),
                            ],
                            TrainStrategy::Joint => {
                                vec![checkpoint::export_slot("all", &opt_all)]
                            }
                        };
                        let progress = TrainProgress {
                            epoch: epoch as u64,
                            batch: (bi + 1) as u64,
                            step,
                        };
                        let ck = self.build_checkpoint(
                            progress,
                            epoch_words,
                            slots,
                            anneal.beta_max(),
                            telem.checkpoint_counters(),
                        );
                        let path = dir.join(checkpoint::checkpoint_file_name(step));
                        ck.save(&path)?;
                        checkpoint::prune_checkpoints(dir, cfg.keep_last)?;
                        telem.on_checkpoint(&path, step);
                        observer.on_checkpoint(&path, step);
                    }
                }
                if cfg.max_steps > 0 && step >= cfg.max_steps {
                    halted = true;
                    break;
                }
            }
            if halted {
                // A partial epoch cut short by `max_steps` is not recorded.
                telem.end_span(epoch_span, &[("epoch", Field::U64(epoch as u64))]);
                break;
            }
            let denom = batches.max(1) as f64;
            let wall_ms = epoch_start.elapsed().as_secs_f64() * 1e3;
            let stats = EpochStats {
                epoch,
                rec: sums.recon / denom,
                kl_a: sums.kl_a / denom,
                kl_b: sums.kl_b / denom,
                kl: (sums.kl_a + sums.kl_b) / denom,
                cl: sums.info_nce / denom,
                total: sums.total / denom,
                wall_ms,
                seqs_per_sec: seqs as f64 / (wall_ms / 1e3).max(1e-9),
            };
            if cfg.verbose {
                println!("[Meta-SGCL/{:?}] {stats}", self.cfg.strategy);
            }
            telem.on_epoch(&stats, batches);
            telem.end_span(epoch_span, &[("epoch", Field::U64(epoch as u64))]);
            self.history.epochs.push(stats);
            observer.on_epoch_end(&stats);
        }
        telem.finish()
    }
}

impl SequentialRecommender for MetaSgcl {
    fn name(&self) -> String {
        match self.cfg.strategy {
            TrainStrategy::MetaTwoStep => "Meta-SGCL".into(),
            TrainStrategy::Joint => "SGCL-Joint".into(),
        }
    }

    fn num_items(&self) -> usize {
        self.cfg.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        self.train_model(train, cfg)
            .or_bug("training checkpoint I/O failed");
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        self.score_sequence(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, MetaSgclConfig};
    use models::NetConfig;
    use optim::Optimizer;
    use tensor::Tensor;

    fn ring(users: usize, items: usize, len: usize) -> Vec<Vec<ItemId>> {
        (0..users)
            .map(|u| (0..len).map(|t| 1 + (u + t) % items).collect())
            .collect()
    }

    fn cfg_small(items: usize) -> MetaSgclConfig {
        MetaSgclConfig {
            net: NetConfig {
                max_len: 8,
                dim: 16,
                layers: 1,
                dropout: 0.0,
                ..NetConfig::for_items(items)
            },
            alpha: 0.02,
            beta: 0.05,
            kl_warmup_steps: 20,
            ..MetaSgclConfig::for_items(items)
        }
    }

    #[test]
    fn meta_two_step_learns_transitions() {
        let train = ring(20, 6, 8);
        let mut m = MetaSgcl::new(cfg_small(6));
        let tc = TrainConfig {
            epochs: 60,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &tc);
        let s = m.score(0, &[2, 3, 4]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores {s:?}");
        assert_eq!(m.history().epochs.len(), 60);
    }

    #[test]
    fn joint_strategy_also_learns() {
        let train = ring(20, 6, 8);
        let mut cfg = cfg_small(6);
        cfg.strategy = TrainStrategy::Joint;
        let mut m = MetaSgcl::new(cfg);
        let tc = TrainConfig {
            epochs: 60,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &tc);
        let s = m.score(0, &[2, 3, 4]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores {s:?}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let train = ring(16, 5, 8);
        let mut m = MetaSgcl::new(cfg_small(5));
        m.fit(
            &train,
            &TrainConfig {
                epochs: 20,
                batch_size: 8,
                ..Default::default()
            },
        );
        let h = &m.history().epochs;
        let first = h[..3].iter().map(|e| e.rec).sum::<f64>() / 3.0;
        let last = h[h.len() - 3..].iter().map(|e| e.rec).sum::<f64>() / 3.0;
        assert!(
            last < first,
            "rec loss should fall: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn meta_stage_only_updates_sigma_prime() {
        let train = ring(8, 5, 6);
        let m = MetaSgcl::new(cfg_small(5));
        // Snapshot all parameters, run *only* the meta stage manually.
        let main_before: Vec<Tensor> = m
            .main_parameters()
            .iter()
            .map(|p| p.borrow().value.clone())
            .collect();
        let meta_before: Vec<Tensor> = m
            .meta_parameters()
            .iter()
            .map(|p| p.borrow().value.clone())
            .collect();

        let mut rng = StdRng::seed_from_u64(0);
        let batcher = Batcher::new(train, 8, 8);
        let batch = batcher.epoch(&mut rng).remove(0);
        let meta_params = m.meta_parameters();
        let mut opt = Adam::new(meta_params.clone(), 1e-2);
        m.set_main_trainable(false);
        let g = Graph::new();
        let loss = m.meta_stage_loss(&g, &batch, &mut rng);
        loss.backward();
        opt.step();
        m.set_main_trainable(true);

        for (p, before) in m.main_parameters().iter().zip(main_before.iter()) {
            assert_eq!(
                &p.borrow().value,
                before,
                "main param {} moved",
                p.borrow().name
            );
        }
        let mut any_moved = false;
        for (p, before) in m.meta_parameters().iter().zip(meta_before.iter()) {
            if &p.borrow().value != before {
                any_moved = true;
            }
        }
        assert!(any_moved, "Enc_σ' should move in the meta stage");
    }

    #[test]
    fn ablations_run_and_record_expected_loss_terms() {
        let train = ring(8, 5, 6);
        for (ablation, expect_cl, expect_kl) in [
            (Ablation::Full, true, true),
            (Ablation::NoCl, false, true),
            (Ablation::NoKl, true, false),
            (Ablation::NoClKl, false, false),
        ] {
            let mut cfg = cfg_small(5);
            cfg.ablation = ablation;
            cfg.kl_warmup_steps = 0;
            let mut m = MetaSgcl::new(cfg);
            m.fit(
                &train,
                &TrainConfig {
                    epochs: 2,
                    batch_size: 8,
                    ..Default::default()
                },
            );
            let last = *m.history().last().expect("history");
            // rec is always present.
            assert!(last.rec > 0.0);
            // The weighted total reflects the switches.
            let with_cl = last.total > last.rec + 1e-9;
            match (expect_cl, expect_kl) {
                (false, false) => assert!(
                    (last.total - last.rec).abs() < 1e-6,
                    "-clkl total must equal rec"
                ),
                _ => assert!(with_cl || expect_kl, "total should include extra terms"),
            }
        }
    }
}

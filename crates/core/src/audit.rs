//! Static-audit hooks for Meta-SGCL: the two-stage freeze contracts and
//! the traced training graphs the graph auditor (`crates/analysis`)
//! verifies against them.
//!
//! Meta-SGCL is the only model in the zoo with more than one stage:
//!
//! | stage  | loss                         | must reach        | must freeze |
//! |--------|------------------------------|-------------------|-------------|
//! | `full` | double ELBO (Eq. 28)         | every parameter   | —           |
//! | `meta` | contrastive `L_cl` (Eq. 26)  | `Enc_σ'` only     | all others  |
//!
//! The `meta` trace runs the *same* code path as training stage 2
//! ([`MetaSgcl`]'s `meta_stage_loss` with the main modules frozen), so the
//! auditor's gradient-flow pass reproduces the
//! `meta_stage_only_updates_sigma_prime` invariant statically.

use autograd::Graph;
use models::audit::{audit_batch, Auditable, ParityCheck, StageContract, StageTrace};
use models::backbone::TransformerBackbone;
use models::cl::info_nce_masked;
use models::vae::standard_normal_like;
use models::SequentialRecommender;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::ItemId;

use crate::model::MetaSgcl;

impl Auditable for MetaSgcl {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![
            StageContract::full(self.all_parameters()),
            StageContract {
                stage: "meta".into(),
                reached: self.meta_parameters(),
                frozen: self.main_parameters(),
            },
        ]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.cfg.net.max_len, seed);
        let g = Graph::new();
        let loss = match stage {
            "full" => {
                let beta = self.cfg.effective_beta().max(0.05);
                self.batch_losses(&g, &batch, beta, &models::SoftmaxMode::Full, &mut rng)
                    .total
            }
            "meta" => {
                // Exactly training stage 2: freeze everything but Enc_σ',
                // record the contrastive graph, then restore. The tape
                // captures requires-grad at entry time, so restoring the
                // flags afterwards does not alter the recorded graph.
                self.set_main_trainable(false);
                let loss = self.meta_stage_loss(&g, &batch, &mut rng);
                self.set_main_trainable(true);
                loss
            }
            other => panic!("Meta-SGCL has stages `full` and `meta`, not `{other}`"),
        };
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }

    fn frozen_parity(&self, seqs: &[Vec<ItemId>]) -> Option<ParityCheck> {
        use nn::Freeze;
        let seq = seqs.first()?;
        let (g, _last) = self.score_graph(seq);
        Some(ParityCheck {
            path: "score_padded".into(),
            declared: self.freeze().declared_score_trace(),
            actual: g.op_trace(),
        })
    }
}

impl MetaSgcl {
    /// Fault-injection hook: the meta-stage trace *without* freezing the
    /// main modules — a deliberate freeze-contract violation (the auditor
    /// must flag every main parameter as wrongly reached).
    #[doc(hidden)]
    pub fn audit_trace_meta_unfrozen(&self, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.cfg.net.max_len, seed);
        let g = Graph::new();
        let loss = self.meta_stage_loss(&g, &batch, &mut rng);
        StageTrace {
            stage: "meta".into(),
            graph: g,
            loss,
        }
    }

    /// Fault-injection hook: the meta-stage trace with the `Enc_σ'` output
    /// *detached* from the tape, so gradient can never reach it (the
    /// auditor must classify `Enc_σ'` as dead).
    #[doc(hidden)]
    pub fn audit_trace_meta_detached(&self, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        self.set_main_trainable(false);
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.cfg.net.max_len, seed);
        let g = Graph::new();
        let features = self.encode(&g, &batch.inputs, &batch.pad, &mut rng, true);
        let v1 = self.view(
            &g, &features, &batch.pad, false, false, false, &mut rng, true,
        );
        // Deliberately broken second view (Eq. 15): σ' is computed but
        // detached, mirroring a forgotten stop-gradient bug.
        let mu = self.enc_mu.forward(&g, &features);
        let logvar = self
            .enc_logvar_prime
            .forward(&g, &features)
            .clamp(-8.0, 8.0)
            .detach();
        let sigma = logvar.scale(0.5).exp();
        let eps = standard_normal_like(&mu.dims(), &mut rng);
        let z2 = mu.add(&sigma.mul_const(&eps));
        let z2_last = TransformerBackbone::last_hidden(&z2);
        let loss = info_nce_masked(
            &v1.z_last,
            &z2_last,
            self.cfg.tau,
            self.cfg.similarity,
            &batch.last_target,
        );
        self.set_main_trainable(true);
        StageTrace {
            stage: "meta".into(),
            graph: g,
            loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetaSgclConfig;
    use models::audit::audit_sequences;
    use models::NetConfig;

    fn small() -> MetaSgcl {
        MetaSgcl::new(MetaSgclConfig {
            net: NetConfig {
                max_len: 6,
                dim: 8,
                layers: 1,
                ..NetConfig::for_items(8)
            },
            ..MetaSgclConfig::for_items(8)
        })
    }

    #[test]
    fn contracts_declare_both_stages() {
        let m = small();
        let contracts = m.audit_contracts();
        assert_eq!(contracts.len(), 2);
        assert_eq!(contracts[0].stage, "full");
        assert!(contracts[0].frozen.is_empty());
        assert_eq!(contracts[1].stage, "meta");
        assert_eq!(contracts[1].reached.len(), 2); // Enc_σ' weight + bias
        assert_eq!(contracts[1].frozen.len(), m.main_parameters().len());
    }

    #[test]
    fn meta_trace_restores_trainable_flags() {
        let mut m = small();
        let seqs = audit_sequences(8, 4, 6);
        let trace = m.trace_stage("meta", &seqs, 7);
        assert_eq!(trace.stage, "meta");
        assert!(trace.loss.dims().is_empty() || trace.loss.value().numel() == 1);
        assert!(m.main_parameters().iter().all(|p| p.borrow().trainable));
    }

    #[test]
    fn fault_traces_build() {
        let m = small();
        let seqs = audit_sequences(8, 4, 6);
        let t1 = m.audit_trace_meta_unfrozen(&seqs, 3);
        assert_eq!(t1.stage, "meta");
        let t2 = m.audit_trace_meta_detached(&seqs, 3);
        assert_eq!(t2.stage, "meta");
        assert!(m.main_parameters().iter().all(|p| p.borrow().trainable));
    }
}

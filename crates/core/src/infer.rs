//! Tape-free frozen inference for Meta-SGCL.
//!
//! [`FrozenMetaSgcl`] is a weight snapshot of a trained [`MetaSgcl`]: plain
//! contiguous tensors, no autograd graph, no parameter locks in the hot
//! loop. Deterministic eval uses `z = μ`, so only the backbone, `Enc_μ`,
//! and the optional decoder are snapshotted — the variance heads never
//! influence served scores.
//!
//! Two scoring paths, both gated bitwise against autograd references:
//!
//! * [`FrozenMetaSgcl::score_padded`] mirrors
//!   [`MetaSgcl::score_sequence`] (right-anchored padded window) and must
//!   agree with it `==` — this is the offline-parity contract served by
//!   default.
//! * [`FrozenMetaSgcl::begin_incremental`] /
//!   [`append_incremental`](FrozenMetaSgcl::append_incremental) keep a
//!   per-user K/V cache under left-aligned semantics (reference:
//!   [`MetaSgcl::score_left_aligned`]); appending one interaction is a
//!   single-row attention step per layer instead of a full re-encode. When
//!   a cache reaches `max_len` the caller re-begins from the last
//!   `max_len` items (a slide, counted as one re-encode).

use models::{BackboneState, FrozenTransformerBackbone, TransformerBackbone};
use nn::{
    causal_mask, EncoderKv, Freeze, FrozenLinear, FrozenTransformerEncoder, InferModule, Quantize,
};
use recdata::{encode_input_only, ItemId};
use tensor::bug::OrBug;
use tensor::{QuantMode, Tensor};

use crate::model::MetaSgcl;

/// Frozen Meta-SGCL inference model.
pub struct FrozenMetaSgcl {
    backbone: FrozenTransformerBackbone,
    enc_mu: FrozenLinear,
    decoder: Option<FrozenTransformerEncoder>,
    num_items: usize,
    max_len: usize,
}

/// Incremental per-user state: backbone K/V cache plus (when the model has
/// an explicit decoder) the decoder's own K/V cache over the latent
/// sequence.
pub struct State {
    bb: BackboneState,
    dec: Option<EncoderKv>,
}

impl State {
    /// Number of interactions absorbed into the cache.
    pub fn len(&self) -> usize {
        self.bb.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.bb.is_empty()
    }
}

impl FrozenMetaSgcl {
    /// Catalog size (excluding padding index 0).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Maximum window length; incremental caches slide past this.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    fn last_scores(&self, h_last: &Tensor) -> Vec<f32> {
        let logits = self.backbone.scores(h_last);
        logits.row(0)[..self.num_items + 1].to_vec()
    }

    /// Declares the op sequence of the autograd reference for
    /// [`FrozenMetaSgcl::score_padded`] ([`MetaSgcl::score_sequence`]):
    /// backbone forward, `Enc_μ`, optional decoder, tied-table scores,
    /// final last-position slice. Entries marked autograd-only are values
    /// the training-path `view` materialises but deterministic serving
    /// provably never reads.
    pub fn declared_score_trace(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        self.backbone.forward_padded_trace(&mut out);
        self.enc_mu.op_trace(&mut out);
        // autograd-only: `view` always evaluates the Enc_σ logvar head
        // (bias + clamp) even with deterministic z = μ; its output feeds
        // only the KL/contrastive terms, never the served scores.
        out.extend(["matmul", "add", "clamp"]);
        if let Some(dec) = &self.decoder {
            dec.op_trace(true, true, &mut out);
        }
        // Per-position logits over the full window (the frozen path
        // projects only the last row — GEMM rows are independent chains).
        FrozenTransformerBackbone::scores_trace(&mut out);
        // autograd-only: `view` extracts z_last for the contrastive heads.
        out.extend(["slice_axis", "reshape"]);
        // Final slice of the last position's logits out of [1, n, V].
        FrozenTransformerBackbone::last_hidden_trace(&mut out);
        out
    }

    /// The padded forward up to the last-position hidden state `[1, d]` —
    /// the query side of the tied-table projection. `seq` must be
    /// non-empty.
    fn padded_last_hidden(&self, seq: &[ItemId]) -> Tensor {
        let (input, pad) = encode_input_only(seq, self.max_len);
        let features = self
            .backbone
            .forward_padded(std::slice::from_ref(&input), std::slice::from_ref(&pad));
        let mu = self.enc_mu.forward(&features);
        let h = match &self.decoder {
            Some(dec) => {
                let mask = self.backbone.attention_mask(std::slice::from_ref(&pad));
                let timeline = TransformerBackbone::timeline_mask(std::slice::from_ref(&pad));
                dec.forward(&mu, Some(&mask), Some(&timeline))
            }
            None => mu,
        };
        FrozenTransformerBackbone::last_hidden(&h)
    }

    /// Catalog scores mirroring [`MetaSgcl::score_sequence`] bitwise:
    /// right-anchored padded window, deterministic `z = μ`.
    ///
    /// Only the final position is projected against the catalog — GEMM
    /// rows are independent accumulation chains, so this equals the last
    /// row of the training path's all-position projection.
    pub fn score_padded(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        self.last_scores(&self.padded_last_hidden(seq))
    }

    /// Query vector for maximum-inner-product retrieval: the same
    /// last-position hidden state [`score_padded`](Self::score_padded)
    /// projects against the tied item table, as a plain `d`-vector.
    /// `None` on an empty history (cold start has no hidden state).
    pub fn query_embedding(&self, seq: &[ItemId]) -> Option<Vec<f32>> {
        if seq.is_empty() {
            return None;
        }
        Some(self.padded_last_hidden(seq).row(0).to_vec())
    }

    /// Dense f32 copy of the tied item-embedding table
    /// (`[num_items + 1, d]`, row 0 = padding) — the corpus side of the
    /// inner product, e.g. for building an ANN index.
    pub fn item_embeddings(&self) -> Tensor {
        self.backbone.item_table_f32()
    }

    /// Encodes a window (at most `max_len` items, left-aligned) into a
    /// fresh incremental state and returns the catalog scores. Bitwise
    /// equal to [`MetaSgcl::score_left_aligned`] on the same window.
    pub fn begin_incremental(&self, window: &[ItemId]) -> (State, Vec<f32>) {
        assert!(
            !window.is_empty() && window.len() <= self.max_len,
            "window must hold 1..=max_len items"
        );
        let (bb, h) = self.backbone.begin_incremental(window);
        let mu = self.enc_mu.forward(&h);
        let (dec_state, last) = match &self.decoder {
            Some(dec) => {
                let mut kv = EncoderKv::new(dec.n_layers(), dec.heads());
                let dh = dec.encode_collect(&mu, Some(&causal_mask(window.len())), &mut kv);
                (Some(kv), FrozenTransformerBackbone::last_hidden(&dh))
            }
            None => (None, FrozenTransformerBackbone::last_hidden(&mu)),
        };
        let scores = self.last_scores(&last);
        (State { bb, dec: dec_state }, scores)
    }

    /// Appends one interaction per user in a single batch and returns each
    /// user's catalog scores. Every per-row op is an independent
    /// accumulation chain, so batching users is bitwise-identical to
    /// appending them one at a time.
    ///
    /// Panics if any state is full (`len() == max_len`) — the caller
    /// slides by re-beginning from the last `max_len` items of the
    /// history.
    pub fn append_incremental(&self, items: &[ItemId], states: &mut [&mut State]) -> Vec<Vec<f32>> {
        assert_eq!(items.len(), states.len(), "one item per state");
        let h = {
            let mut bb: Vec<&mut BackboneState> = states.iter_mut().map(|s| &mut s.bb).collect();
            self.backbone.append_incremental(items, &mut bb)
        };
        let mu = self.enc_mu.forward(&h);
        let hfinal = match &self.decoder {
            Some(dec) => {
                let mut kvs: Vec<&mut EncoderKv> = states
                    .iter_mut()
                    .map(|s| s.dec.as_mut().or_bug("decoder state present"))
                    .collect();
                dec.append_batch(&mu, &mut kvs)
            }
            None => mu,
        };
        let logits = self.backbone.scores(&hfinal);
        (0..states.len())
            .map(|i| logits.row(i)[..self.num_items + 1].to_vec())
            .collect()
    }
}

impl InferModule for FrozenMetaSgcl {
    fn num_weights(&self) -> usize {
        self.backbone.num_weights()
            + self.enc_mu.num_weights()
            + self.decoder.as_ref().map_or(0, InferModule::num_weights)
    }

    fn weight_bytes(&self) -> usize {
        self.backbone.weight_bytes()
            + self.enc_mu.weight_bytes()
            + self.decoder.as_ref().map_or(0, InferModule::weight_bytes)
    }
}

impl Quantize for FrozenMetaSgcl {
    fn quantize(&mut self, mode: QuantMode) {
        self.backbone.quantize(mode);
        self.enc_mu.quantize(mode);
        if let Some(dec) = &mut self.decoder {
            dec.quantize(mode);
        }
    }
}

impl Freeze for MetaSgcl {
    type Frozen = FrozenMetaSgcl;

    fn freeze(&self) -> FrozenMetaSgcl {
        FrozenMetaSgcl {
            backbone: self.backbone.freeze(),
            enc_mu: self.enc_mu.freeze(),
            decoder: self.decoder.as_ref().map(Freeze::freeze),
            num_items: self.cfg.net.num_items,
            max_len: self.cfg.net.max_len,
        }
    }
}

//! Run-scoped telemetry plumbing for the training loop.
//!
//! [`RunTelemetry`] owns everything `--metrics-out` / `--trace-out` /
//! `--strict-health` need for one training run: the metrics JSONL writer,
//! the optional [`Tracer`], and the [`HealthMonitor`]. The training loop
//! calls into it at run start, per batch, per epoch, and at checkpoint /
//! resume boundaries; with no outputs configured every call degenerates to
//! a handful of float comparisons (the health detectors always run, so
//! `--strict-health` works without a metrics file).
//!
//! # Determinism contract of the two streams
//!
//! The **metrics** stream contains only thread-count-invariant data: the
//! per-batch/per-epoch loss decomposition (reduced in fixed shard order),
//! health events derived from it, checkpoint/resume markers, and the
//! deterministic (`det = true`) slice of the metric registry. Epoch events
//! deliberately exclude wall-clock and throughput, and the stream's `run`
//! header records `threads` as `0` ("invariant by contract"): the file is
//! **byte-identical** between `--threads 1` and `--threads N` runs of the
//! same configuration. The **trace** stream is where timing lives — spans,
//! wall-clock histograms, pool hit rates, and the real worker count.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use models::TrainConfig;
use telemetry::trace::{json_escape, json_f64};
use telemetry::{
    ActiveSpan, BatchHealth, Field, HealthConfig, HealthMonitor, HealthWarning, MetricValue,
    SpanId, Tracer,
};

use crate::exec::BatchStats;
use crate::train::EpochStats;

/// Version stamped into every `run` event.
const SCHEMA_VERSION: u64 = 1;

/// The `run` header line shared by both streams (see module docs for why
/// the metrics stream reports `threads = 0`).
fn run_line(strategy: &str, threads: usize, shard_size: usize, seed: u64) -> String {
    format!(
        "{{\"ev\":\"run\",\"schema\":{SCHEMA_VERSION},\"strategy\":\"{}\",\"threads\":{threads},\
         \"shard_size\":{shard_size},\"seed\":{seed}}}",
        json_escape(strategy)
    )
}

/// JSON value for an optional float: `null` when absent or non-finite.
fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json_f64)
}

/// All telemetry state of one training run.
pub(crate) struct RunTelemetry {
    metrics: Option<BufWriter<File>>,
    tracer: Option<Tracer>,
    health: HealthMonitor,
    strict: bool,
}

impl RunTelemetry {
    /// Opens the configured output streams, resets and enables the global
    /// metric registry when any stream is requested, and writes the `run`
    /// headers.
    pub(crate) fn from_config(cfg: &TrainConfig, strategy: &str) -> io::Result<RunTelemetry> {
        let active = cfg.metrics_out.is_some() || cfg.trace_out.is_some();
        if active {
            // Reset before enabling so per-run snapshots are not polluted
            // by earlier work in the same process (tests, warm-up passes).
            telemetry::metrics::reset();
            telemetry::set_enabled(true);
        }
        let mut metrics = match &cfg.metrics_out {
            Some(path) => Some(BufWriter::new(File::create(path)?)),
            None => None,
        };
        if let Some(w) = metrics.as_mut() {
            let line = run_line(strategy, 0, cfg.shard_size, cfg.seed);
            let _ = writeln!(w, "{line}");
        }
        let tracer = match &cfg.trace_out {
            Some(path) => {
                let t = Tracer::to_file(path)?;
                t.write_line(&run_line(strategy, cfg.threads, cfg.shard_size, cfg.seed));
                Some(t)
            }
            None => None,
        };
        Ok(RunTelemetry {
            metrics,
            tracer,
            health: HealthMonitor::new(HealthConfig::default()),
            strict: cfg.strict_health,
        })
    }

    /// `(tracer, parent)` context for shard closures, when tracing.
    pub(crate) fn trace_ctx(&self, parent: SpanId) -> Option<(&Tracer, SpanId)> {
        self.tracer.as_ref().map(|t| (t, parent))
    }

    /// Starts a span, or does nothing without a tracer.
    pub(crate) fn span(&self, name: &'static str, parent: SpanId) -> Option<ActiveSpan> {
        self.tracer.as_ref().map(|t| t.begin(name, parent))
    }

    /// Ends a span started by [`RunTelemetry::span`].
    pub(crate) fn end_span(&self, span: Option<ActiveSpan>, fields: &[(&str, Field<'_>)]) {
        if let (Some(t), Some(s)) = (self.tracer.as_ref(), span) {
            t.end(s, fields);
        }
    }

    /// The id of an optional span ([`SpanId::ROOT`] when absent).
    pub(crate) fn span_id(span: &Option<ActiveSpan>) -> SpanId {
        span.as_ref().map_or(SpanId::ROOT, |s| s.id)
    }

    fn metrics_line(&mut self, line: &str) {
        if let Some(w) = self.metrics.as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Records one finished batch: emits the `batch` event, feeds the
    /// health detectors, and emits any `health` events. Returns the newly
    /// fired warnings so the caller can forward them to its observer.
    pub(crate) fn on_batch(&mut self, s: &BatchStats) -> Vec<HealthWarning> {
        if self.metrics.is_some() {
            let line = format!(
                "{{\"ev\":\"batch\",\"epoch\":{},\"batch\":{},\"step\":{},\"beta\":{},\
                 \"recon\":{},\"kl_a\":{},\"kl_b\":{},\"info_nce\":{},\"total\":{},\
                 \"grad_norm\":{},\"meta_update_norm\":{}}}",
                s.epoch,
                s.batch,
                s.step,
                json_f64(s.beta),
                json_f64(s.recon),
                json_f64(s.kl_a),
                json_f64(s.kl_b),
                json_f64(s.info_nce),
                json_f64(s.total),
                json_opt_f64(s.grad_norm),
                json_opt_f64(s.meta_update_norm),
            );
            self.metrics_line(&line);
        }
        let warnings = self.health.observe(&BatchHealth {
            epoch: s.epoch as usize,
            batch: s.batch as usize,
            step: s.step,
            kl_a: s.kl_a,
            kl_b: s.kl_b,
            total: s.total,
            meta_update_norm: s.meta_update_norm,
        });
        for w in &warnings {
            eprintln!("{w}");
            let line = format!(
                "{{\"ev\":\"health\",\"detector\":\"{}\",\"epoch\":{},\"batch\":{},\
                 \"step\":{},\"value\":{},\"message\":\"{}\"}}",
                w.detector.wire_name(),
                w.epoch,
                w.batch,
                w.step,
                json_f64(w.value),
                json_escape(&w.message),
            );
            self.metrics_line(&line);
            if let Some(t) = self.tracer.as_ref() {
                t.event(
                    "health",
                    &[
                        ("detector", Field::Str(w.detector.wire_name())),
                        ("epoch", Field::U64(w.epoch as u64)),
                        ("batch", Field::U64(w.batch as u64)),
                        ("step", Field::U64(w.step)),
                        ("value", Field::F64(w.value)),
                        ("message", Field::Str(&w.message)),
                    ],
                );
            }
        }
        warnings
    }

    /// Emits the `epoch` event (loss decomposition only — wall-clock and
    /// throughput stay out of the metrics stream by the determinism
    /// contract; the epoch *span* in the trace stream carries the timing).
    pub(crate) fn on_epoch(&mut self, s: &EpochStats, batches: usize) {
        if self.metrics.is_some() {
            let line = format!(
                "{{\"ev\":\"epoch\",\"epoch\":{},\"batches\":{batches},\"recon\":{},\
                 \"kl_a\":{},\"kl_b\":{},\"info_nce\":{},\"total\":{}}}",
                s.epoch,
                json_f64(s.rec),
                json_f64(s.kl_a),
                json_f64(s.kl_b),
                json_f64(s.cl),
                json_f64(s.total),
            );
            self.metrics_line(&line);
        }
    }

    /// Emits `checkpoint` markers to both streams.
    pub(crate) fn on_checkpoint(&mut self, path: &Path, step: u64) {
        let p = path.display().to_string();
        if self.metrics.is_some() {
            let line = format!(
                "{{\"ev\":\"checkpoint\",\"step\":{step},\"path\":\"{}\"}}",
                json_escape(&p)
            );
            self.metrics_line(&line);
        }
        if let Some(t) = self.tracer.as_ref() {
            t.event(
                "checkpoint",
                &[("step", Field::U64(step)), ("path", Field::Str(&p))],
            );
        }
    }

    /// Emits `resume` markers to both streams and restores deterministic
    /// counters from the checkpoint so counts continue monotonically.
    pub(crate) fn on_resume(
        &mut self,
        path: &Path,
        epoch: usize,
        batch: usize,
        step: u64,
        counters: &[(String, u64)],
    ) {
        if telemetry::enabled() {
            telemetry::metrics::restore_counters(counters);
        }
        let p = path.display().to_string();
        if self.metrics.is_some() {
            let line = format!(
                "{{\"ev\":\"resume\",\"epoch\":{epoch},\"batch\":{batch},\"step\":{step},\
                 \"path\":\"{}\"}}",
                json_escape(&p)
            );
            self.metrics_line(&line);
        }
        if let Some(t) = self.tracer.as_ref() {
            t.event(
                "resume",
                &[
                    ("epoch", Field::U64(epoch as u64)),
                    ("batch", Field::U64(batch as u64)),
                    ("step", Field::U64(step)),
                    ("path", Field::Str(&p)),
                ],
            );
        }
    }

    /// Deterministic counter values to persist in a training checkpoint
    /// (empty when telemetry is off, which suppresses the record).
    pub(crate) fn checkpoint_counters(&self) -> Vec<(String, u64)> {
        if self.metrics.is_none() && self.tracer.is_none() {
            return Vec::new();
        }
        telemetry::metrics::snapshot_deterministic()
            .into_iter()
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) => Some((m.name.to_string(), v)),
                _ => None,
            })
            .collect()
    }

    /// Final snapshots and stream flush; fails when `--strict-health` is on
    /// and any detector fired during the run.
    pub(crate) fn finish(&mut self) -> io::Result<()> {
        if self.metrics.is_some() {
            for m in telemetry::metrics::snapshot_deterministic() {
                let line = m.to_jsonl();
                self.metrics_line(&line);
            }
        }
        if let Some(t) = self.tracer.as_ref() {
            for m in telemetry::metrics::snapshot() {
                t.write_line(&m.to_jsonl());
            }
            t.flush();
        }
        if let Some(w) = self.metrics.as_mut() {
            w.flush()?;
        }
        if self.strict && !self.health.fired().is_empty() {
            let names: Vec<&str> = self.health.fired().iter().map(|d| d.wire_name()).collect();
            return Err(io::Error::other(format!(
                "strict-health: detector(s) fired during training: {}",
                names.join(", ")
            )));
        }
        Ok(())
    }
}

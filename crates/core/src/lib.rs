//! **Meta-SGCL** — Meta-optimized Seq2Seq Generator and Contrastive
//! Learning for sequential recommendation (Hao et al., ICDE 2024).
//!
//! The model is a Transformer sequential encoder whose final features
//! parameterize *two* Gaussian posteriors over the same mean:
//!
//! * `Enc_μ`, `Enc_σ` — the primary posterior (Eq. 11), reparameterized to
//!   `z = μ + σ ⊙ ε` (Eq. 12);
//! * `Enc_σ'` — the *meta* variance encoder (Eq. 14) generating the second
//!   view `z' = μ + σ' ⊙ ε'` (Eq. 15). The second view is therefore a
//!   *generated* augmentation that preserves the sequence semantics, in
//!   contrast to crop/mask/reorder (data) or dropout (model) augmentation.
//!
//! A Transformer decoder (same architecture as the encoder, Eq. 13)
//! reconstructs the next-item distribution from each latent. Training
//! maximizes the **double ELBO** (Eq. 16): two reconstruction terms, two KL
//! terms, and a mutual-information term `I(z, z')` estimated by InfoNCE
//! (Eqs. 20, 26), combined per Eq. 28:
//!
//! ```text
//! L = L_rs + α·L_cl + β·L_kl
//! ```
//!
//! (The paper's Eq. 28 prints `−β·L_kl`; since its Eq. 16 *subtracts* the
//! KL from the lower bound, minimizing the loss requires *adding* the KL —
//! we implement the standard β-VAE sign and note the typo here.)
//!
//! The **meta-optimized two-step** schedule (Section IV-E-2) alternates:
//!
//! 1. update everything except `Enc_σ'` with the full objective;
//! 2. freeze the backbone/`Enc_μ`/`Enc_σ`/decoder, re-encode the batch, and
//!    update only `Enc_σ'` from the contrastive loss — the view generator
//!    *learns to produce views that are useful for the downstream task*.
//!
//! ```no_run
//! use meta_sgcl::{MetaSgcl, MetaSgclConfig};
//! use models::{evaluate_test, SequentialRecommender, TrainConfig};
//! use recdata::{synth, LeaveOneOut};
//!
//! let data = synth::generate(&synth::SynthConfig::toys_like(42));
//! let split = LeaveOneOut::split(&data);
//! let mut model = MetaSgcl::new(MetaSgclConfig::for_items(data.num_items));
//! model.fit(&split.train_sequences(), &TrainConfig::default());
//! let report = evaluate_test(&mut model, &split, &[5, 10]);
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod checkpoint;
mod config;
mod exec;
pub mod infer;
mod model;
mod obs;
mod train;

pub use checkpoint::{TrainCheckpoint, TrainProgress};
pub use config::{Ablation, MetaSgclConfig, SecondView, TrainStrategy};
pub use exec::{BatchStats, Executor, NullObserver, TrainObserver};
pub use infer::FrozenMetaSgcl;
pub use model::MetaSgcl;
pub use train::{EpochStats, TrainingHistory};

//! The Meta-SGCL model: backbone encoder, VAE heads (`Enc_μ`, `Enc_σ`,
//! `Enc_σ'`), Seq2Seq decoder, and catalog scoring.

use autograd::{Graph, ParamRef, Var};
use models::backbone::TransformerBackbone;
use models::vae::standard_normal_like;
use nn::{Linear, Module, TransformerEncoder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{encode_input_only, ItemId};
use tensor::bug::OrBug;

use crate::config::MetaSgclConfig;
use crate::train::TrainingHistory;

/// One latent view and its decoder output.
pub(crate) struct View {
    /// Per-position latent `z` (`[b, n, d]`). Read by tests and kept for
    /// downstream extensions (e.g. per-position contrastive variants).
    #[allow(dead_code)]
    pub z: Var,
    /// Sequence summary: the latent at the last position (`[b, d]`).
    pub z_last: Var,
    /// Decoder output (`[b, n, d]`) — the hidden states the catalog logits
    /// are scored from. The sampled-softmax path scores these against a
    /// candidate subset instead of materializing `logits`.
    pub h: Var,
    /// Per-position catalog logits from the decoder (`[b, n, V]`).
    /// `None` when the caller asked for `with_logits = false` (meta stage,
    /// sampled-softmax training), skipping the `O(|V|)` GEMM entirely.
    pub logits: Option<Var>,
    /// Posterior mean (shared across views).
    pub mu: Var,
    /// Posterior log-variance of this view.
    pub logvar: Var,
}

/// The Meta-SGCL sequential recommender.
pub struct MetaSgcl {
    pub(crate) backbone: TransformerBackbone,
    pub(crate) enc_mu: Linear,
    pub(crate) enc_logvar: Linear,
    /// The meta variance encoder `Enc_σ'`.
    pub(crate) enc_logvar_prime: Linear,
    /// Optional explicit Seq2Seq decoder (see
    /// [`MetaSgclConfig::decoder_layers`]); `None` means the Eq. 22 path
    /// `ŷ = z·Mᵀ`.
    pub(crate) decoder: Option<TransformerEncoder>,
    pub(crate) cfg: MetaSgclConfig,
    pub(crate) history: TrainingHistory,
}

impl MetaSgcl {
    /// Builds an untrained Meta-SGCL from a configuration.
    pub fn new(cfg: MetaSgclConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "metasgcl",
            cfg.net.num_items + 1,
            cfg.net.max_len,
            cfg.net.dim,
            cfg.net.heads,
            cfg.net.layers,
            cfg.net.dropout,
            true,
        );
        let enc_mu = Linear::new(&mut rng, "metasgcl.enc_mu", cfg.net.dim, cfg.net.dim, true);
        let enc_logvar = Linear::new(
            &mut rng,
            "metasgcl.enc_logvar",
            cfg.net.dim,
            cfg.net.dim,
            true,
        );
        let enc_logvar_prime = Linear::new(
            &mut rng,
            "metasgcl.enc_logvar_prime",
            cfg.net.dim,
            cfg.net.dim,
            true,
        );
        // Start both variance heads small (σ ≈ e^{-2} ≈ 0.14) so early
        // reconstruction is not drowned by reparameterization noise.
        for head in [&enc_logvar, &enc_logvar_prime] {
            head.parameters()[1].borrow_mut().value = tensor::Tensor::full(vec![cfg.net.dim], -4.0);
        }
        let decoder = (cfg.decoder_layers > 0).then(|| {
            TransformerEncoder::new(
                &mut rng,
                "metasgcl.dec",
                cfg.decoder_layers,
                cfg.net.dim,
                cfg.net.heads,
                cfg.net.dropout,
            )
        });
        let _ = rng; // backbone construction consumed the seeded stream
        MetaSgcl {
            backbone,
            enc_mu,
            enc_logvar,
            enc_logvar_prime,
            decoder,
            cfg,
            history: TrainingHistory::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MetaSgclConfig {
        &self.cfg
    }

    /// Per-epoch loss history (populated by `fit`).
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// The item embedding table (Fig. 6 analytics).
    pub fn item_table(&self) -> &ParamRef {
        self.backbone.item_table()
    }

    /// Stage-1 parameters: backbone + `Enc_μ` + `Enc_σ` + decoder.
    pub fn main_parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.backbone.parameters();
        ps.extend(self.enc_mu.parameters());
        ps.extend(self.enc_logvar.parameters());
        if let Some(dec) = &self.decoder {
            ps.extend(dec.parameters());
        }
        ps
    }

    /// Stage-2 (meta) parameters: `Enc_σ'` only.
    pub fn meta_parameters(&self) -> Vec<ParamRef> {
        self.enc_logvar_prime.parameters()
    }

    /// All parameters.
    pub fn all_parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.main_parameters();
        ps.extend(self.meta_parameters());
        ps
    }

    fn set_trainable(params: &[ParamRef], trainable: bool) {
        for p in params {
            p.borrow_mut().trainable = trainable;
        }
    }

    /// Freezes/unfreezes the stage-1 modules (meta stage 2 freezing).
    pub(crate) fn set_main_trainable(&self, trainable: bool) {
        Self::set_trainable(&self.main_parameters(), trainable);
    }

    /// Freezes/unfreezes `Enc_σ'` (frozen during stage 1).
    pub(crate) fn set_meta_trainable(&self, trainable: bool) {
        Self::set_trainable(&self.meta_parameters(), trainable);
    }

    /// Encoder pass: `F^{(L)}` features for a batch (Eqs. 4–10).
    pub(crate) fn encode(
        &self,
        g: &Graph,
        inputs: &[Vec<ItemId>],
        pad: &[Vec<bool>],
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        self.backbone.forward(g, inputs, pad, rng, training)
    }

    /// Builds one latent view from encoder features (Eqs. 11–15) and runs
    /// the Seq2Seq decoder (Eq. 13). `meta_sigma` selects `Enc_σ'` instead
    /// of `Enc_σ`. `deterministic` (inference) uses `z = μ`. `with_logits`
    /// controls whether the full-catalog scores (Eq. 22) are materialized;
    /// callers that never read them (contrastive-only meta stage,
    /// sampled-softmax training) pass `false` and skip the `O(|V|)` GEMM.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn view(
        &self,
        g: &Graph,
        features: &Var,
        pad: &[Vec<bool>],
        meta_sigma: bool,
        deterministic: bool,
        with_logits: bool,
        rng: &mut StdRng,
        training: bool,
    ) -> View {
        let mu = self.enc_mu.forward(g, features);
        let head = if meta_sigma {
            &self.enc_logvar_prime
        } else {
            &self.enc_logvar
        };
        let logvar = head.forward(g, features).clamp(-8.0, 8.0);
        let z = if deterministic {
            mu.clone()
        } else {
            let sigma = logvar.scale(0.5).exp();
            let eps = standard_normal_like(&mu.dims(), rng);
            mu.add(&sigma.mul_const(&eps))
        };
        // Decode: either the explicit Transformer decoder over the latent
        // sequence (same masks as the encoder), or the Eq. 22 path scoring
        // the latent directly against the tied item table.
        let h = match &self.decoder {
            Some(dec) => {
                let mask = self.backbone.attention_mask(pad);
                let timeline = TransformerBackbone::timeline_mask(pad);
                dec.forward(g, &z, Some(&mask), Some(&timeline), rng, training)
            }
            None => z.clone(),
        };
        let logits = with_logits.then(|| self.backbone.scores(g, &h));
        let z_last = TransformerBackbone::last_hidden(&z);
        View {
            z,
            z_last,
            h,
            logits,
            mu,
            logvar,
        }
    }

    /// Saves all parameters to a checkpoint file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        nn::io::save_parameters(path, &self.all_parameters())
    }

    /// Restores all parameters from a checkpoint produced by
    /// [`MetaSgcl::save`] on an identically-configured model.
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        nn::io::load_parameters(path, &self.all_parameters())
    }

    /// Deterministic catalog scores for one interaction history.
    ///
    /// Takes `&self`: parameters are only read (through their `RwLock`
    /// read guards), so any number of threads may score concurrently.
    pub fn score_sequence(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.cfg.net.num_items + 1];
        }
        let (_g, last) = self.score_graph(seq);
        last.value().row(0)[..self.cfg.net.num_items + 1].to_vec()
    }

    /// Builds the deterministic padded scoring graph and returns the tape
    /// plus the last-position logits head (`[1, V]`). Shared by
    /// [`MetaSgcl::score_sequence`] and the frozen-parity audit, so the
    /// audited tape is the real serving-reference forward.
    pub(crate) fn score_graph(&self, seq: &[ItemId]) -> (Graph, Var) {
        let (input, pad) = encode_input_only(seq, self.cfg.net.max_len);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0); // unused: no dropout/noise at eval
        let features = self.encode(&g, &[input], std::slice::from_ref(&pad), &mut rng, false);
        let view = self.view(&g, &features, &[pad], false, true, true, &mut rng, false);
        let logits = view.logits.or_bug("score_graph requested logits");
        let dims = logits.dims();
        let (n, v) = (dims[1], dims[2]);
        let last = logits.slice_axis(1, n - 1, n).reshape(vec![1, v]);
        (g, last)
    }

    /// Deterministic catalog scores under *left-aligned* (incremental
    /// serving) semantics: the window is the last `max_len` items with
    /// positions `0..len` and no padding, encoded via
    /// [`TransformerBackbone::forward_left_aligned`]. This is the autograd
    /// reference the frozen incremental path is gated against bitwise.
    ///
    /// Note this is a *different* (equally valid) windowing than
    /// [`MetaSgcl::score_sequence`]'s right-anchored padded positions; the
    /// two agree only when `seq.len() == max_len` exactly fills the window.
    pub fn score_left_aligned(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.cfg.net.num_items + 1];
        }
        let window = &seq[seq.len().saturating_sub(self.cfg.net.max_len)..];
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0); // unused: no dropout/noise at eval
        let features = self
            .backbone
            .forward_left_aligned(&g, window, &mut rng, false);
        let mu = self.enc_mu.forward(&g, &features);
        let h = match &self.decoder {
            Some(dec) => {
                let mask = nn::causal_mask(window.len());
                dec.forward(&g, &mu, Some(&mask), None, &mut rng, false)
            }
            None => mu,
        };
        let logits = self
            .backbone
            .scores(&g, &TransformerBackbone::last_hidden(&h));
        logits.value().row(0)[..self.cfg.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetaSgclConfig;
    use models::NetConfig;

    fn small() -> MetaSgcl {
        MetaSgcl::new(MetaSgclConfig {
            net: NetConfig {
                max_len: 6,
                dim: 8,
                layers: 1,
                ..NetConfig::for_items(10)
            },
            ..MetaSgclConfig::for_items(10)
        })
    }

    #[test]
    fn parameter_partition_is_disjoint_and_complete() {
        let m = small();
        let main = m.main_parameters();
        let meta = m.meta_parameters();
        let all = m.all_parameters();
        assert_eq!(main.len() + meta.len(), all.len());
        assert_eq!(meta.len(), 2); // Enc_σ' weight + bias
        for mp in &meta {
            assert!(
                !main.iter().any(|p| autograd::ParamRef::ptr_eq(p, mp)),
                "meta param leaked into main set"
            );
        }
    }

    #[test]
    fn freezing_toggles_trainable_flags() {
        let m = small();
        m.set_main_trainable(false);
        assert!(m.main_parameters().iter().all(|p| !p.borrow().trainable));
        assert!(m.meta_parameters().iter().all(|p| p.borrow().trainable));
        m.set_main_trainable(true);
        m.set_meta_trainable(false);
        assert!(m.main_parameters().iter().all(|p| p.borrow().trainable));
        assert!(m.meta_parameters().iter().all(|p| !p.borrow().trainable));
        m.set_meta_trainable(true);
    }

    #[test]
    fn views_share_mu_but_differ_in_variance_head() {
        let mut m = small();
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = vec![vec![0, 0, 1, 2, 3, 4]];
        let pad = vec![vec![true, true, false, false, false, false]];
        let f = m.encode(&g, &inputs, &pad, &mut rng, false);
        let v1 = m.view(&g, &f, &pad, false, false, false, &mut rng, false);
        let v2 = m.view(&g, &f, &pad, true, false, false, &mut rng, false);
        assert_eq!(v1.mu.value().data(), v2.mu.value().data(), "μ is shared");
        assert_ne!(
            v1.logvar.value().data(),
            v2.logvar.value().data(),
            "σ and σ' heads differ"
        );
        let _ = &mut m;
    }

    #[test]
    fn deterministic_scoring_is_stable() {
        let m = small();
        let a = m.score_sequence(&[1, 2, 3]);
        let b = m.score_sequence(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        assert_eq!(m.score_sequence(&[]).len(), 11);
    }

    #[test]
    fn stochastic_views_differ_between_draws() {
        let mut m = small();
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let inputs = vec![vec![1, 2, 3, 4, 5, 6]];
        let pad = vec![vec![false; 6]];
        let f = m.encode(&g, &inputs, &pad, &mut rng, false);
        let v1 = m.view(&g, &f, &pad, false, false, false, &mut rng, false);
        let v2 = m.view(&g, &f, &pad, false, false, false, &mut rng, false);
        assert_ne!(v1.z.value().data(), v2.z.value().data());
        let _ = &mut m;
    }
}

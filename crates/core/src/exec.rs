//! The data-parallel training executor.
//!
//! [`Executor`] fans a mini-batch's shards out over a thread pool, runs
//! forward + backward per shard on a private tape, and hands the per-shard
//! [`GradientSet`]s back to the coordinator in input order.
//!
//! # Determinism contract
//!
//! Training with `threads = 1` and `threads = N` produces **bitwise
//! identical** parameters for the same seed and configuration, because every
//! source of arithmetic ordering is independent of the thread count:
//!
//! 1. the shard partition is a pure function of the batch length and
//!    `shard_size` ([`recdata::Batch::shard`]);
//! 2. each shard's RNG is derived from the batch seed and the shard *index*
//!    ([`Executor::shard_seed`]), not from which worker runs it;
//! 3. shard gradients are merged on the coordinating thread in fixed shard
//!    order ([`GradientSet::merge_scaled`]).
//!
//! Threads only change *when* each shard is computed, never *what* is
//! computed or the order results are combined.

use autograd::GradientSet;
use recdata::Batch;
use tensor::bug::OrBug;

use crate::train::EpochStats;

/// Runs shard closures serially or on a dedicated thread pool.
pub struct Executor {
    pool: Option<rayon::ThreadPool>,
    threads: usize,
    shard_size: usize,
}

impl Executor {
    /// Creates an executor with `threads` workers (1 = run in place) that
    /// splits batches into shards of at most `shard_size` rows.
    pub fn new(threads: usize, shard_size: usize) -> Executor {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .or_bug("failed to build training thread pool")
        });
        Executor {
            pool,
            threads,
            shard_size: shard_size.max(1),
        }
    }

    /// Builds an executor from a training configuration.
    pub fn from_config(cfg: &models::TrainConfig) -> Executor {
        Executor::new(cfg.threads, cfg.shard_size)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maximum rows per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Derives the RNG seed for one shard of one training stage.
    ///
    /// A SplitMix64-style hash of `(batch_seed, stage, shard index)`: every
    /// shard gets an independent, reproducible stream regardless of which
    /// worker thread executes it.
    pub fn shard_seed(batch_seed: u64, stage: u64, shard: u64) -> u64 {
        let mut z = batch_seed
            .wrapping_add(stage.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(shard.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs `f(shard_index, shard)` for every shard and returns the results
    /// in shard order — serially with one thread, fanned out over the pool
    /// otherwise.
    pub fn map_shards<T, F>(&self, shards: &[Batch], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &Batch) -> T + Sync,
    {
        match &self.pool {
            None => shards.iter().enumerate().map(|(i, s)| f(i, s)).collect(),
            Some(pool) => {
                use rayon::prelude::*;
                let indexed: Vec<(usize, &Batch)> = shards.iter().enumerate().collect();
                pool.install(|| indexed.par_iter().map(|&(i, s)| f(i, s)).collect())
            }
        }
    }
}

/// What one shard's forward + backward produced.
pub(crate) struct ShardOutcome {
    /// Locally collected gradients (not yet in the shared buffers).
    pub grads: GradientSet,
    /// Unweighted reconstruction loss of the shard.
    pub rec: f64,
    /// Unweighted KL of the first latent view (`Enc_σ`).
    pub kl_a: f64,
    /// Unweighted KL of the second latent view (`Enc_σ'` / dropout / data
    /// augmentation), zero when the ablation removes the second view.
    pub kl_b: f64,
    /// Unweighted contrastive loss of the shard.
    pub cl: f64,
    /// Weighted total loss of the shard.
    pub total: f64,
    /// Rows in the shard.
    pub len: usize,
}

/// One mini-batch's decomposed losses and step diagnostics.
///
/// Loss terms are averaged over the batch's shards (weighted by shard size,
/// reduced in fixed shard order — see the determinism contract above);
/// position and step fields are filled in by the training loop afterwards.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchStats {
    /// Epoch index.
    pub epoch: u64,
    /// Batch index within the epoch.
    pub batch: u64,
    /// Global optimizer step *after* this batch was applied.
    pub step: u64,
    /// KL-annealing β in effect for this batch.
    pub beta: f64,
    /// Unweighted reconstruction cross-entropy.
    pub recon: f64,
    /// Unweighted KL of the first latent view.
    pub kl_a: f64,
    /// Unweighted KL of the second latent view (zero if absent).
    pub kl_b: f64,
    /// Unweighted InfoNCE contrastive term.
    pub info_nce: f64,
    /// Weighted total objective.
    pub total: f64,
    /// Global gradient norm before clipping, when measured (clipping on or
    /// telemetry enabled).
    pub grad_norm: Option<f64>,
    /// Norm of the stage-2 (meta `Enc_σ'`) parameter update, when the
    /// meta-two-step strategy ran a stage-2 step for this batch.
    pub meta_update_norm: Option<f64>,
}

/// Merges shard outcomes in fixed shard order: gradients are mean-reduced
/// with weights `shard_len / batch_len` (summing to one) and loss components
/// are averaged with the same weights.
pub(crate) fn reduce_outcomes(outcomes: &[ShardOutcome]) -> (GradientSet, BatchStats) {
    let batch_len: usize = outcomes.iter().map(|o| o.len).sum();
    let mut merged = GradientSet::new();
    let mut stats = BatchStats::default();
    for o in outcomes {
        let w = o.len as f64 / batch_len.max(1) as f64;
        merged.merge_scaled(&o.grads, w as f32);
        stats.recon += w * o.rec;
        stats.kl_a += w * o.kl_a;
        stats.kl_b += w * o.kl_b;
        stats.info_nce += w * o.cl;
        stats.total += w * o.total;
    }
    (merged, stats)
}

/// Observer of training progress, called by the executor-driven training
/// loop. All hooks have no-op defaults; implement only what you need.
pub trait TrainObserver {
    /// Called after every batch with its decomposed losses and step
    /// diagnostics.
    fn on_batch_end(&mut self, _stats: &BatchStats) {}

    /// Called when a training-health detector fires (posterior collapse,
    /// dead meta-σ', non-finite or exploding loss).
    fn on_health(&mut self, _warning: &telemetry::HealthWarning) {}

    /// Called after every epoch with the epoch's statistics (loss
    /// components, wall-clock time, throughput).
    fn on_epoch_end(&mut self, _stats: &EpochStats) {}

    /// Called after a periodic training checkpoint has been durably
    /// committed (temp + fsync + atomic rename) at global step `step`.
    fn on_checkpoint(&mut self, _path: &std::path::Path, _step: u64) {}

    /// Called once when training resumes from a checkpoint, before any
    /// batch is processed.
    fn on_resume(&mut self, _path: &std::path::Path, _epoch: usize, _batch: usize, _step: u64) {}
}

/// The do-nothing observer.
pub struct NullObserver;

impl TrainObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(rows: usize) -> Batch {
        Batch {
            inputs: (0..rows).map(|r| vec![0, r + 1]).collect(),
            targets: (0..rows).map(|r| vec![usize::MAX, r + 2]).collect(),
            last_target: (0..rows).map(|r| r + 2).collect(),
            pad: (0..rows).map(|_| vec![true, false]).collect(),
        }
    }

    #[test]
    fn map_shards_preserves_order_serial_and_parallel() {
        let shards = toy_batch(10).shard(3);
        assert_eq!(
            shards.iter().map(Batch::len).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        let serial = Executor::new(1, 3).map_shards(&shards, |i, s| (i, s.len()));
        let parallel = Executor::new(4, 3).map_shards(&shards, |i, s| (i, s.len()));
        assert_eq!(serial, parallel);
        assert_eq!(serial, vec![(0, 3), (1, 3), (2, 3), (3, 1)]);
    }

    #[test]
    fn shard_seed_depends_on_all_inputs() {
        let base = Executor::shard_seed(7, 1, 0);
        assert_ne!(base, Executor::shard_seed(8, 1, 0), "batch seed ignored");
        assert_ne!(base, Executor::shard_seed(7, 2, 0), "stage ignored");
        assert_ne!(base, Executor::shard_seed(7, 1, 1), "shard index ignored");
        assert_eq!(base, Executor::shard_seed(7, 1, 0), "not deterministic");
    }

    #[test]
    fn executor_clamps_degenerate_config() {
        let e = Executor::new(0, 0);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.shard_size(), 1);
    }
}

//! Baseline sequential recommenders for the Meta-SGCL reproduction.
//!
//! Implements every comparator from the paper's Table II on the shared
//! tensor/autograd/nn substrate:
//!
//! | family | models |
//! |---|---|
//! | traditional | [`Pop`], [`BprMf`] |
//! | sequential | [`Gru4Rec`], [`Caser`], [`SasRec`], [`Bert4Rec`], [`Vsan`] |
//! | contrastive | [`Acvae`], [`DuoRec`], [`ContrastVae`] |
//!
//! All models implement [`SequentialRecommender`] and share the
//! [`TransformerBackbone`] where applicable, so comparisons isolate the
//! *objective* differences the paper studies rather than implementation
//! noise. Scale reductions and simplifications relative to the original
//! papers are documented per model and in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod backbone;
pub mod cl;
mod common;
pub mod infer;
pub mod sampled;
pub mod vae;

mod acvae;
mod bert4rec;
mod bprmf;
mod caser;
mod cl4srec;
mod contrastvae;
mod duorec;
mod gru4rec;
mod pop;
mod sasrec;
mod vsan;

pub use acvae::Acvae;
pub use audit::{audit_batch, audit_sequences, Auditable, StageContract, StageTrace};
pub use backbone::TransformerBackbone;
pub use bert4rec::Bert4Rec;
pub use bprmf::BprMf;
pub use caser::Caser;
pub use cl::{info_nce, info_nce_masked, Similarity};
pub use cl4srec::Cl4SRec;
pub use common::{
    evaluate_test, evaluate_valid, recommend_top_k, SequentialRecommender, TrainConfig,
};
pub use contrastvae::Augmentation;
pub use contrastvae::ContrastVae;
pub use duorec::DuoRec;
pub use gru4rec::Gru4Rec;
pub use infer::{BackboneState, FrozenGru4Rec, FrozenTransformerBackbone, GruState};
pub use pop::Pop;
pub use sampled::{NegativeSampler, SoftmaxMode};
pub use sasrec::{NetConfig, SasRec};
pub use vae::LossTerms;
pub use vsan::Vsan;

//! The shared SASRec-style Transformer backbone: item + position
//! embeddings, embedding LayerNorm/dropout, and a stacked self-attention
//! encoder with causal and padding masks.
//!
//! Every attention-based model in this reproduction (SASRec, BERT4Rec,
//! VSAN, DuoRec, ContrastVAE, ACVAE, and Meta-SGCL itself) is this backbone
//! plus a different head/objective, which keeps the Table II comparison
//! about objectives rather than implementation details.

use autograd::{Graph, ParamRef, Var};
use nn::{
    causal_mask, padding_additive_mask, Dropout, Embedding, LayerNorm, Module, TransformerEncoder,
};
use rand::rngs::StdRng;
use recdata::ItemId;
use tensor::bug::OrBug;
use tensor::{ops, Tensor};

/// Item+position embedding and Transformer encoder stack.
pub struct TransformerBackbone {
    pub(crate) item_emb: Embedding,
    pub(crate) pos_emb: Embedding,
    pub(crate) emb_ln: LayerNorm,
    emb_dropout: Dropout,
    pub(crate) encoder: TransformerEncoder,
    dim: usize,
    pub(crate) heads: usize,
    pub(crate) causal: bool,
}

impl TransformerBackbone {
    /// Creates a backbone.
    ///
    /// `vocab` must include padding (`num_items + 1`) plus any special
    /// tokens (e.g. BERT4Rec's `[mask]`). `causal = false` gives
    /// bidirectional attention.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        max_len: usize,
        dim: usize,
        heads: usize,
        layers: usize,
        dropout: f32,
        causal: bool,
    ) -> Self {
        TransformerBackbone {
            item_emb: Embedding::new(rng, &format!("{name}.item"), vocab, dim),
            pos_emb: Embedding::new(rng, &format!("{name}.pos"), max_len, dim),
            emb_ln: LayerNorm::new(&format!("{name}.emb_ln"), dim),
            emb_dropout: Dropout::new(dropout),
            encoder: TransformerEncoder::new(
                rng,
                &format!("{name}.enc"),
                layers,
                dim,
                heads,
                dropout,
            ),
            dim,
            heads,
            causal,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size (including padding/special tokens).
    pub fn vocab(&self) -> usize {
        self.item_emb.vocab()
    }

    /// The item-embedding table parameter (tied output projection, Fig. 6
    /// analytics).
    pub fn item_table(&self) -> &ParamRef {
        self.item_emb.table()
    }

    /// Builds the combined additive attention mask for a batch.
    pub fn attention_mask(&self, pad: &[Vec<bool>]) -> Tensor {
        let n = pad.first().map_or(0, Vec::len);
        let pad_mask = padding_additive_mask(pad, self.heads);
        if self.causal {
            ops::add(&pad_mask, &causal_mask(n)).or_bug("mask broadcast")
        } else {
            pad_mask
        }
    }

    /// Multiplicative timeline mask `[b, n, 1]` (0 at padding).
    pub fn timeline_mask(pad: &[Vec<bool>]) -> Tensor {
        let b = pad.len();
        let n = pad.first().map_or(0, Vec::len);
        let mut t = Tensor::ones(vec![b, n, 1]);
        for (bi, row) in pad.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                if p {
                    t.data_mut()[bi * n + j] = 0.0;
                }
            }
        }
        t
    }

    /// Embeds a batch (Eq. 4: `Ê = E + P`), normalizes, applies dropout.
    pub fn embed(
        &self,
        g: &Graph,
        inputs: &[Vec<ItemId>],
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let n = inputs.first().map_or(0, Vec::len);
        let e = self.item_emb.forward_batch(g, inputs);
        let pos: Vec<usize> = (0..n).collect();
        let p = self.pos_emb.forward_flat(g, &pos); // [n, d] broadcast over batch
        let x = e.add(&p);
        let x = self.emb_ln.forward(g, &x);
        self.emb_dropout.forward(&x, rng, training)
    }

    /// Full forward: returns hidden states `[b, n, dim]` (Eq. 10's `F^(l)`).
    pub fn forward(
        &self,
        g: &Graph,
        inputs: &[Vec<ItemId>],
        pad: &[Vec<bool>],
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let x = self.embed(g, inputs, rng, training);
        let mask = self.attention_mask(pad);
        let timeline = Self::timeline_mask(pad);
        self.encoder
            .forward(g, &x, Some(&mask), Some(&timeline), rng, training)
    }

    /// Left-aligned, unpadded forward for one sequence: positions are
    /// `0..seq.len()` (anchored at the *start*, not the right edge), the
    /// mask is causal only, and there is no timeline mask because nothing
    /// is padding. These are the semantics the incremental serving path
    /// caches under — appending an item leaves every earlier position's
    /// embedding (and, by causality, hidden state) unchanged.
    ///
    /// Requires `seq.len() <= max_len` (the position table has `max_len`
    /// rows).
    pub fn forward_left_aligned(
        &self,
        g: &Graph,
        seq: &[ItemId],
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let n = seq.len();
        let e = self
            .item_emb
            .forward_batch(g, std::slice::from_ref(&seq.to_vec()));
        let pos: Vec<usize> = (0..n).collect();
        let p = self.pos_emb.forward_flat(g, &pos);
        let x = self.emb_ln.forward(g, &e.add(&p));
        let x = self.emb_dropout.forward(&x, rng, training);
        let mask = causal_mask(n);
        self.encoder
            .forward(g, &x, Some(&mask), None, rng, training)
    }

    /// Runs the encoder on a pre-built embedding var (used by models that
    /// modify the embedding first, e.g. the VAE decoder over `z`).
    pub fn encode_embedded(
        &self,
        g: &Graph,
        x: &Var,
        pad: &[Vec<bool>],
        rng: &mut StdRng,
        training: bool,
    ) -> Var {
        let mask = self.attention_mask(pad);
        let timeline = Self::timeline_mask(pad);
        self.encoder
            .forward(g, x, Some(&mask), Some(&timeline), rng, training)
    }

    /// Extracts the representation at the last position: `[b, n, d] → [b, d]`.
    /// With left padding the final position always holds the most recent
    /// real item.
    pub fn last_hidden(h: &Var) -> Var {
        let dims = h.dims();
        let (b, n, d) = (dims[0], dims[1], dims[2]);
        h.slice_axis(1, n - 1, n).reshape(vec![b, d])
    }

    /// Scores the catalog from hidden states via the tied item table
    /// (Eq. 22: `ŷ = z · Mᵀ`). Accepts `[b, d]` or `[b, n, d]`.
    pub fn scores(&self, g: &Graph, h: &Var) -> Var {
        // Fused NT against the [V, d] table — no [d, V] transpose copy.
        h.matmul_transb(&self.item_emb.full(g))
    }

    /// The tied item-embedding table as a graph var (`[vocab, d]`), for
    /// candidate-subset scoring (sampled softmax).
    pub fn item_table_var(&self, g: &Graph) -> Var {
        self.item_emb.full(g)
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.item_emb.parameters();
        ps.extend(self.pos_emb.parameters());
        ps.extend(self.emb_ln.parameters());
        ps.extend(self.encoder.parameters());
        ps
    }
}

impl Module for TransformerBackbone {
    fn parameters(&self) -> Vec<ParamRef> {
        TransformerBackbone::parameters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn backbone(causal: bool) -> (TransformerBackbone, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let b = TransformerBackbone::new(&mut rng, "bb", 11, 6, 8, 2, 1, 0.0, causal);
        (b, rng)
    }

    #[test]
    fn forward_shapes() {
        let (bb, mut rng) = backbone(true);
        let g = Graph::new();
        let inputs = vec![vec![0, 0, 1, 2, 3, 4], vec![0, 5, 6, 7, 8, 9]];
        let pad = vec![
            vec![true, true, false, false, false, false],
            vec![true, false, false, false, false, false],
        ];
        let h = bb.forward(&g, &inputs, &pad, &mut rng, false);
        assert_eq!(h.dims(), vec![2, 6, 8]);
        let last = TransformerBackbone::last_hidden(&h);
        assert_eq!(last.dims(), vec![2, 8]);
        let s = bb.scores(&g, &last);
        assert_eq!(s.dims(), vec![2, 11]);
        let s3 = bb.scores(&g, &h);
        assert_eq!(s3.dims(), vec![2, 6, 11]);
    }

    #[test]
    fn padded_positions_output_zero() {
        let (bb, mut rng) = backbone(true);
        let g = Graph::new();
        let inputs = vec![vec![0, 0, 1, 2, 3, 4]];
        let pad = vec![vec![true, true, false, false, false, false]];
        let h = bb.forward(&g, &inputs, &pad, &mut rng, false).value();
        for j in 0..8 {
            assert_eq!(h.at(&[0, 0, j]), 0.0);
            assert_eq!(h.at(&[0, 1, j]), 0.0);
        }
        assert!(h.at(&[0, 2, 0]).abs() > 0.0);
    }

    #[test]
    fn causal_backbone_ignores_future() {
        let (bb, mut rng) = backbone(true);
        let g = Graph::new();
        let pad = vec![vec![false; 6]];
        let a = bb
            .forward(&g, &[vec![1, 2, 3, 4, 5, 6]], &pad, &mut rng, false)
            .value();
        let b = bb
            .forward(&g, &[vec![1, 2, 3, 9, 5, 6]], &pad, &mut rng, false)
            .value();
        // Positions before the change are identical.
        for t in 0..3 {
            for j in 0..8 {
                assert!((a.at(&[0, t, j]) - b.at(&[0, t, j])).abs() < 1e-5);
            }
        }
        assert!((a.at(&[0, 3, 0]) - b.at(&[0, 3, 0])).abs() > 1e-5);
    }

    #[test]
    fn bidirectional_backbone_sees_future() {
        let (bb, mut rng) = backbone(false);
        let g = Graph::new();
        let pad = vec![vec![false; 6]];
        let a = bb
            .forward(&g, &[vec![1, 2, 3, 4, 5, 6]], &pad, &mut rng, false)
            .value();
        let b = bb
            .forward(&g, &[vec![1, 2, 3, 9, 5, 6]], &pad, &mut rng, false)
            .value();
        // Position 0 changes because attention is bidirectional.
        let mut any_change = false;
        for j in 0..8 {
            if (a.at(&[0, 0, j]) - b.at(&[0, 0, j])).abs() > 1e-6 {
                any_change = true;
            }
        }
        assert!(any_change);
    }
}

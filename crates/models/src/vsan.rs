//! VSAN (Zhao et al., ICDE 2021): variational self-attention network —
//! a SASRec backbone whose per-position outputs parameterize a Gaussian
//! posterior; training maximizes the single-view ELBO (reconstruction CE +
//! β·KL).

use autograd::Graph;
use nn::Module;
use optim::{clip_grad_norm, Adam, KlAnnealing, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{encode_input_only, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::sasrec::NetConfig;
use crate::vae::{gaussian_kl, reparameterize, LossTerms, VaeHead};
use crate::{SequentialRecommender, TrainConfig};

/// The VSAN model.
pub struct Vsan {
    backbone: TransformerBackbone,
    head: VaeHead,
    net: NetConfig,
    beta: f32,
    rng: StdRng,
}

impl Vsan {
    /// Builds an untrained VSAN with KL weight `beta`.
    pub fn new(net: NetConfig, beta: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "vsan",
            net.num_items + 1,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            true,
        );
        let head = VaeHead::new(&mut rng, "vsan.head", net.dim);
        Vsan {
            backbone,
            head,
            net,
            beta,
            rng,
        }
    }

    fn all_params(&self) -> Vec<autograd::ParamRef> {
        let mut ps = self.backbone.parameters();
        ps.extend(self.head.parameters());
        ps
    }

    /// Single-view ELBO (reconstruction CE + `beta`·KL) for one batch,
    /// decomposed per term. Shared by [`SequentialRecommender::fit`] and the
    /// static auditor.
    fn batch_loss(&self, g: &Graph, batch: &Batch, beta: f32, rng: &mut StdRng) -> LossTerms {
        let h = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let (mu, logvar) = self.head.forward(g, &h);
        let z = reparameterize(&mu, &logvar, rng, false);
        let logits = self.backbone.scores(g, &z);
        let (b, n) = (batch.len(), batch.seq_len());
        let flat = logits.reshape(vec![b * n, self.backbone.vocab()]);
        let targets: Vec<usize> = batch
            .targets
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect();
        let rec = flat.cross_entropy_with_logits(&targets);
        let kl = gaussian_kl(&mu, &logvar);
        LossTerms {
            recon: f64::from(rec.item()),
            kl_a: f64::from(kl.item()),
            kl_b: None,
            info_nce: None,
            total: rec.add(&kl.scale(beta)),
        }
    }
}

impl Auditable for Vsan {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.all_params())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "VSAN has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, self.beta, &mut rng).total;
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for Vsan {
    fn name(&self) -> String {
        "VSAN".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let params = self.all_params();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let anneal = KlAnnealing::new(self.beta, (cfg.epochs as u64 / 4).max(1) * 10);
        let mut step = 0u64;
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let (mut rec_sum, mut kl_sum) = (0.0f64, 0.0f64);
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let terms = self.batch_loss(&g, &batch, anneal.beta(step), &mut rng);
                terms.total.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += terms.total.item() as f64;
                rec_sum += terms.recon;
                kl_sum += terms.kl_a;
                batches += 1;
                step += 1;
            }
            if cfg.verbose {
                let n = batches.max(1) as f64;
                println!(
                    "[VSAN] epoch {epoch} loss {:.4} (rec {:.4} kl {:.4})",
                    total / n,
                    rec_sum / n,
                    kl_sum / n
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let (mu, _logvar) = self.head.forward(&g, &h);
        let last = TransformerBackbone::last_hidden(&mu);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_scores() {
        let train: Vec<Vec<usize>> = (0..16)
            .map(|u| (0..8).map(|t| 1 + (u + t) % 6).collect())
            .collect();
        let mut m = Vsan::new(
            NetConfig {
                max_len: 8,
                dim: 16,
                layers: 1,
                dropout: 0.0,
                ..NetConfig::for_items(6)
            },
            0.2,
        );
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 8,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[1, 2, 3]);
        assert_eq!(s.len(), 7);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 4, "scores {s:?}");
    }
}

//! DuoRec (Qiu et al., WSDM 2022): SASRec plus contrastive regularization
//! where the two views of a sequence are two *dropout-perturbed forward
//! passes* (model-level augmentation), and an additional supervised
//! positive pairs sequences that share the same target item.

use autograd::Graph;
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recdata::{encode_input_only, Batch, Batcher, ItemId};
use std::collections::HashMap;
use tensor::bug::OrBug;

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::cl::{info_nce_masked, Similarity};
use crate::sasrec::NetConfig;
use crate::{SequentialRecommender, TrainConfig};

/// The DuoRec model.
pub struct DuoRec {
    backbone: TransformerBackbone,
    net: NetConfig,
    /// Weight of the unsupervised (dropout-view) contrastive term.
    pub lambda_unsup: f32,
    /// Weight of the supervised (same-target) contrastive term.
    pub lambda_sup: f32,
    /// InfoNCE temperature.
    pub tau: f32,
    rng: StdRng,
}

impl DuoRec {
    /// Builds an untrained DuoRec with the original paper's default
    /// contrastive weights (λ = 0.1) and τ = 1.
    pub fn new(net: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "duorec",
            net.num_items + 1,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            // DuoRec relies on dropout as its augmentation; keep it > 0.
            net.dropout.max(0.1),
            true,
        );
        // Reproduction-scale defaults: on small catalogs even masked
        // contrastive terms trade off against the CE task quickly, so the
        // weights sit an order of magnitude below the original paper's 0.1
        // (see DESIGN.md §4).
        DuoRec {
            backbone,
            net,
            lambda_unsup: 0.01,
            lambda_sup: 0.005,
            tau: 1.0,
            rng,
        }
    }

    /// Access to the backbone (embedding analytics).
    pub fn backbone(&self) -> &TransformerBackbone {
        &self.backbone
    }

    /// Supervised positives: sequences grouped by target (last item).
    fn target_index(train: &[Vec<ItemId>]) -> HashMap<ItemId, Vec<Vec<ItemId>>> {
        let mut by_target: HashMap<ItemId, Vec<Vec<ItemId>>> = HashMap::new();
        for s in train.iter().filter(|s| s.len() >= 2) {
            // The "semantic positive" shares the same next item; its input
            // is everything before its own last item.
            let target = *s.last().or_bug("non-empty");
            by_target
                .entry(target)
                .or_default()
                .push(s[..s.len() - 1].to_vec());
        }
        by_target
    }

    /// CE + dropout-view + same-target contrastive loss for one batch.
    /// Shared by [`SequentialRecommender::fit`] and the static auditor.
    fn batch_loss(
        &self,
        g: &Graph,
        batch: &Batch,
        by_target: &HashMap<ItemId, Vec<Vec<ItemId>>>,
        rng: &mut StdRng,
    ) -> autograd::Var {
        let b = batch.len();
        // Recommendation view.
        let h1 = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let logits = self.backbone.scores(g, &h1);
        let flat = logits.reshape(vec![b * batch.seq_len(), self.backbone.vocab()]);
        let targets: Vec<usize> = batch
            .targets
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect();
        let mut loss = flat.cross_entropy_with_logits(&targets);
        if b >= 2 {
            // Unsupervised view: a second dropout-perturbed pass.
            let h2 = self
                .backbone
                .forward(g, &batch.inputs, &batch.pad, rng, true);
            let z1 = TransformerBackbone::last_hidden(&h1);
            let z2 = TransformerBackbone::last_hidden(&h2);
            let cl_unsup = info_nce_masked(&z1, &z2, self.tau, Similarity::Dot, &batch.last_target);
            loss = loss.add(&cl_unsup.scale(self.lambda_unsup));
            // Supervised view: a different sequence with the same
            // target, where one exists; fall back to the dropout
            // view otherwise.
            let mut sup_inputs = Vec::with_capacity(b);
            let mut sup_pad = Vec::with_capacity(b);
            for (i, &target) in batch.last_target.iter().enumerate() {
                let candidates = by_target.get(&target);
                let choice = candidates.and_then(|c| {
                    if c.len() > 1 {
                        Some(c[rng.gen_range(0..c.len())].clone())
                    } else {
                        None
                    }
                });
                match choice {
                    Some(seq) if !seq.is_empty() => {
                        let (inp, pd) = encode_input_only(&seq, self.net.max_len);
                        sup_inputs.push(inp);
                        sup_pad.push(pd);
                    }
                    _ => {
                        sup_inputs.push(batch.inputs[i].clone());
                        sup_pad.push(batch.pad[i].clone());
                    }
                }
            }
            let h3 = self.backbone.forward(g, &sup_inputs, &sup_pad, rng, true);
            let z3 = TransformerBackbone::last_hidden(&h3);
            let cl_sup = info_nce_masked(&z1, &z3, self.tau, Similarity::Dot, &batch.last_target);
            loss = loss.add(&cl_sup.scale(self.lambda_sup));
        }
        loss
    }
}

impl Auditable for DuoRec {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.backbone.parameters())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "DuoRec has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let by_target = Self::target_index(seqs);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, &by_target, &mut rng);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for DuoRec {
    fn name(&self) -> String {
        "DuoRec".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let by_target = Self::target_index(train);
        let params = self.backbone.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let loss = self.batch_loss(&g, &batch, &by_target, &mut rng);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[DuoRec] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let last = TransformerBackbone::last_hidden(&h);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_transitions() {
        let train: Vec<Vec<usize>> = (0..20)
            .map(|u| (0..8).map(|t| 1 + (u + t) % 6).collect())
            .collect();
        let mut m = DuoRec::new(NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            dropout: 0.1,
            ..NetConfig::for_items(6)
        });
        // Small CL weights: on this tiny ring dataset every user shares the
        // same item set, so strong user-discrimination fights the CE task
        // (the same effect the paper reports for large alpha in Fig. 4).
        m.lambda_unsup = 0.02;
        m.lambda_sup = 0.02;
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[2, 3, 4]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores {s:?}");
    }
}

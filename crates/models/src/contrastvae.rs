//! ContrastVAE (Wang et al., CIKM 2022): a two-branch variational
//! sequential recommender. Both branches share the encoder; the second
//! branch sees an *augmented* input (data augmentation: crop/mask/reorder)
//! or a second dropout pass (model augmentation). The objective is the
//! two-view ELBO plus InfoNCE between the branch latents — exactly the
//! structure Meta-SGCL replaces with a *learned* second variance encoder.

use autograd::Graph;
use nn::Module;
use optim::{clip_grad_norm, Adam, KlAnnealing, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recdata::{encode_input_only, item_crop, item_mask, item_reorder, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::cl::{info_nce_masked, Similarity};
use crate::sasrec::NetConfig;
use crate::vae::{gaussian_kl, reparameterize, LossTerms, VaeHead};
use crate::{SequentialRecommender, TrainConfig};

/// Which augmentation produces the second view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Augmentation {
    /// Random choice of item crop / mask / reorder (data augmentation).
    Data,
    /// A second dropout-perturbed forward pass (model augmentation).
    Model,
}

/// The ContrastVAE model.
pub struct ContrastVae {
    backbone: TransformerBackbone,
    head: VaeHead,
    net: NetConfig,
    /// KL weight β.
    pub beta: f32,
    /// Contrastive weight.
    pub alpha: f32,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Second-view augmentation type.
    pub augmentation: Augmentation,
    /// Whether the augmented branch adds its own last-position
    /// reconstruction loss (the original paper does; disabling it leaves
    /// the branch supervised only through the contrastive term).
    pub second_reconstruction: bool,
    rng: StdRng,
}

impl ContrastVae {
    /// Builds an untrained ContrastVAE.
    ///
    /// Defaults follow the original paper's *model-augmentation* variant
    /// (a second dropout-perturbed pass), which is also its strongest
    /// configuration at reproduction scale; switch
    /// [`ContrastVae::augmentation`] to [`Augmentation::Data`] for the
    /// crop/mask/reorder variant the Meta-SGCL paper argues against.
    pub fn new(net: NetConfig, alpha: f32, beta: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        // The mask augmentation introduces item id `num_items + 1`.
        let backbone = TransformerBackbone::new(
            &mut rng,
            "contrastvae",
            net.num_items + 2,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            true,
        );
        let head = VaeHead::new(&mut rng, "contrastvae.head", net.dim);
        ContrastVae {
            backbone,
            head,
            net,
            beta,
            alpha,
            tau: 1.0,
            augmentation: Augmentation::Model,
            second_reconstruction: false,
            rng,
        }
    }

    fn all_params(&self) -> Vec<autograd::ParamRef> {
        let mut ps = self.backbone.parameters();
        ps.extend(self.head.parameters());
        ps
    }

    fn augment_sequence(&self, seq: &[ItemId], rng: &mut StdRng) -> Vec<ItemId> {
        match rng.gen_range(0..3) {
            0 => item_crop(seq, 0.8, rng),
            1 => item_mask(seq, 0.2, self.net.num_items, rng),
            _ => item_reorder(seq, 0.3, rng),
        }
    }

    /// Two-view ELBO + InfoNCE loss for one batch with KL weight `beta`,
    /// decomposed per term. Shared by [`SequentialRecommender::fit`] and the
    /// static auditor.
    fn batch_loss(&self, g: &Graph, batch: &Batch, beta: f32, rng: &mut StdRng) -> LossTerms {
        let (b, n) = (batch.len(), batch.seq_len());
        let vocab = self.backbone.vocab();
        let targets: Vec<usize> = batch
            .targets
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect();

        // Branch 1: original input.
        let h1 = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let (mu1, lv1) = self.head.forward(g, &h1);
        let z1 = reparameterize(&mu1, &lv1, rng, false);
        let rec1 = self
            .backbone
            .scores(g, &z1)
            .reshape(vec![b * n, vocab])
            .cross_entropy_with_logits(&targets);
        let kl1 = gaussian_kl(&mu1, &lv1);

        // Branch 2: augmented view.
        let (inputs2, pad2) = match self.augmentation {
            Augmentation::Model => (batch.inputs.clone(), batch.pad.clone()),
            Augmentation::Data => {
                let mut inputs2 = Vec::with_capacity(b);
                let mut pad2 = Vec::with_capacity(b);
                for input in &batch.inputs {
                    let raw: Vec<ItemId> = input.iter().copied().filter(|&x| x != 0).collect();
                    let aug = self.augment_sequence(&raw, rng);
                    let (inp, pd) = encode_input_only(&aug, self.net.max_len);
                    inputs2.push(inp);
                    pad2.push(pd);
                }
                (inputs2, pad2)
            }
        };
        let h2 = self.backbone.forward(g, &inputs2, &pad2, rng, true);
        let (mu2, lv2) = self.head.forward(g, &h2);
        let z2 = reparameterize(&mu2, &lv2, rng, false);
        // The augmented branch reconstructs the *original* targets
        // (its own positions may be misaligned after crop, so we
        // follow the original paper and supervise the summary
        // position only via the contrastive term plus the branch-2
        // last-position recommendation loss).
        let z2_last = TransformerBackbone::last_hidden(&z2);
        let kl2 = gaussian_kl(&mu2, &lv2);

        // Average the two branches' KLs so the effective β matches
        // the single-branch baselines.
        let mut loss = rec1.add(&kl1.add(&kl2).scale(beta * 0.5));
        if self.second_reconstruction {
            let rec2 = self
                .backbone
                .scores(g, &z2_last)
                .cross_entropy_with_logits(&batch.last_target);
            loss = loss.add(&rec2);
        }
        let mut info_nce = None;
        if b >= 2 {
            let z1_last = TransformerBackbone::last_hidden(&z1);
            let cl = info_nce_masked(
                &z1_last,
                &z2_last,
                self.tau,
                Similarity::Dot,
                &batch.last_target,
            );
            info_nce = Some(f64::from(cl.item()));
            loss = loss.add(&cl.scale(self.alpha));
        }
        LossTerms {
            recon: f64::from(rec1.item()),
            kl_a: f64::from(kl1.item()),
            kl_b: Some(f64::from(kl2.item())),
            info_nce,
            total: loss,
        }
    }
}

impl Auditable for ContrastVae {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.all_params())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "ContrastVAE has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, self.beta, &mut rng).total;
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for ContrastVae {
    fn name(&self) -> String {
        "ContrastVAE".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let params = self.all_params();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let anneal = KlAnnealing::new(self.beta, (cfg.epochs as u64 / 4).max(1) * 10);
        let mut step = 0u64;
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let (mut rec_sum, mut kl_a_sum, mut kl_b_sum, mut cl_sum) =
                (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let terms = self.batch_loss(&g, &batch, anneal.beta(step), &mut rng);
                terms.total.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += terms.total.item() as f64;
                rec_sum += terms.recon;
                kl_a_sum += terms.kl_a;
                kl_b_sum += terms.kl_b.unwrap_or(0.0);
                cl_sum += terms.info_nce.unwrap_or(0.0);
                batches += 1;
                step += 1;
            }
            if cfg.verbose {
                let n = batches.max(1) as f64;
                println!(
                    "[ContrastVAE] epoch {epoch} loss {:.4} (rec {:.4} kl_a {:.4} kl_b {:.4} cl {:.4})",
                    total / n,
                    rec_sum / n,
                    kl_a_sum / n,
                    kl_b_sum / n,
                    cl_sum / n
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let (mu, _) = self.head.forward(&g, &h);
        let last = TransformerBackbone::last_hidden(&mu);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts() {
        let train: Vec<Vec<usize>> = (0..20)
            .map(|u| (0..8).map(|t| 1 + (u + t) % 6).collect())
            .collect();
        let mut m = ContrastVae::new(
            NetConfig {
                max_len: 8,
                dim: 16,
                layers: 1,
                dropout: 0.1,
                ..NetConfig::for_items(6)
            },
            0.1,
            0.2,
        );
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[2, 3, 4]);
        assert_eq!(s.len(), 7);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores {s:?}");
    }

    #[test]
    fn model_augmentation_variant_runs() {
        let train: Vec<Vec<usize>> = (0..8).map(|u| vec![1 + u % 3, 2, 3, 1]).collect();
        let mut m = ContrastVae::new(
            NetConfig {
                max_len: 4,
                dim: 8,
                layers: 1,
                ..NetConfig::for_items(3)
            },
            0.1,
            0.2,
        );
        m.augmentation = Augmentation::Model;
        m.fit(
            &train,
            &TrainConfig {
                epochs: 2,
                batch_size: 4,
                ..Default::default()
            },
        );
        assert_eq!(m.score(0, &[1, 2]).len(), 4);
    }
}

//! ACVAE (Xie et al., WWW 2021): adversarial and contrastive variational
//! autoencoder.
//!
//! Reproduction-scale simplification (documented in DESIGN.md): the
//! original couples an adversarial (AAE-style) latent discriminator with a
//! contrastive mutual-information term between the input sequence and its
//! latent. We keep the variational backbone and the *contrastive
//! input–latent MI* term (InfoNCE between the latent summary and the mean
//! input embedding), and replace the adversarial prior-matching game with
//! its non-saturating surrogate — the closed-form KL to the prior with a
//! heavier weight. This preserves ACVAE's qualitative position in Table II
//! (better than plain VAE/SASRec, below DuoRec/ContrastVAE/Meta-SGCL).

use autograd::Graph;
use nn::Module;
use optim::{clip_grad_norm, Adam, KlAnnealing, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{encode_input_only, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::cl::{info_nce_masked, Similarity};
use crate::sasrec::NetConfig;
use crate::vae::{gaussian_kl, reparameterize, LossTerms, VaeHead};
use crate::{SequentialRecommender, TrainConfig};

/// The (simplified) ACVAE model.
pub struct Acvae {
    backbone: TransformerBackbone,
    head: VaeHead,
    net: NetConfig,
    /// Weight of the input–latent contrastive MI term.
    pub gamma: f32,
    /// Prior-matching (KL) weight.
    pub beta: f32,
    rng: StdRng,
}

impl Acvae {
    /// Builds an untrained ACVAE.
    pub fn new(net: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "acvae",
            net.num_items + 1,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            true,
        );
        let head = VaeHead::new(&mut rng, "acvae.head", net.dim);
        Acvae {
            backbone,
            head,
            net,
            gamma: 0.1,
            beta: 0.3,
            rng,
        }
    }

    fn all_params(&self) -> Vec<autograd::ParamRef> {
        let mut ps = self.backbone.parameters();
        ps.extend(self.head.parameters());
        ps
    }

    /// ELBO + contrastive input–latent MI loss for one batch, decomposed per
    /// term. Shared by [`SequentialRecommender::fit`] and the static auditor.
    fn batch_loss(&self, g: &Graph, batch: &Batch, beta: f32, rng: &mut StdRng) -> LossTerms {
        let (b, n) = (batch.len(), batch.seq_len());
        let h = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let (mu, lv) = self.head.forward(g, &h);
        let z = reparameterize(&mu, &lv, rng, false);
        let rec = self
            .backbone
            .scores(g, &z)
            .reshape(vec![b * n, self.backbone.vocab()])
            .cross_entropy_with_logits(
                &batch
                    .targets
                    .iter()
                    .flat_map(|r| r.iter().copied())
                    .collect::<Vec<_>>(),
            );
        let kl = gaussian_kl(&mu, &lv);
        let mut loss = rec.add(&kl.scale(beta));
        let mut info_nce = None;
        if b >= 2 {
            // Contrastive MI between latent summary and the mean
            // input embedding (positive pairs come from the same
            // sequence).
            let z_last = TransformerBackbone::last_hidden(&z);
            let emb = self.backbone.embed(g, &batch.inputs, rng, true);
            let timeline = TransformerBackbone::timeline_mask(&batch.pad);
            let seq_repr = emb.mul_const(&timeline).mean_axis(1, false); // [b, d]
            let cl = info_nce_masked(&z_last, &seq_repr, 1.0, Similarity::Dot, &batch.last_target);
            info_nce = Some(f64::from(cl.item()));
            loss = loss.add(&cl.scale(self.gamma));
        }
        LossTerms {
            recon: f64::from(rec.item()),
            kl_a: f64::from(kl.item()),
            kl_b: None,
            info_nce,
            total: loss,
        }
    }
}

impl Auditable for Acvae {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.all_params())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "ACVAE has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, self.beta, &mut rng).total;
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for Acvae {
    fn name(&self) -> String {
        "ACVAE".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let params = self.all_params();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let anneal = KlAnnealing::new(self.beta, (cfg.epochs as u64 / 4).max(1) * 10);
        let mut step = 0u64;
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let (mut rec_sum, mut kl_sum, mut cl_sum) = (0.0f64, 0.0f64, 0.0f64);
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let terms = self.batch_loss(&g, &batch, anneal.beta(step), &mut rng);
                terms.total.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += terms.total.item() as f64;
                rec_sum += terms.recon;
                kl_sum += terms.kl_a;
                cl_sum += terms.info_nce.unwrap_or(0.0);
                batches += 1;
                step += 1;
            }
            if cfg.verbose {
                let n = batches.max(1) as f64;
                println!(
                    "[ACVAE] epoch {epoch} loss {:.4} (rec {:.4} kl {:.4} cl {:.4})",
                    total / n,
                    rec_sum / n,
                    kl_sum / n,
                    cl_sum / n
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let (mu, _) = self.head.forward(&g, &h);
        let last = TransformerBackbone::last_hidden(&mu);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts() {
        let train: Vec<Vec<usize>> = (0..20)
            .map(|u| (0..8).map(|t| 1 + (u + t) % 6).collect())
            .collect();
        let mut m = Acvae::new(NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            dropout: 0.0,
            ..NetConfig::for_items(6)
        });
        // See duorec.rs: small CL/KL weights on the tiny overlapping-ring
        // dataset so discrimination pressure does not drown the CE task.
        m.gamma = 0.02;
        m.beta = 0.05;
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[3, 4, 5]);
        assert_eq!(s.len(), 7);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 6, "scores {s:?}");
    }
}

//! Sampled softmax: the negative-sampling training objective that breaks
//! the `O(|items|)` full-catalog logits wall.
//!
//! Every tied-softmax model in this repo trains by scoring the hidden
//! state against the *entire* item table (`h · Mᵀ`, Eq. 22) and taking a
//! cross-entropy over all `|V|` columns. That GEMM dominates the step cost
//! as soon as the catalog outgrows the hidden dimension, and caps training
//! at a few hundred items. Sampled softmax replaces the full table with a
//! small shared candidate list per training shard:
//!
//! 1. collect the real (non-padding) targets of the shard,
//! 2. draw `negatives` candidate items from a proposal distribution
//!    ([`NegativeSampler`]), and
//! 3. take the cross-entropy over the union, with each target remapped to
//!    its position in the candidate list.
//!
//! The candidate logits are built from existing registered ops only
//! (`index_select_rows` → `matmul_transb` → `reshape` →
//! `cross_entropy_with_logits`), so the static auditor's shape and
//! gradient-flow passes cover the sampled graph with no new kernels.
//!
//! # Determinism contract
//!
//! Negative draws come from the *same* RNG stream the caller already uses
//! for dropout (the per-shard stream derived by `Executor::shard_seed` in
//! data-parallel training), and are taken after the forward pass consumed
//! its dropout draws. Shard arithmetic therefore stays a pure function of
//! `(seed, shard index)` and the threads=1-vs-N byte-identity contract
//! survives unchanged.
//!
//! # Exactness at the degenerate point
//!
//! With `negatives >= num_items` the candidate list degenerates to the
//! identity `[0, vocab)`: the gather copies the whole table in order, the
//! remap is the identity, and the loss is **bitwise equal** to the full
//! softmax (property-tested in `tests/sampled_props.rs`). This is the
//! correctness anchor for the sampled path.
//!
//! # No logQ correction
//!
//! Classic sampled softmax subtracts `log Q(item)` from each candidate
//! logit to stay an unbiased estimator of the full softmax. We deliberately
//! skip the correction: candidates are deduplicated and shared across the
//! shard (the "shared negatives" scheme of CL4SRec-style recommenders),
//! where the correction's bias trade-off is known to be benign and the
//! uncorrected loss is what the comparison implementations train with. The
//! small-scale convergence gate in `BENCH_9.json` checks the uncorrected
//! objective still reaches full-softmax quality.
//!
//! Padding id 0 is never drawn as a negative and real targets are never 0,
//! so the padding row only enters the candidate list in the degenerate
//! full-catalog case (where full softmax includes it too).

use autograd::{Var, IGNORE_INDEX};
use rand::rngs::StdRng;
use rand::Rng;
use recdata::Batch;
use tensor::bug::OrBug;

/// How the next-item softmax denominator is built during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoftmaxMode {
    /// Full-catalog cross-entropy (the paper's objective, `O(|V|)` per
    /// position).
    #[default]
    Full,
    /// Sampled softmax over the shard's targets plus `negatives` drawn
    /// candidates (`O(targets + negatives)` per position).
    Sampled {
        /// Number of negative draws per shard (with replacement, before
        /// deduplication). Values `>= num_items` degenerate to [`SoftmaxMode::Full`]
        /// arithmetic.
        negatives: usize,
        /// Proposal distribution for the draws.
        sampler: NegativeSampler,
    },
}

impl SoftmaxMode {
    /// `true` when training uses the sampled objective.
    pub fn is_sampled(&self) -> bool {
        matches!(self, SoftmaxMode::Sampled { .. })
    }
}

/// Proposal distribution for negative candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegativeSampler {
    /// Uniform over real items `1..=num_items`.
    #[default]
    Uniform,
    /// Log-uniform (Zipf-like) over `1..=num_items`:
    /// `P(k) ∝ log(1 + 1/k)`, favouring small ids. The standard choice
    /// when item ids are roughly frequency-ranked, and the distribution
    /// TF's `log_uniform_candidate_sampler` implements.
    LogUniform,
}

impl NegativeSampler {
    /// Parses a CLI name (`uniform` | `log-uniform`).
    pub fn parse(s: &str) -> Option<NegativeSampler> {
        match s {
            "uniform" => Some(NegativeSampler::Uniform),
            "log-uniform" | "log_uniform" | "loguniform" => Some(NegativeSampler::LogUniform),
            _ => None,
        }
    }

    /// Draws one candidate item id in `1..=num_items` (never padding 0).
    pub fn draw(self, rng: &mut StdRng, num_items: usize) -> usize {
        match self {
            NegativeSampler::Uniform => rng.gen_range(1..=num_items),
            NegativeSampler::LogUniform => {
                // Inverse-CDF sample of P(k) ∝ log(1 + 1/k) over 1..=n:
                // k = floor(exp(u · ln(n + 1))) ∈ [1, n] for u ∈ [0, 1).
                let u: f64 = rng.gen();
                let k = (u * ((num_items as f64) + 1.0).ln()).exp() as usize;
                k.clamp(1, num_items)
            }
        }
    }
}

/// Flattens a batch's per-position targets row-major, as every
/// cross-entropy caller needs them (`IGNORE_INDEX` at padding).
pub fn flat_targets(batch: &Batch) -> Vec<usize> {
    batch
        .targets
        .iter()
        .flat_map(|row| row.iter().copied())
        .collect()
}

/// Builds the shared candidate list for one training shard, or `None` when
/// `mode` is [`SoftmaxMode::Full`].
///
/// The list is the sorted union of the real targets and `negatives` draws
/// from the sampler (deduplicated), ascending by item id so candidate
/// order — and therefore the loss arithmetic — is independent of draw
/// order. With `negatives >= num_items` it is exactly `[0, num_items]` in
/// order, which makes [`sampled_ce`] bitwise-equal to the full softmax.
pub fn draw_candidates(
    targets: &[usize],
    num_items: usize,
    mode: &SoftmaxMode,
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let &SoftmaxMode::Sampled { negatives, sampler } = mode else {
        return None;
    };
    if negatives >= num_items {
        // Degenerate full-catalog list, including the padding row 0 —
        // identical arithmetic to the full softmax denominator.
        return Some((0..=num_items).collect());
    }
    let mut seen = vec![false; num_items + 1];
    for &t in targets {
        if t != IGNORE_INDEX {
            seen[t] = true;
        }
    }
    for _ in 0..negatives {
        seen[sampler.draw(rng, num_items)] = true;
    }
    Some(
        seen.iter()
            .enumerate()
            .filter_map(|(id, &s)| s.then_some(id))
            .collect(),
    )
}

/// Remaps catalog-id targets to candidate-list positions.
/// `IGNORE_INDEX` (padding) passes through; every real target must appear
/// in `candidates`.
pub fn remap_targets(targets: &[usize], candidates: &[usize], vocab: usize) -> Vec<usize> {
    let mut pos = vec![IGNORE_INDEX; vocab];
    for (i, &c) in candidates.iter().enumerate() {
        pos[c] = i;
    }
    targets
        .iter()
        .map(|&t| {
            if t == IGNORE_INDEX {
                IGNORE_INDEX
            } else {
                let p = pos[t];
                if p == IGNORE_INDEX {
                    // Candidate construction unions the targets in; a miss
                    // here is a bug, not a data condition.
                    None.or_bug("sampled softmax: target missing from candidate list")
                } else {
                    p
                }
            }
        })
        .collect()
}

/// The sampled cross-entropy: gathers the candidate rows of the tied item
/// table, scores the hidden states against them with the fused NT GEMM,
/// and takes the cross-entropy with targets remapped to candidate
/// positions.
///
/// `hidden` is `[.., d]` (rank 2 or 3 — trailing dim must match the
/// table); `table` is the `[vocab, d]` item-embedding var. Mirrors the op
/// order of the full path (`matmul_transb → reshape → cross_entropy`) with
/// one gather inserted, so the identity candidate list reproduces the full
/// loss bit for bit.
pub fn sampled_ce(hidden: &Var, table: &Var, targets: &[usize], candidates: &[usize]) -> Var {
    let vocab = table.dims()[0];
    let sub = table.index_select_rows(candidates); // [C, d]
    let logits = hidden.matmul_transb(&sub); // [.., C]
    let dims = logits.dims();
    let rows: usize = dims[..dims.len() - 1].iter().product();
    let flat = logits.reshape(vec![rows, candidates.len()]);
    flat.cross_entropy_with_logits(&remap_targets(targets, candidates, vocab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samplers_never_draw_padding_and_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for sampler in [NegativeSampler::Uniform, NegativeSampler::LogUniform] {
            for n in [1usize, 2, 7, 1000] {
                for _ in 0..500 {
                    let id = sampler.draw(&mut rng, n);
                    assert!((1..=n).contains(&id), "{sampler:?} drew {id} for n={n}");
                }
            }
        }
    }

    #[test]
    fn log_uniform_favours_small_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1000usize;
        let mut low = 0usize;
        for _ in 0..10_000 {
            if NegativeSampler::LogUniform.draw(&mut rng, n) <= 31 {
                low += 1;
            }
        }
        // P(id <= 31) = ln(32)/ln(1001) ≈ 0.50 under log-uniform vs ~0.03
        // under uniform.
        assert!(
            (4_000..6_000).contains(&low),
            "P(id<=31) draws: {low}/10000"
        );
    }

    #[test]
    fn candidates_cover_targets_sorted_without_padding() {
        let mut rng = StdRng::seed_from_u64(1);
        let targets = vec![5, IGNORE_INDEX, 2, 9, IGNORE_INDEX];
        let mode = SoftmaxMode::Sampled {
            negatives: 4,
            sampler: NegativeSampler::Uniform,
        };
        let c = draw_candidates(&targets, 50, &mode, &mut rng).expect("sampled");
        assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted unique: {c:?}");
        assert!(!c.contains(&0), "padding never a candidate: {c:?}");
        for t in [5, 2, 9] {
            assert!(c.contains(&t), "target {t} missing from {c:?}");
        }
        assert!(c.len() <= 3 + 4);
    }

    #[test]
    fn full_catalog_sample_count_degenerates_to_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mode = SoftmaxMode::Sampled {
            negatives: 10,
            sampler: NegativeSampler::LogUniform,
        };
        let c = draw_candidates(&[1, 2], 10, &mode, &mut rng).expect("sampled");
        assert_eq!(c, (0..=10).collect::<Vec<_>>());
    }

    #[test]
    fn full_mode_draws_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let before = rng.clone().gen::<u64>();
        assert!(draw_candidates(&[1], 10, &SoftmaxMode::Full, &mut rng).is_none());
        assert_eq!(rng.gen::<u64>(), before, "full mode must not consume RNG");
    }

    #[test]
    fn remap_is_positional_and_keeps_ignores() {
        let r = remap_targets(&[7, IGNORE_INDEX, 3], &[3, 5, 7], 8);
        assert_eq!(r, vec![2, IGNORE_INDEX, 0]);
    }
}

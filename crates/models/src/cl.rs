//! Contrastive-learning utilities shared by the CL baselines and Meta-SGCL.

use autograd::Var;
use tensor::Tensor;

/// Similarity function for the InfoNCE logits (the paper's Table VII
/// ablation: dot product vs cosine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Similarity {
    /// Raw inner product (the paper's best choice).
    Dot,
    /// Cosine similarity (L2-normalized inner product).
    Cosine,
}

/// InfoNCE loss between two batches of sequence representations
/// `z, z′ ∈ R^{B×d}` (Eq. 26):
///
/// ```text
/// L = −1/B Σ_u log  exp(sim(z_u, z'_u)/τ)
///                  ─────────────────────────────────────────
///                  exp(sim(z_u, z'_u)/τ) + Σ_{v≠u} exp(sim(z_u, z_v)/τ)
/// ```
///
/// The positive is the same user's second view; negatives are the *other
/// users'* first-view representations, exactly as written in the paper.
/// Returns a scalar var.
pub fn info_nce(z: &Var, z_prime: &Var, tau: f32, sim: Similarity) -> Var {
    info_nce_with_mask(z, z_prime, tau, sim, None)
}

/// [`info_nce`] with *false-negative masking*: when two sequences in the
/// batch share the same ground-truth next item, pushing their
/// representations apart directly fights the recommendation objective, so
/// such pairs are excluded from the negatives (the strategy DuoRec
/// introduced). Pass each sequence's next-item target in `targets`.
pub fn info_nce_masked(
    z: &Var,
    z_prime: &Var,
    tau: f32,
    sim: Similarity,
    targets: &[usize],
) -> Var {
    assert_eq!(targets.len(), z.dims()[0]);
    info_nce_with_mask(z, z_prime, tau, sim, Some(targets))
}

fn info_nce_with_mask(
    z: &Var,
    z_prime: &Var,
    tau: f32,
    sim: Similarity,
    targets: Option<&[usize]>,
) -> Var {
    let b = z.dims()[0];
    assert!(b >= 2, "InfoNCE needs at least 2 sequences for negatives");
    assert_eq!(z.dims(), z_prime.dims());
    let (za, zb) = match sim {
        Similarity::Dot => (z.clone(), z_prime.clone()),
        Similarity::Cosine => (z.l2_normalize_last(1e-8), z_prime.l2_normalize_last(1e-8)),
    };
    // Positive logits: diag(z · z′ᵀ) as a column [B, 1].
    let cross = za.matmul_transb(&zb); // [B, B]
    let eye = identity(b);
    let pos = cross.mul_const(&eye).sum_axis(1, true); // [B, 1]
                                                       // Negative logits: z · zᵀ with the diagonal (self-similarity) and any
                                                       // false negatives masked out.
    let self_sim = za.matmul_transb(&za);
    let mut mask = neg_inf_diag(b);
    if let Some(t) = targets {
        let md = mask.data_mut();
        for u in 0..b {
            for v in 0..b {
                if u != v && t[u] == t[v] {
                    md[u * b + v] = -1e9;
                }
            }
        }
    }
    let neg = self_sim.add_const(&mask); // [B, B]
    let logits = Var::concat(&[&pos, &neg], 1).scale(1.0 / tau); // [B, B+1]
    let ce_targets = vec![0usize; b];
    logits.cross_entropy_with_logits(&ce_targets)
}

fn identity(n: usize) -> Tensor {
    let mut t = Tensor::zeros(vec![n, n]);
    for i in 0..n {
        t.data_mut()[i * n + i] = 1.0;
    }
    t
}

fn neg_inf_diag(n: usize) -> Tensor {
    let mut t = Tensor::zeros(vec![n, n]);
    for i in 0..n {
        t.data_mut()[i * n + i] = -1e9;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::{Graph, Parameter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::init;

    #[test]
    fn aligned_views_give_low_loss() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        // Well-separated representations; z' identical to z.
        let zt = init::randn(&mut rng, vec![8, 16], 0.0, 3.0);
        let z = g.constant(zt.clone());
        let zp = g.constant(zt);
        let aligned = info_nce(&z, &zp, 1.0, Similarity::Cosine).item();
        // Misaligned: z' is a shuffled copy.
        let mut shuffled = z.value();
        let d = 16;
        let data = shuffled.data_mut();
        data.rotate_left(d); // shift every row by one user
        let zp_bad = g.constant(shuffled);
        let misaligned = info_nce(&z, &zp_bad, 1.0, Similarity::Cosine).item();
        assert!(
            aligned < misaligned,
            "aligned {aligned} should beat misaligned {misaligned}"
        );
    }

    #[test]
    fn loss_is_positive_and_finite() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let z = g.constant(init::randn(&mut rng, vec![4, 8], 0.0, 1.0));
        let zp = g.constant(init::randn(&mut rng, vec![4, 8], 0.0, 1.0));
        for sim in [Similarity::Dot, Similarity::Cosine] {
            for tau in [0.1f32, 1.0, 5.0] {
                let l = info_nce(&z, &zp, tau, sim).item();
                assert!(l.is_finite() && l > 0.0, "loss {l} (tau={tau})");
            }
        }
    }

    #[test]
    fn gradient_pulls_views_together() {
        // One gradient step on InfoNCE should increase the positive-pair
        // similarity.
        let mut rng = StdRng::seed_from_u64(2);
        let p = Parameter::shared("z", init::randn(&mut rng, vec![4, 6], 0.0, 1.0));
        let zp_t = init::randn(&mut rng, vec![4, 6], 0.0, 1.0);
        let before = {
            let g = Graph::new();
            let z = g.param(&p);
            let zp = g.constant(zp_t.clone());
            let loss = info_nce(&z, &zp, 1.0, Similarity::Dot);
            loss.backward();
            loss.item()
        };
        {
            let grad = p.borrow().grad.clone();
            p.borrow_mut().value.axpy(-0.1, &grad);
        }
        let after = {
            let g = Graph::new();
            let z = g.param(&p);
            let zp = g.constant(zp_t);
            info_nce(&z, &zp, 1.0, Similarity::Dot).item()
        };
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn gradcheck_infonce() {
        use autograd::numeric::assert_grads_close;
        let mut rng = StdRng::seed_from_u64(3);
        let z = Parameter::shared("z", init::uniform(&mut rng, vec![3, 4], -1.0, 1.0));
        let zp = Parameter::shared("zp", init::uniform(&mut rng, vec![3, 4], -1.0, 1.0));
        assert_grads_close(&[z.clone(), zp.clone()], 1e-3, 3e-2, |g| {
            info_nce(&g.param(&z), &g.param(&zp), 0.5, Similarity::Cosine)
        });
    }
}

//! BPR-MF: Bayesian Personalized Ranking matrix factorization
//! (Rendle et al., UAI 2009).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recdata::ItemId;
use tensor::{init, Tensor};

use crate::{SequentialRecommender, TrainConfig};

/// Matrix factorization trained with the pairwise BPR objective:
/// for each observed `(u, i)` and sampled negative `j`,
/// maximize `ln σ(x̂_ui − x̂_uj)` with L2 regularization.
///
/// Gradients are hand-derived (the classic SGD formulation) — no autograd
/// needed for a bilinear model, and this keeps the baseline fast.
pub struct BprMf {
    num_items: usize,
    dim: usize,
    reg: f32,
    user_factors: Tensor,
    item_factors: Tensor,
    rng_seed: u64,
    num_users: usize,
}

impl BprMf {
    /// Creates a BPR-MF model with `dim` latent factors.
    pub fn new(num_items: usize, dim: usize) -> Self {
        BprMf {
            num_items,
            dim,
            reg: 1e-4,
            user_factors: Tensor::zeros(vec![1, dim]),
            item_factors: Tensor::zeros(vec![num_items + 1, dim]),
            rng_seed: 0,
            num_users: 0,
        }
    }

    fn dot(u: &[f32], v: &[f32]) -> f32 {
        u.iter().zip(v.iter()).map(|(a, b)| a * b).sum()
    }
}

impl SequentialRecommender for BprMf {
    fn name(&self) -> String {
        "BPR-MF".into()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        self.rng_seed = cfg.seed;
        self.num_users = train.len();
        self.user_factors = init::randn(&mut rng, vec![train.len(), self.dim], 0.0, 0.1);
        self.item_factors = init::randn(&mut rng, vec![self.num_items + 1, self.dim], 0.0, 0.1);

        // Flatten observations and membership sets.
        let mut triples: Vec<(usize, ItemId)> = Vec::new();
        let mut seen: Vec<std::collections::HashSet<ItemId>> = Vec::with_capacity(train.len());
        for (u, seq) in train.iter().enumerate() {
            for &it in seq {
                triples.push((u, it));
            }
            seen.push(seq.iter().copied().collect());
        }
        if triples.is_empty() {
            return;
        }

        let lr = cfg.lr.max(5e-3); // BPR-SGD benefits from a larger rate
        for _epoch in 0..cfg.epochs {
            for _ in 0..triples.len() {
                let &(u, i) = &triples[rng.gen_range(0..triples.len())];
                // Rejection-sample a negative.
                let mut j = rng.gen_range(1..=self.num_items);
                let mut guard = 0;
                while seen[u].contains(&j) && guard < 20 {
                    j = rng.gen_range(1..=self.num_items);
                    guard += 1;
                }
                let xu = self.user_factors.row(u).to_vec();
                let xi = self.item_factors.row(i).to_vec();
                let xj = self.item_factors.row(j).to_vec();
                let x_uij = Self::dot(&xu, &xi) - Self::dot(&xu, &xj);
                let sig = 1.0 / (1.0 + x_uij.exp()); // σ(−x̂)
                let reg = self.reg;
                {
                    let u_row = self.user_factors.row_mut(u);
                    for k in 0..self.dim {
                        u_row[k] += lr * (sig * (xi[k] - xj[k]) - reg * u_row[k]);
                    }
                }
                {
                    let i_row = self.item_factors.row_mut(i);
                    for k in 0..self.dim {
                        i_row[k] += lr * (sig * xu[k] - reg * i_row[k]);
                    }
                }
                {
                    let j_row = self.item_factors.row_mut(j);
                    for k in 0..self.dim {
                        j_row[k] += lr * (-sig * xu[k] - reg * j_row[k]);
                    }
                }
            }
        }
    }

    fn score(&mut self, user: usize, _seq: &[ItemId]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.num_items + 1];
        if user >= self.num_users {
            return out;
        }
        let xu = self.user_factors.row(user);
        for (i, o) in out.iter_mut().enumerate().skip(1) {
            *o = Self::dot(xu, self.item_factors.row(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_user_item_affinity() {
        // Users 0,1 like items 1-3; users 2,3 like items 4-6.
        let train = vec![
            vec![1, 2, 3, 1, 2],
            vec![2, 3, 1, 3, 2],
            vec![4, 5, 6, 4, 5],
            vec![5, 6, 4, 6, 5],
        ];
        let mut m = BprMf::new(6, 8);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            seed: 1,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        // User 0 should prefer item 3 (seen cluster) over item 6.
        let s0 = m.score(0, &[]);
        let best_own: f32 = (1..=3).map(|i| s0[i]).fold(f32::NEG_INFINITY, f32::max);
        let best_other: f32 = (4..=6).map(|i| s0[i]).fold(f32::NEG_INFINITY, f32::max);
        assert!(
            best_own > best_other,
            "own {best_own} vs other {best_other}"
        );
        // Symmetric check for user 2.
        let s2 = m.score(2, &[]);
        let own2: f32 = (4..=6).map(|i| s2[i]).sum();
        let other2: f32 = (1..=3).map(|i| s2[i]).sum();
        assert!(own2 > other2);
    }

    #[test]
    fn unknown_user_gets_zero_scores() {
        let mut m = BprMf::new(3, 4);
        m.fit(
            &[vec![1, 2]],
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let s = m.score(99, &[]);
        assert!(s.iter().all(|&x| x == 0.0));
    }
}

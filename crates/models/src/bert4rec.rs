//! BERT4Rec (Sun et al., CIKM 2019): bidirectional Transformer trained
//! with masked-item prediction (Cloze objective).

use autograd::{Graph, IGNORE_INDEX};
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use recdata::{encode_input_only, ItemId};

use crate::audit::{Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::sasrec::NetConfig;
use crate::{SequentialRecommender, TrainConfig};

/// The BERT4Rec model. Vocabulary is `num_items + 2`: padding (0), items
/// (`1..=N`) and the `[mask]` token (`N + 1`).
pub struct Bert4Rec {
    backbone: TransformerBackbone,
    net: NetConfig,
    mask_prob: f64,
    rng: StdRng,
}

impl Bert4Rec {
    /// Builds an untrained BERT4Rec with mask probability 0.2 (the paper's
    /// masked-item training scheme).
    pub fn new(net: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "bert4rec",
            net.num_items + 2,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            false, // bidirectional
        );
        Bert4Rec {
            backbone,
            net,
            mask_prob: 0.2,
            rng,
        }
    }

    fn mask_token(&self) -> ItemId {
        self.net.num_items + 1
    }

    /// Cloze loss over a chunk of sequences: randomly masks positions
    /// (always at least the final one) and predicts the masked items.
    /// Shared by [`SequentialRecommender::fit`] and the static auditor.
    fn cloze_loss(&self, g: &Graph, seqs: &[&Vec<ItemId>], rng: &mut StdRng) -> autograd::Var {
        let mask_token = self.mask_token();
        let mut inputs = Vec::with_capacity(seqs.len());
        let mut pads = Vec::with_capacity(seqs.len());
        let mut targets: Vec<usize> = Vec::with_capacity(seqs.len() * self.net.max_len);
        for seq in seqs {
            let (mut input, pad) = encode_input_only(seq, self.net.max_len);
            let mut row_targets = vec![IGNORE_INDEX; self.net.max_len];
            let mut masked_any = false;
            for (t, is_pad) in pad.iter().enumerate() {
                if *is_pad {
                    continue;
                }
                if rng.gen::<f64>() < self.mask_prob {
                    row_targets[t] = input[t];
                    input[t] = mask_token;
                    masked_any = true;
                }
            }
            if !masked_any {
                // Always mask the final position so every sequence
                // contributes (also matches the inference pattern).
                let t = self.net.max_len - 1;
                row_targets[t] = input[t];
                input[t] = mask_token;
            }
            inputs.push(input);
            pads.push(pad);
            targets.extend(row_targets);
        }
        let h = self.backbone.forward(g, &inputs, &pads, rng, true);
        let logits = self.backbone.scores(g, &h);
        let flat = logits.reshape(vec![inputs.len() * self.net.max_len, self.backbone.vocab()]);
        flat.cross_entropy_with_logits(&targets)
    }
}

impl Auditable for Bert4Rec {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.backbone.parameters())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "BERT4Rec has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let usable: Vec<&Vec<ItemId>> = seqs.iter().filter(|s| s.len() >= 2).collect();
        assert!(!usable.is_empty(), "audit sequences too short for BERT4Rec");
        let g = Graph::new();
        let loss = self.cloze_loss(&g, &usable, &mut rng);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for Bert4Rec {
    fn name(&self) -> String {
        "BERT4Rec".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let usable: Vec<&Vec<ItemId>> = train.iter().filter(|s| s.len() >= 2).collect();
        if usable.is_empty() {
            return;
        }
        let params = self.backbone.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let mut order: Vec<usize> = (0..usable.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let seqs: Vec<&Vec<ItemId>> = chunk.iter().map(|&i| usable[i]).collect();
                let g = Graph::new();
                let loss = self.cloze_loss(&g, &seqs, &mut rng);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[BERT4Rec] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        // Append [mask] and read the prediction at that position.
        let mut extended = seq.to_vec();
        extended.push(self.mask_token());
        let (input, pad) = encode_input_only(&extended, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let last = TransformerBackbone::last_hidden(&h);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_cloze_completion() {
        let mut train = Vec::new();
        for _ in 0..20 {
            train.push(vec![1, 2, 3, 4, 5, 6]);
        }
        let mut m = Bert4Rec::new(NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            dropout: 0.0,
            ..NetConfig::for_items(6)
        });
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[1, 2, 3, 4, 5]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 6, "scores {s:?}");
    }

    #[test]
    fn score_excludes_mask_token() {
        let mut m = Bert4Rec::new(NetConfig {
            dim: 8,
            layers: 1,
            ..NetConfig::for_items(5)
        });
        // scores truncated to num_items + 1 even though vocab has the mask.
        assert_eq!(m.score(0, &[1]).len(), 6);
    }
}

//! Caser (Tang & Wang, WSDM 2018): convolutional sequence embedding.
//!
//! Horizontal filters slide over the last `L` item embeddings to capture
//! union-level patterns; vertical filters form weighted sums over the
//! window. Simplifications at reproduction scale (documented in DESIGN.md):
//! no separate user embedding (sequence-only variant, comparable with the
//! other sequence models) and mean-pooling instead of max-pooling over
//! horizontal windows (autograd-friendly and behaviourally close at small
//! `L`).

use autograd::{Graph, ParamRef, Var};
use nn::{Embedding, Linear, Module};
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recdata::{ItemId, PAD_ITEM};
use tensor::bug::OrBug;

use crate::audit::{Auditable, StageContract, StageTrace};
use crate::{SequentialRecommender, TrainConfig};

/// The Caser model.
pub struct Caser {
    item_emb: Embedding,
    /// One horizontal filter bank per height: `[h·d, n_filters]`.
    horizontal: Vec<(usize, Linear)>,
    /// Vertical filter: `[L, n_vertical]` mixing the window rows.
    vertical: Linear,
    fc: Linear,
    num_items: usize,
    window: usize,
    dim: usize,
    n_vertical: usize,
    rng: StdRng,
}

impl Caser {
    /// Builds Caser with window length `window` (the `L` of the paper).
    pub fn new(num_items: usize, window: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_filters = 4usize;
        let n_vertical = 2usize;
        let heights: Vec<usize> = [2usize, 3, 4]
            .into_iter()
            .filter(|&h| h <= window)
            .collect();
        let horizontal = heights
            .iter()
            .map(|&h| {
                (
                    h,
                    Linear::new(&mut rng, &format!("caser.h{h}"), h * dim, n_filters, true),
                )
            })
            .collect::<Vec<_>>();
        let conv_out = n_filters * horizontal.len() + n_vertical * dim;
        Caser {
            item_emb: Embedding::new(&mut rng, "caser.item", num_items + 1, dim),
            horizontal,
            vertical: Linear::new(&mut rng, "caser.v", window, n_vertical, false),
            fc: Linear::new(&mut rng, "caser.fc", conv_out, dim, true),
            num_items,
            window,
            dim,
            n_vertical,
            rng,
        }
    }

    fn parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.item_emb.parameters();
        for (_, l) in &self.horizontal {
            ps.extend(l.parameters());
        }
        ps.extend(self.vertical.parameters());
        ps.extend(self.fc.parameters());
        ps
    }

    /// Sequence representation for a batch of fixed windows `[b, L]`.
    fn seq_repr(&self, g: &Graph, windows: &[Vec<ItemId>]) -> Var {
        let b = windows.len();
        let e = self.item_emb.forward_batch(g, windows); // [b, L, d]
        let mut feats: Vec<Var> = Vec::new();
        // Horizontal convolutions with mean pooling over window positions.
        for (h, filt) in &self.horizontal {
            let mut pooled: Option<Var> = None;
            let positions = self.window - h + 1;
            for t in 0..positions {
                let win = e.slice_axis(1, t, t + h).reshape(vec![b, h * self.dim]);
                let act = filt.forward(g, &win).relu();
                pooled = Some(match pooled {
                    Some(p) => p.add(&act),
                    None => act,
                });
            }
            feats.push(pooled.or_bug("window >= h").scale(1.0 / positions as f32));
        }
        // Vertical convolution: weighted sums over rows.
        let et = e.permute(&[0, 2, 1]); // [b, d, L]
        let v = self.vertical.forward(g, &et); // [b, d, n_vertical]
        feats.push(v.reshape(vec![b, self.dim * self.n_vertical]));
        let refs: Vec<&Var> = feats.iter().collect();
        let cat = Var::concat(&refs, 1);
        self.fc.forward(g, &cat).relu()
    }

    /// Full-catalog cross-entropy over a chunk of `(window, target)`
    /// examples. Shared by [`SequentialRecommender::fit`] and the static
    /// auditor.
    fn chunk_loss(&self, g: &Graph, chunk: &[(Vec<ItemId>, usize)]) -> Var {
        let windows: Vec<Vec<ItemId>> = chunk.iter().map(|(w, _)| w.clone()).collect();
        let targets: Vec<usize> = chunk.iter().map(|(_, t)| *t).collect();
        let z = self.seq_repr(g, &windows);
        let logits = z.matmul_transb(&self.item_emb.full(g));
        logits.cross_entropy_with_logits(&targets)
    }

    /// Sliding-window training examples for the given sequences.
    fn examples_of(&self, train: &[Vec<ItemId>]) -> Vec<(Vec<ItemId>, usize)> {
        let mut examples: Vec<(Vec<ItemId>, usize)> = Vec::new();
        for seq in train {
            for t in 0..seq.len().saturating_sub(1) {
                let window = self.window_of(&seq[..=t]);
                examples.push((window, seq[t + 1]));
            }
        }
        examples
    }

    /// Last `window` items of `seq`, left-padded to the window size.
    fn window_of(&self, seq: &[ItemId]) -> Vec<ItemId> {
        let keep = if seq.len() > self.window {
            &seq[seq.len() - self.window..]
        } else {
            seq
        };
        let mut w = vec![PAD_ITEM; self.window - keep.len()];
        w.extend_from_slice(keep);
        w
    }
}

impl Auditable for Caser {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.parameters())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], _seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "Caser has a single `full` stage");
        let examples = self.examples_of(seqs);
        assert!(!examples.is_empty(), "audit sequences too short for Caser");
        let g = Graph::new();
        let loss = self.chunk_loss(&g, &examples);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for Caser {
    fn name(&self) -> String {
        "Caser".into()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Sliding-window examples: (last-L window ending at t, target t+1).
        let mut examples = self.examples_of(train);
        if examples.is_empty() {
            return;
        }
        let params = self.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        for epoch in 0..cfg.epochs {
            examples.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in examples.chunks(cfg.batch_size) {
                let g = Graph::new();
                let loss = self.chunk_loss(&g, chunk);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[Caser] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        let window = self.window_of(seq);
        let g = Graph::new();
        let z = self.seq_repr(&g, &[window]);
        let logits = z.matmul_transb(&self.item_emb.full(&g)).value();
        let _ = &mut self.rng;
        logits.row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_extraction() {
        let m = Caser::new(9, 4, 8, 0);
        assert_eq!(m.window_of(&[1, 2]), vec![0, 0, 1, 2]);
        assert_eq!(m.window_of(&[1, 2, 3, 4, 5, 6]), vec![3, 4, 5, 6]);
    }

    #[test]
    fn learns_short_patterns() {
        let mut train = Vec::new();
        for _ in 0..16 {
            train.push(vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
            train.push(vec![4, 5, 6, 4, 5, 6, 4, 5, 6]);
        }
        let mut m = Caser::new(6, 4, 16, 1);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[1, 2]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3, "after [1,2] expect 3; scores {s:?}");
    }

    #[test]
    fn score_shape() {
        let mut m = Caser::new(7, 3, 8, 0);
        assert_eq!(m.score(0, &[1]).len(), 8);
        assert_eq!(m.score(0, &[]).len(), 8);
    }
}

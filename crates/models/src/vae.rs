//! Shared variational machinery: Gaussian heads, the reparameterization
//! trick (Eq. 12), and the closed-form KL divergence (Eqs. 24–25).

use autograd::{Graph, ParamRef, Var};
use nn::{Linear, Module};
use rand::rngs::StdRng;
use tensor::{init, Tensor};

/// Samples `ε ~ N(0, I)` with the shape of `dims`.
pub fn standard_normal_like(dims: &[usize], rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims.to_vec());
    for x in t.data_mut() {
        *x = init::sample_standard_normal(rng);
    }
    t
}

/// Reparameterization trick: `z = μ + σ ⊙ ε` with `σ = exp(½·logvar)`.
///
/// When `deterministic` is true (inference), returns `μ` unchanged.
pub fn reparameterize(mu: &Var, logvar: &Var, rng: &mut StdRng, deterministic: bool) -> Var {
    if deterministic {
        return mu.clone();
    }
    let sigma = logvar.scale(0.5).exp();
    let eps = standard_normal_like(&mu.dims(), rng);
    mu.add(&sigma.mul_const(&eps))
}

/// Closed-form Gaussian KL to the standard normal prior (Eq. 24):
/// `½ (σ² + μ² − 1 − log σ²)`, *averaged* over every element (including the
/// latent dimension). Always ≥ 0.
///
/// Averaging rather than summing over the latent dimension keeps the KL
/// magnitude comparable to the per-token cross-entropy at any `d`, so the
/// paper's β range (0.1–0.5) transfers to the reproduction scale.
pub fn gaussian_kl(mu: &Var, logvar: &Var) -> Var {
    let term = logvar.exp().add(&mu.square()).add_scalar(-1.0).sub(logvar);
    term.scale(0.5).mean_all()
}

/// Per-term decomposition of one batch's VAE-family objective.
///
/// `total` stays on the tape and is what callers backpropagate through; the
/// per-term scalars are plain `item()` reads of already-computed forward
/// values, recorded *unweighted* (before β/α scaling) so telemetry shows the
/// raw magnitude of each term. Terms a model does not have — a second-view
/// KL for single-view models, InfoNCE when the batch is too small for
/// in-batch negatives — are `None`.
pub struct LossTerms {
    /// The full weighted objective, on the tape.
    pub total: Var,
    /// Reconstruction cross-entropy.
    pub recon: f64,
    /// KL of the first latent view (`Enc_σ`).
    pub kl_a: f64,
    /// KL of the second latent view, when the model has one.
    pub kl_b: Option<f64>,
    /// Unweighted InfoNCE contrastive term, when present.
    pub info_nce: Option<f64>,
}

/// A Gaussian posterior head: two linear maps producing `μ` and `log σ²`
/// from encoder features (the paper's `Enc_μ` and `Enc_σ`, Eq. 11).
pub struct VaeHead {
    enc_mu: Linear,
    enc_logvar: Linear,
}

impl VaeHead {
    /// Creates the two linear heads `dim → dim`.
    ///
    /// The log-variance bias starts at −4 (σ ≈ 0.14) so early training is
    /// not drowned by reparameterization noise; the KL term pulls σ toward
    /// the prior as training progresses.
    pub fn new(rng: &mut StdRng, name: &str, dim: usize) -> Self {
        let enc_logvar = Linear::new(rng, &format!("{name}.logvar"), dim, dim, true);
        enc_logvar.parameters()[1].borrow_mut().value = Tensor::full(vec![dim], -4.0);
        VaeHead {
            enc_mu: Linear::new(rng, &format!("{name}.mu"), dim, dim, true),
            enc_logvar,
        }
    }

    /// Computes `(μ, logvar)` from features `h`.
    pub fn forward(&self, g: &Graph, h: &Var) -> (Var, Var) {
        // Clamp logvar for numerical stability of exp().
        (
            self.enc_mu.forward(g, h),
            self.enc_logvar.forward(g, h).clamp(-8.0, 8.0),
        )
    }

    /// The `μ` head's parameters.
    pub fn mu_parameters(&self) -> Vec<ParamRef> {
        self.enc_mu.parameters()
    }

    /// The `log σ²` head's parameters.
    pub fn logvar_parameters(&self) -> Vec<ParamRef> {
        self.enc_logvar.parameters()
    }
}

impl Module for VaeHead {
    fn parameters(&self) -> Vec<ParamRef> {
        let mut ps = self.enc_mu.parameters();
        ps.extend(self.enc_logvar.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kl_zero_at_prior() {
        let g = Graph::new();
        let mu = g.constant(Tensor::zeros(vec![4, 8]));
        let logvar = g.constant(Tensor::zeros(vec![4, 8]));
        assert!(gaussian_kl(&mu, &logvar).item().abs() < 1e-6);
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let g = Graph::new();
        let mu = g.constant(Tensor::full(vec![4, 8], 1.0));
        let logvar = g.constant(Tensor::zeros(vec![4, 8]));
        // ½·(1+1−1−0) = ½ per element.
        let kl = gaussian_kl(&mu, &logvar).item();
        assert!((kl - 0.5).abs() < 1e-5, "kl {kl}");
    }

    #[test]
    fn kl_known_value_for_variance() {
        let g = Graph::new();
        let mu = g.constant(Tensor::zeros(vec![1, 1]));
        let logvar = g.constant(Tensor::full(vec![1, 1], 2.0f32.ln()));
        // ½(σ² − 1 − ln σ²) = ½(2 − 1 − ln 2) ≈ 0.1534
        let kl = gaussian_kl(&mu, &logvar).item();
        assert!((kl - 0.5 * (2.0 - 1.0 - 2.0f32.ln())).abs() < 1e-5);
    }

    #[test]
    fn reparameterize_statistics() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mu = g.constant(Tensor::full(vec![1000, 4], 2.0));
        let logvar = g.constant(Tensor::full(vec![1000, 4], (0.25f32).ln())); // σ = 0.5
        let z = reparameterize(&mu, &logvar, &mut rng, false).value();
        let mean = z.mean_all();
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        let var = z
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (z.numel() - 1) as f32;
        assert!((var - 0.25).abs() < 0.03, "var {var}");
        // Deterministic mode returns μ.
        let zd = reparameterize(&mu, &logvar, &mut rng, true).value();
        assert!(zd.data().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn head_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(1);
        let head = VaeHead::new(&mut rng, "vae", 6);
        let g = Graph::new();
        let h = g.constant(init::randn(&mut rng, vec![3, 6], 0.0, 1.0));
        let (mu, logvar) = head.forward(&g, &h);
        assert_eq!(mu.dims(), vec![3, 6]);
        assert_eq!(logvar.dims(), vec![3, 6]);
        let loss = gaussian_kl(&mu, &logvar);
        loss.backward();
        for p in head.parameters() {
            assert!(p.borrow().grad.norm() > 0.0);
        }
        assert_eq!(head.mu_parameters().len(), 2);
        assert_eq!(head.logvar_parameters().len(), 2);
    }
}

//! SASRec (Kang & McAuley, ICDM 2018): causal self-attention trained with
//! per-position next-item cross-entropy over the full catalog.

use autograd::Graph;
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{encode_input_only, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::sampled::{self, NegativeSampler, SoftmaxMode};
use crate::{SequentialRecommender, TrainConfig};

/// Architecture hyper-parameters shared by the attention-based models.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Catalog size (item ids `1..=num_items`).
    pub num_items: usize,
    /// Padded sequence length `T`.
    pub max_len: usize,
    /// Embedding dimension `d` (paper default 64; reproduction default 32).
    pub dim: usize,
    /// Attention heads (paper default 2).
    pub heads: usize,
    /// Encoder layers (paper default 2).
    pub layers: usize,
    /// Dropout rate (paper default 0.2).
    pub dropout: f32,
    /// Initialization seed.
    pub seed: u64,
}

impl NetConfig {
    /// Reproduction-scale defaults for a given catalog.
    pub fn for_items(num_items: usize) -> Self {
        NetConfig {
            num_items,
            max_len: 20,
            dim: 32,
            heads: 2,
            layers: 2,
            dropout: 0.2,
            seed: 42,
        }
    }
}

/// The SASRec model.
pub struct SasRec {
    backbone: TransformerBackbone,
    net: NetConfig,
    rng: StdRng,
}

impl SasRec {
    /// Builds an untrained SASRec.
    pub fn new(net: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "sasrec",
            net.num_items + 1,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            true,
        );
        SasRec { backbone, net, rng }
    }

    /// Access to the backbone (embedding analytics, Fig. 6).
    pub fn backbone(&self) -> &TransformerBackbone {
        &self.backbone
    }

    /// Builds the per-position next-item cross-entropy loss for one batch —
    /// full-catalog or sampled-softmax according to `softmax`. Shared by
    /// [`SequentialRecommender::fit`] and the static auditor.
    ///
    /// Negative candidates (sampled mode) are drawn from `rng` *after* the
    /// forward pass consumed its dropout draws, keeping the stream layout
    /// of full-softmax runs as a prefix.
    fn batch_loss(
        &self,
        g: &Graph,
        batch: &Batch,
        softmax: &SoftmaxMode,
        rng: &mut StdRng,
    ) -> autograd::Var {
        let h = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let targets = sampled::flat_targets(batch);
        match sampled::draw_candidates(&targets, self.net.num_items, softmax, rng) {
            Some(cands) => {
                sampled::sampled_ce(&h, &self.backbone.item_table_var(g), &targets, &cands)
            }
            None => {
                let logits = self.backbone.scores(g, &h); // [b, n, V]
                let (b, n) = (batch.len(), batch.seq_len());
                let flat = logits.reshape(vec![b * n, self.backbone.vocab()]);
                flat.cross_entropy_with_logits(&targets)
            }
        }
    }
}

impl Auditable for SasRec {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        // The `sampled` stage audits the sampled-softmax graph (gather +
        // candidate-subset GEMM): same reach contract — every parameter
        // still receives gradient through the candidate rows.
        vec![
            StageContract::full(self.backbone.parameters()),
            StageContract {
                stage: "sampled".into(),
                reached: self.backbone.parameters(),
                frozen: Vec::new(),
            },
        ]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        let softmax = match stage {
            "full" => SoftmaxMode::Full,
            "sampled" => SoftmaxMode::Sampled {
                negatives: 4,
                sampler: NegativeSampler::Uniform,
            },
            other => panic!("SASRec has stages `full` and `sampled`, not `{other}`"),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, &softmax, &mut rng);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for SasRec {
    fn name(&self) -> String {
        "SASRec".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let params = self.backbone.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let loss = self.batch_loss(&g, &batch, &cfg.softmax, &mut rng);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[SASRec] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let last = TransformerBackbone::last_hidden(&h);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic ring dataset: item i is always followed by i+1.
    fn ring_data(num_items: usize, users: usize, len: usize) -> Vec<Vec<ItemId>> {
        (0..users)
            .map(|u| (0..len).map(|t| 1 + (u + t) % num_items).collect())
            .collect()
    }

    #[test]
    fn learns_deterministic_transitions() {
        let train = ring_data(8, 24, 10);
        let mut m = SasRec::new(NetConfig {
            max_len: 10,
            dim: 16,
            layers: 1,
            dropout: 0.0,
            ..NetConfig::for_items(8)
        });
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        // After item 3, item 4 must be the argmax.
        let scores = m.score(0, &[1, 2, 3]);
        let best = scores
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 4, "scores {scores:?}");
        // Ring wrap: after 8 comes 1.
        let scores = m.score(0, &[6, 7, 8]);
        let best = scores
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 1);
    }

    #[test]
    fn score_length_and_empty_seq() {
        let mut m = SasRec::new(NetConfig {
            dim: 8,
            layers: 1,
            ..NetConfig::for_items(5)
        });
        assert_eq!(m.score(0, &[1, 2]).len(), 6);
        assert_eq!(m.score(0, &[]).len(), 6);
    }
}

//! Popularity baseline.

use recdata::ItemId;

use crate::{SequentialRecommender, TrainConfig};

/// Non-personalized popularity recommender: scores every item by its total
/// interaction count in the training data.
pub struct Pop {
    num_items: usize,
    counts: Vec<f32>,
}

impl Pop {
    /// Creates an untrained Pop model over `num_items` items.
    pub fn new(num_items: usize) -> Self {
        Pop {
            num_items,
            counts: vec![0.0; num_items + 1],
        }
    }
}

impl SequentialRecommender for Pop {
    fn name(&self) -> String {
        "Pop".into()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], _cfg: &TrainConfig) {
        self.counts = vec![0.0; self.num_items + 1];
        for seq in train {
            for &it in seq {
                self.counts[it] += 1.0;
            }
        }
        self.counts[0] = 0.0;
    }

    fn score(&mut self, _user: usize, _seq: &[ItemId]) -> Vec<f32> {
        self.counts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_frequency() {
        let mut m = Pop::new(3);
        m.fit(&[vec![1, 2, 2], vec![2, 3]], &TrainConfig::default());
        let s = m.score(0, &[]);
        assert!(s[2] > s[1]);
        assert!(s[2] > s[3]);
        assert_eq!(s[0], 0.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn refit_resets_counts() {
        let mut m = Pop::new(2);
        m.fit(&[vec![1, 1, 1]], &TrainConfig::default());
        m.fit(&[vec![2]], &TrainConfig::default());
        let s = m.score(0, &[]);
        assert_eq!(s[1], 0.0);
        assert_eq!(s[2], 1.0);
    }
}

//! GRU4Rec (Hidasi et al., ICLR 2016): GRU over item embeddings with a
//! tied-softmax next-item objective.
//!
//! Simplification vs. the original: we train with full-catalog
//! cross-entropy per position instead of session-parallel mini-batches with
//! ranking losses — the standard modern formulation (also used by the
//! paper's comparison framework).

use autograd::Graph;
use nn::{Embedding, Gru, Module};
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{encode_input_only, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, ParityCheck, StageContract, StageTrace};
use crate::sampled::{self, SoftmaxMode};
use crate::{SequentialRecommender, TrainConfig};

/// The GRU4Rec model.
pub struct Gru4Rec {
    pub(crate) item_emb: Embedding,
    pub(crate) gru: Gru,
    pub(crate) num_items: usize,
    pub(crate) max_len: usize,
    rng: StdRng,
}

impl Gru4Rec {
    /// Builds an untrained GRU4Rec with embedding/hidden size `dim`.
    pub fn new(num_items: usize, max_len: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Gru4Rec {
            item_emb: Embedding::new(&mut rng, "gru4rec.item", num_items + 1, dim),
            gru: Gru::new(&mut rng, "gru4rec.gru", dim),
            num_items,
            max_len,
            rng,
        }
    }

    fn parameters(&self) -> Vec<autograd::ParamRef> {
        let mut ps = self.item_emb.parameters();
        ps.extend(self.gru.parameters());
        ps
    }

    /// Catalog scores over the *unpadded* sequence: the recurrence starts
    /// from `h = 0` at the first real item, with no left-pad prefix steps.
    /// These are the semantics the incremental serving path caches under —
    /// appending an item is exactly one more GRU step — and unlike the
    /// padded [`SequentialRecommender::score`] they work through `&self`
    /// and have no length cap.
    pub fn score_unpadded(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        let g = Graph::new();
        let x = self
            .item_emb
            .forward_batch(&g, std::slice::from_ref(&seq.to_vec()));
        let h = self.gru.forward_sequence(&g, &x);
        let dims = h.dims();
        let last = h
            .slice_axis(1, dims[1] - 1, dims[1])
            .reshape(vec![1, dims[2]]);
        let logits = last.matmul_transb(&self.item_emb.full(&g)).value();
        logits.row(0).to_vec()
    }

    /// Builds the padded scoring graph (the trait `score` semantics: last
    /// `max_len` items, left-padded) and returns the tape plus the
    /// last-position logits head. Shared by [`SequentialRecommender::score`]
    /// and the frozen-parity audit, so the audited tape is the real
    /// serving-reference forward.
    fn score_graph(&self, seq: &[ItemId]) -> (Graph, autograd::Var) {
        let (input, _pad) = encode_input_only(seq, self.max_len);
        let g = Graph::new();
        let x = self.item_emb.forward_batch(&g, &[input]);
        let h = self.gru.forward_sequence(&g, &x);
        let dims = h.dims();
        let last = h
            .slice_axis(1, dims[1] - 1, dims[1])
            .reshape(vec![1, dims[2]]);
        let logits = last.matmul_transb(&self.item_emb.full(&g));
        (g, logits)
    }

    /// Tied-softmax next-item loss for one batch — full-catalog or
    /// sampled-softmax according to `softmax`. Shared by
    /// [`SequentialRecommender::fit`] and the static auditor.
    fn batch_loss(
        &self,
        g: &Graph,
        batch: &Batch,
        softmax: &SoftmaxMode,
        rng: &mut StdRng,
    ) -> autograd::Var {
        let x = self.item_emb.forward_batch(g, &batch.inputs);
        let h = self.gru.forward_sequence(g, &x); // [b, n, d]
        let targets = sampled::flat_targets(batch);
        match sampled::draw_candidates(&targets, self.num_items, softmax, rng) {
            Some(cands) => sampled::sampled_ce(&h, &self.item_emb.full(g), &targets, &cands),
            None => {
                let logits = h.matmul_transb(&self.item_emb.full(g));
                let (b, n) = (batch.len(), batch.seq_len());
                let flat = logits.reshape(vec![b * n, self.num_items + 1]);
                flat.cross_entropy_with_logits(&targets)
            }
        }
    }
}

impl Auditable for Gru4Rec {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.parameters())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "GRU4Rec has a single `full` stage");
        let batch = audit_batch(seqs, self.max_len, seed);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let loss = self.batch_loss(&g, &batch, &SoftmaxMode::Full, &mut rng);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }

    fn frozen_parity(&self, seqs: &[Vec<ItemId>]) -> Option<ParityCheck> {
        use nn::Freeze;
        let seq = seqs.first()?;
        let (g, _logits) = self.score_graph(seq);
        Some(ParityCheck {
            path: "score_padded".into(),
            declared: self.freeze().declared_score_trace(),
            actual: g.op_trace(),
        })
    }
}

impl SequentialRecommender for Gru4Rec {
    fn name(&self) -> String {
        "GRU4Rec".into()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.max_len, cfg.batch_size);
        let params = self.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let loss = self.batch_loss(&g, &batch, &cfg.softmax, &mut rng);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[GRU4Rec] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        let (_g, logits) = self.score_graph(seq);
        let _ = &mut self.rng;
        logits.value().row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_simple_transition() {
        // Two alternating patterns: 1→2→1→2… and 3→4→3→4…
        let mut train = Vec::new();
        for _ in 0..12 {
            train.push(vec![1, 2, 1, 2, 1, 2]);
            train.push(vec![3, 4, 3, 4, 3, 4]);
        }
        let mut m = Gru4Rec::new(4, 6, 16, 7);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[1, 2, 1]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "after 1 expect 2; scores {s:?}");
        let s = m.score(0, &[3, 4, 3]);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 4);
    }

    #[test]
    fn score_shape() {
        let mut m = Gru4Rec::new(9, 5, 8, 0);
        assert_eq!(m.score(0, &[1]).len(), 10);
    }
}

//! CL4SRec (Xie et al., 2020): SASRec plus contrastive learning over
//! *hand-crafted data augmentations* — item crop, item mask, item reorder.
//!
//! This is the canonical example of the augmentation family the paper's
//! Figure 1 criticizes ("some essential sequential correlations of s_i may
//! be disturbed in augmentation views"), so having it in the zoo lets the
//! repository demonstrate the generative-augmentation argument directly.

use autograd::Graph;
use optim::{clip_grad_norm, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recdata::{encode_input_only, item_crop, item_mask, item_reorder, Batch, Batcher, ItemId};

use crate::audit::{audit_batch, Auditable, StageContract, StageTrace};
use crate::backbone::TransformerBackbone;
use crate::cl::{info_nce_masked, Similarity};
use crate::sasrec::NetConfig;
use crate::{SequentialRecommender, TrainConfig};

/// The CL4SRec model. Vocabulary is `num_items + 2` (padding + `[mask]`).
pub struct Cl4SRec {
    backbone: TransformerBackbone,
    net: NetConfig,
    /// Contrastive weight λ.
    pub lambda: f32,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Crop keep-ratio η.
    pub eta: f64,
    /// Mask ratio γ.
    pub gamma: f64,
    /// Reorder window ratio β.
    pub beta: f64,
    rng: StdRng,
}

impl Cl4SRec {
    /// Builds an untrained CL4SRec with the original paper's augmentation
    /// ratios (η = 0.6, γ = 0.3, β = 0.6) and λ = 0.1.
    pub fn new(net: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(net.seed);
        let backbone = TransformerBackbone::new(
            &mut rng,
            "cl4srec",
            net.num_items + 2,
            net.max_len,
            net.dim,
            net.heads,
            net.layers,
            net.dropout,
            true,
        );
        Cl4SRec {
            backbone,
            net,
            lambda: 0.1,
            tau: 1.0,
            eta: 0.6,
            gamma: 0.3,
            beta: 0.6,
            rng,
        }
    }

    fn augment(&self, seq: &[ItemId], rng: &mut StdRng) -> Vec<ItemId> {
        match rng.gen_range(0..3) {
            0 => item_crop(seq, self.eta, rng),
            1 => item_mask(seq, self.gamma, self.net.num_items, rng),
            _ => item_reorder(seq, self.beta, rng),
        }
    }

    fn encode_augmented(
        &self,
        raws: &[Vec<ItemId>],
        rng: &mut StdRng,
    ) -> (Vec<Vec<ItemId>>, Vec<Vec<bool>>) {
        let mut inputs = Vec::with_capacity(raws.len());
        let mut pads = Vec::with_capacity(raws.len());
        for raw in raws {
            let aug = self.augment(raw, rng);
            let (inp, pd) = encode_input_only(&aug, self.net.max_len);
            inputs.push(inp);
            pads.push(pd);
        }
        (inputs, pads)
    }

    /// Cross-entropy plus augmentation-contrastive loss for one batch.
    /// Shared by [`SequentialRecommender::fit`] and the static auditor.
    fn batch_loss(&self, g: &Graph, batch: &Batch, rng: &mut StdRng) -> autograd::Var {
        let (b, n) = (batch.len(), batch.seq_len());
        let h = self
            .backbone
            .forward(g, &batch.inputs, &batch.pad, rng, true);
        let logits = self.backbone.scores(g, &h);
        let targets: Vec<usize> = batch
            .targets
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect();
        let mut loss = logits
            .reshape(vec![b * n, self.backbone.vocab()])
            .cross_entropy_with_logits(&targets);
        if b >= 2 && self.lambda > 0.0 {
            // Two independently augmented views of the raw inputs.
            let raws: Vec<Vec<ItemId>> = batch
                .inputs
                .iter()
                .map(|inp| inp.iter().copied().filter(|&x| x != 0).collect())
                .collect();
            let (in1, pd1) = self.encode_augmented(&raws, rng);
            let (in2, pd2) = self.encode_augmented(&raws, rng);
            let h1 = self.backbone.forward(g, &in1, &pd1, rng, true);
            let h2 = self.backbone.forward(g, &in2, &pd2, rng, true);
            let z1 = TransformerBackbone::last_hidden(&h1);
            let z2 = TransformerBackbone::last_hidden(&h2);
            let cl = info_nce_masked(&z1, &z2, self.tau, Similarity::Dot, &batch.last_target);
            loss = loss.add(&cl.scale(self.lambda));
        }
        loss
    }
}

impl Auditable for Cl4SRec {
    fn audit_name(&self) -> String {
        self.name()
    }

    fn audit_contracts(&self) -> Vec<StageContract> {
        vec![StageContract::full(self.backbone.parameters())]
    }

    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace {
        assert_eq!(stage, "full", "CL4SRec has a single `full` stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = audit_batch(seqs, self.net.max_len, seed);
        let g = Graph::new();
        let loss = self.batch_loss(&g, &batch, &mut rng);
        StageTrace {
            stage: stage.into(),
            graph: g,
            loss,
        }
    }
}

impl SequentialRecommender for Cl4SRec {
    fn name(&self) -> String {
        "CL4SRec".into()
    }

    fn num_items(&self) -> usize {
        self.net.num_items
    }

    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig) {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let batcher = Batcher::new(train.to_vec(), self.net.max_len, cfg.batch_size);
        let params = self.backbone.parameters();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        for epoch in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                let g = Graph::new();
                let loss = self.batch_loss(&g, &batch, &mut rng);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&params, cfg.grad_clip);
                }
                opt.step();
                opt.zero_grad();
                total += loss.item() as f64;
                batches += 1;
            }
            if cfg.verbose {
                println!(
                    "[CL4SRec] epoch {epoch} loss {:.4}",
                    total / batches.max(1) as f64
                );
            }
        }
    }

    fn score(&mut self, _user: usize, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.net.num_items + 1];
        }
        let (input, pad) = encode_input_only(seq, self.net.max_len);
        let g = Graph::new();
        let h = self
            .backbone
            .forward(&g, &[input], &[pad], &mut self.rng, false);
        let last = TransformerBackbone::last_hidden(&h);
        let scores = self.backbone.scores(&g, &last).value();
        scores.row(0)[..self.net.num_items + 1].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_transitions() {
        let train: Vec<Vec<usize>> = (0..20)
            .map(|u| (0..8).map(|t| 1 + (u + t) % 6).collect())
            .collect();
        let mut m = Cl4SRec::new(NetConfig {
            max_len: 8,
            dim: 16,
            layers: 1,
            dropout: 0.0,
            seed: 3, // this tiny corpus is init-sensitive; not every seed separates 5 from 4
            ..NetConfig::for_items(6)
        });
        m.lambda = 0.02; // see duorec.rs: tiny overlapping-ring corpus
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 10,
            ..Default::default()
        };
        m.fit(&train, &cfg);
        let s = m.score(0, &[2, 3, 4]);
        assert_eq!(s.len(), 7);
        let best = s
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores {s:?}");
    }

    #[test]
    fn augmentations_produce_valid_items() {
        let m = Cl4SRec::new(NetConfig {
            dim: 8,
            layers: 1,
            ..NetConfig::for_items(9)
        });
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let aug = m.augment(&[1, 2, 3, 4, 5], &mut rng);
            assert!(!aug.is_empty());
            // Items stay within the extended vocab (mask token = 10).
            assert!(aug.iter().all(|&x| (1..=10).contains(&x)));
        }
    }
}

//! Tape-free frozen forwards for the model layer: the shared Transformer
//! backbone and GRU4Rec, in both padded (training-equivalent) and
//! left-aligned incremental semantics.
//!
//! Two serving semantics, both bitwise-exact against their autograd
//! references:
//!
//! * **Padded** ([`FrozenTransformerBackbone::forward_padded`],
//!   [`FrozenGru4Rec::score_padded`]) mirrors the training-time windows:
//!   the last `max_len` items, left-padded, positions anchored at the right
//!   edge. This is what offline evaluation computes, so served scores can
//!   be compared `==` against `score_sequence`/`score`. Padded windows are
//!   *not* cacheable across appends — every append shifts all previous
//!   items' position embeddings (and changes the GRU pad prefix).
//! * **Left-aligned incremental** ([`FrozenTransformerBackbone::begin_incremental`]
//!   / [`append_incremental`](FrozenTransformerBackbone::append_incremental),
//!   [`FrozenGru4Rec`]'s [`GruState`]) anchors positions at the *start*
//!   (`0..len`). Under a causal mask, appending an item leaves every
//!   cached key/value row bitwise-unchanged, so one append is one
//!   single-row attention step. The autograd references are
//!   [`TransformerBackbone::forward_left_aligned`] and
//!   [`Gru4Rec::score_unpadded`].

use nn::{
    causal_mask, padding_additive_mask, EncoderKv, Freeze, FrozenEmbedding, FrozenGru,
    FrozenLayerNorm, FrozenTransformerEncoder, InferModule, Quantize,
};
use recdata::{encode_input_only, ItemId};
use tensor::bug::OrBug;
use tensor::{ops, QuantMode, Tensor};

use crate::{Gru4Rec, TransformerBackbone};

// ---------------------------------------------------------------------------
// Transformer backbone
// ---------------------------------------------------------------------------

/// Frozen snapshot of a [`TransformerBackbone`]: plain contiguous weight
/// tensors, no graph, no tape, no interior mutability.
pub struct FrozenTransformerBackbone {
    pub(crate) item_emb: FrozenEmbedding,
    pub(crate) pos_emb: FrozenEmbedding,
    pub(crate) emb_ln: FrozenLayerNorm,
    pub(crate) encoder: FrozenTransformerEncoder,
    dim: usize,
    heads: usize,
    causal: bool,
}

/// Incremental per-user cache for one backbone: the encoder K/V stack plus
/// the number of items absorbed so far (= the next item's position index).
pub struct BackboneState {
    pub(crate) enc: EncoderKv,
    len: usize,
}

impl BackboneState {
    /// Number of items absorbed into the cache.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FrozenTransformerBackbone {
    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size (including padding).
    pub fn vocab(&self) -> usize {
        self.item_emb.vocab()
    }

    /// Maximum sequence length (rows in the position table).
    pub fn max_len(&self) -> usize {
        self.pos_emb.vocab()
    }

    /// Mirror of [`TransformerBackbone::attention_mask`] (also used by the
    /// Meta-SGCL decoder, which shares the encoder's masks).
    pub fn attention_mask(&self, pad: &[Vec<bool>]) -> Tensor {
        let n = pad.first().map_or(0, Vec::len);
        let pad_mask = padding_additive_mask(pad, self.heads);
        if self.causal {
            ops::add(&pad_mask, &causal_mask(n)).or_bug("mask broadcast")
        } else {
            pad_mask
        }
    }

    /// Embeds a padded batch exactly as the training path does (Eq. 4 plus
    /// LayerNorm; dropout is identity at eval).
    fn embed_padded(&self, inputs: &[Vec<ItemId>]) -> Tensor {
        let n = inputs.first().map_or(0, Vec::len);
        let e = self.item_emb.lookup_batch(inputs);
        let pos: Vec<usize> = (0..n).collect();
        let p = self.pos_emb.lookup_flat(&pos);
        self.emb_ln
            .forward(&ops::add(&e, &p).or_bug("pos broadcast"))
    }

    /// Full padded forward, bitwise-identical to
    /// [`TransformerBackbone::forward`] at eval: hidden states `[b, n, d]`.
    pub fn forward_padded(&self, inputs: &[Vec<ItemId>], pad: &[Vec<bool>]) -> Tensor {
        let x = self.embed_padded(inputs);
        let mask = self.attention_mask(pad);
        let timeline = TransformerBackbone::timeline_mask(pad);
        self.encoder.forward(&x, Some(&mask), Some(&timeline))
    }

    /// Left-aligned embedding for one sequence: positions `0..len`, no
    /// padding, `[1, len, d]`.
    fn embed_left_aligned(&self, seq: &[ItemId]) -> Tensor {
        let n = seq.len();
        assert!(
            n <= self.max_len(),
            "sequence length {n} exceeds position table ({})",
            self.max_len()
        );
        let e = self
            .item_emb
            .lookup_batch(std::slice::from_ref(&seq.to_vec()));
        let pos: Vec<usize> = (0..n).collect();
        let p = self.pos_emb.lookup_flat(&pos);
        self.emb_ln
            .forward(&ops::add(&e, &p).or_bug("pos broadcast"))
    }

    /// Encodes a full sequence under left-aligned semantics while filling a
    /// fresh incremental cache. Returns the state and the hidden states
    /// `[1, len, d]`. Bitwise-identical to
    /// [`TransformerBackbone::forward_left_aligned`] at eval.
    pub fn begin_incremental(&self, seq: &[ItemId]) -> (BackboneState, Tensor) {
        let x = self.embed_left_aligned(seq);
        let mut enc = EncoderKv::new(self.encoder.n_layers(), self.encoder.heads());
        let h = self
            .encoder
            .encode_collect(&x, Some(&causal_mask(seq.len())), &mut enc);
        (
            BackboneState {
                enc,
                len: seq.len(),
            },
            h,
        )
    }

    /// Appends one item per user in a single GEMM-friendly batch. Row `i`
    /// of the result `[users.len(), d]` is the new hidden state for
    /// `states[i]`, bitwise-identical to the last row of a full
    /// left-aligned re-encode of that user's extended sequence.
    ///
    /// Panics if any state is already at `max_len` (the caller slides the
    /// window by re-beginning from the last `max_len` items).
    pub fn append_incremental(
        &self,
        items: &[ItemId],
        states: &mut [&mut BackboneState],
    ) -> Tensor {
        assert_eq!(items.len(), states.len(), "one item per state");
        let positions: Vec<usize> = states
            .iter()
            .map(|s| {
                assert!(
                    s.len < self.max_len(),
                    "state at max_len {}; slide the window first",
                    self.max_len()
                );
                s.len
            })
            .collect();
        let e = self.item_emb.lookup_flat(items);
        let p = self.pos_emb.lookup_flat(&positions);
        let x = self
            .emb_ln
            .forward(&ops::add(&e, &p).or_bug("pos broadcast"));
        let mut kv: Vec<&mut EncoderKv> = states.iter_mut().map(|s| &mut s.enc).collect();
        let h = self.encoder.append_batch(&x, &mut kv);
        for s in states.iter_mut() {
            s.len += 1;
        }
        h
    }

    /// Extracts the last position: `[1, n, d] → [1, d]`.
    pub fn last_hidden(h: &Tensor) -> Tensor {
        let dims = h.dims();
        let (n, d) = (dims[1], dims[2]);
        ops::slice_axis(h, 1, n - 1, n)
            .or_bug("slice last")
            .reshape(vec![1, d])
            .or_bug("reshape last")
    }

    /// Catalog scores via the tied item table (`ŷ = h · Mᵀ`). Accepts
    /// `[b, d]` or `[b, n, d]`; rows are independent accumulation chains,
    /// so batch scoring equals single-row scoring bitwise. With a
    /// quantised table, rows are dequantised inside the GEMM's packing
    /// step (`matmul_transb_q`); in f32 mode this is the plain NT GEMM.
    pub fn scores(&self, h: &Tensor) -> Tensor {
        ops::matmul_transb_q(h, self.item_emb.table_q()).or_bug("score gemm")
    }

    /// Dense f32 copy of the tied item table (`[vocab, d]`), dequantising
    /// when the serving weights are bf16/int8. Corpus side of the
    /// maximum-inner-product retrieval an ANN index answers.
    pub fn item_table_f32(&self) -> Tensor {
        self.item_emb.table_q().dequantize()
    }

    /// Declares the tape ops of `TransformerBackbone::forward` at eval:
    /// item lookup, position lookup, `Ê = E + P`, embedding LayerNorm
    /// (dropout records nothing at eval), then the masked + timeline
    /// encoder stack.
    pub fn forward_padded_trace(&self, out: &mut Vec<&'static str>) {
        FrozenEmbedding::lookup_batch_trace(out);
        FrozenEmbedding::lookup_flat_trace(out);
        out.push("add"); // Ê = E + P
        FrozenLayerNorm::op_trace(out);
        self.encoder.op_trace(true, true, out);
    }

    /// Declares the tape ops of `TransformerBackbone::last_hidden`.
    pub fn last_hidden_trace(out: &mut Vec<&'static str>) {
        out.extend(["slice_axis", "reshape"]);
    }

    /// Declares the tape ops of `TransformerBackbone::scores` (fused NT
    /// GEMM against the tied item table).
    pub fn scores_trace(out: &mut Vec<&'static str>) {
        out.push("matmul_transb");
    }
}

impl InferModule for FrozenTransformerBackbone {
    fn num_weights(&self) -> usize {
        self.item_emb.num_weights()
            + self.pos_emb.num_weights()
            + self.emb_ln.num_weights()
            + self.encoder.num_weights()
    }

    fn weight_bytes(&self) -> usize {
        self.item_emb.weight_bytes()
            + self.pos_emb.weight_bytes()
            + self.emb_ln.weight_bytes()
            + self.encoder.weight_bytes()
    }
}

impl Quantize for FrozenTransformerBackbone {
    fn quantize(&mut self, mode: QuantMode) {
        self.item_emb.quantize(mode);
        self.pos_emb.quantize(mode);
        self.encoder.quantize(mode);
    }
}

impl Freeze for TransformerBackbone {
    type Frozen = FrozenTransformerBackbone;

    fn freeze(&self) -> FrozenTransformerBackbone {
        FrozenTransformerBackbone {
            item_emb: self.item_emb.freeze(),
            pos_emb: self.pos_emb.freeze(),
            emb_ln: self.emb_ln.freeze(),
            encoder: self.encoder.freeze(),
            dim: self.dim(),
            heads: self.heads,
            causal: self.causal,
        }
    }
}

// ---------------------------------------------------------------------------
// GRU4Rec
// ---------------------------------------------------------------------------

/// Frozen snapshot of a [`Gru4Rec`].
pub struct FrozenGru4Rec {
    item_emb: FrozenEmbedding,
    gru: FrozenGru,
    num_items: usize,
    max_len: usize,
}

/// Incremental per-user GRU cache: the running hidden state. Unlike the
/// attention cache this is O(d) and never slides — the unpadded recurrence
/// is position-free, so appends stay exact at any history length.
pub struct GruState {
    h: Tensor,
    len: usize,
}

impl GruState {
    /// Number of items absorbed into the recurrence.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FrozenGru4Rec {
    /// Catalog size (excluding padding index 0).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Training window length (used only by the padded path).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Padded scores, bitwise-identical to
    /// [`crate::SequentialRecommender::score`] on [`Gru4Rec`]: the last
    /// `max_len` items left-padded, the recurrence including the pad
    /// prefix steps.
    pub fn score_padded(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        let (input, _pad) = encode_input_only(seq, self.max_len);
        let x = self.item_emb.lookup_batch(std::slice::from_ref(&input));
        let last = self.gru.forward_sequence_last(&x);
        let logits = ops::matmul_transb_q(&last, self.item_emb.table_q()).or_bug("score gemm");
        logits.row(0).to_vec()
    }

    /// Begins an incremental recurrence over `seq` (unpadded; mirrors
    /// [`Gru4Rec::score_unpadded`] semantics).
    pub fn begin_incremental(&self, seq: &[ItemId]) -> GruState {
        let mut state = GruState {
            h: Tensor::zeros(vec![1, self.gru.dim()]),
            len: 0,
        };
        for &item in seq {
            self.append_incremental(&[item], &mut [&mut state]);
        }
        state
    }

    /// Appends one item per user in a single batched GRU step. Row `i` of
    /// the result `[users.len(), d]` is the new hidden state for
    /// `states[i]`; GRU gates are row-independent, so the batched step is
    /// bitwise-identical to stepping each user alone.
    pub fn append_incremental(&self, items: &[ItemId], states: &mut [&mut GruState]) -> Tensor {
        assert_eq!(items.len(), states.len(), "one item per state");
        let d = self.gru.dim();
        let x = self.item_emb.lookup_flat(items);
        let mut hdata: Vec<f32> = Vec::with_capacity(states.len() * d);
        for s in states.iter() {
            hdata.extend_from_slice(s.h.row(0));
        }
        let h = Tensor::from_vec(hdata, vec![states.len(), d]);
        let h_new = self.gru.step(&x, &h);
        for (i, s) in states.iter_mut().enumerate() {
            s.h = Tensor::from_vec(h_new.row(i).to_vec(), vec![1, d]);
            s.len += 1;
        }
        h_new
    }

    /// Current hidden state `[1, d]` of an incremental recurrence.
    pub fn hidden(&self, state: &GruState) -> Tensor {
        state.h.clone()
    }

    /// Catalog scores from hidden states `[b, d]` via the tied table.
    pub fn scores(&self, h: &Tensor) -> Tensor {
        ops::matmul_transb_q(h, self.item_emb.table_q()).or_bug("score gemm")
    }

    /// Declares the op sequence of the autograd reference for
    /// [`FrozenGru4Rec::score_padded`] (`Gru4Rec`'s trait `score`): the
    /// padded window embedding, `max_len` GRU steps, and the tied-table
    /// projection. Entries marked autograd-only are values the training
    /// path materialises but the frozen path provably never reads —
    /// `forward_sequence` stacks every hidden state (per-step `reshape` +
    /// final `concat`) and then slices the last one back out, while
    /// `forward_sequence_last` keeps only the running hidden; the elided
    /// ops are pure data movement, so bits are unaffected.
    pub fn declared_score_trace(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        FrozenEmbedding::lookup_batch_trace(&mut out);
        for _ in 0..self.max_len {
            out.extend(["slice_axis", "reshape"]); // x_t from [b, n, d]
            self.gru.step_op_trace(&mut out);
            out.push("reshape"); // autograd-only: stack h_t as [b, 1, d]
        }
        out.push("concat"); // autograd-only: [b, n, d] of all hiddens
        out.extend(["slice_axis", "reshape"]); // autograd-only: take last
        out.push("matmul_transb"); // tied-table projection
        out
    }

    /// Query vector for maximum-inner-product retrieval: the final GRU
    /// hidden state under the same padded semantics as
    /// [`score_padded`](Self::score_padded). `None` on an empty history.
    pub fn query_embedding(&self, seq: &[ItemId]) -> Option<Vec<f32>> {
        if seq.is_empty() {
            return None;
        }
        let (input, _pad) = encode_input_only(seq, self.max_len);
        let x = self.item_emb.lookup_batch(std::slice::from_ref(&input));
        Some(self.gru.forward_sequence_last(&x).row(0).to_vec())
    }

    /// Dense f32 copy of the tied item table (`[num_items + 1, d]`).
    pub fn item_table_f32(&self) -> Tensor {
        self.item_emb.table_q().dequantize()
    }

    /// Unpadded scores via a fresh full recurrence, bitwise-identical to
    /// [`Gru4Rec::score_unpadded`].
    pub fn score_unpadded(&self, seq: &[ItemId]) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.num_items + 1];
        }
        let state = self.begin_incremental(seq);
        let logits = self.scores(&state.h);
        logits.row(0).to_vec()
    }
}

impl InferModule for FrozenGru4Rec {
    fn num_weights(&self) -> usize {
        self.item_emb.num_weights() + self.gru.num_weights()
    }

    fn weight_bytes(&self) -> usize {
        self.item_emb.weight_bytes() + self.gru.weight_bytes()
    }
}

impl Quantize for FrozenGru4Rec {
    fn quantize(&mut self, mode: QuantMode) {
        self.item_emb.quantize(mode);
        self.gru.quantize(mode);
    }
}

impl Freeze for Gru4Rec {
    type Frozen = FrozenGru4Rec;

    fn freeze(&self) -> FrozenGru4Rec {
        FrozenGru4Rec {
            item_emb: self.item_emb.freeze(),
            gru: self.gru.freeze(),
            num_items: self.num_items,
            max_len: self.max_len,
        }
    }
}

//! Static-audit hooks: every tape-based model exposes its training graph
//! and freeze contracts so `crates/analysis` can verify shapes and
//! gradient flow *without* running real training.
//!
//! A model participates in the audit by implementing [`Auditable`]:
//!
//! * [`Auditable::audit_contracts`] declares, per training stage, which
//!   parameters the loss must reach (receive gradient) and which must stay
//!   frozen. Single-stage models reach everything; Meta-SGCL's `meta`
//!   stage must reach exactly `Enc_σ'`.
//! * [`Auditable::trace_stage`] builds one *real* training-step graph (the
//!   same code path `fit` uses, via each model's `batch_loss` method) on a
//!   tiny synthetic batch, and hands back the tape plus the loss head.
//!
//! The auditor then walks the returned tape: shape inference re-derives
//! every node's dims from op signatures, and reverse reachability from the
//! loss classifies each contracted parameter as reached/frozen/dead.

use autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::{Batch, Batcher, ItemId};

/// Declares which parameters a training stage must and must not update.
#[derive(Clone)]
pub struct StageContract {
    /// Stage name (`"full"` for single-stage models; Meta-SGCL adds
    /// `"meta"`).
    pub stage: String,
    /// Parameters the stage's loss must reach with gradient.
    pub reached: Vec<ParamRef>,
    /// Parameters that must stay frozen (no gradient) in this stage.
    pub frozen: Vec<ParamRef>,
}

impl StageContract {
    /// The common single-stage contract: one `"full"` stage that reaches
    /// every parameter and freezes none.
    pub fn full(reached: Vec<ParamRef>) -> Self {
        StageContract {
            stage: "full".into(),
            reached,
            frozen: Vec::new(),
        }
    }
}

/// One traced training step: the tape and its loss head.
pub struct StageTrace {
    /// Stage this trace corresponds to.
    pub stage: String,
    /// The define-by-run tape recorded while building the loss.
    pub graph: Graph,
    /// The scalar loss head (root of the backward walk).
    pub loss: Var,
}

/// A frozen-parity check: the op sequence a `Frozen*` inference twin
/// declares for its autograd reference forward, next to the op names that
/// forward actually recorded on a tape.
///
/// The declared side is composed structurally from the frozen module tree
/// (each `Frozen*` submodule contributes its own `op_trace`), so editing
/// either the training forward or the frozen forward desynchronises the
/// two sequences and the static parity pass fails — before any runtime
/// bitwise comparison ever runs.
pub struct ParityCheck {
    /// Label of the compared scoring path (e.g. `"score_padded"`).
    pub path: String,
    /// Op names the frozen twin declares, including documented
    /// autograd-only entries (values the training path computes and
    /// discards, which the frozen path provably never reads).
    pub declared: Vec<&'static str>,
    /// Op names actually recorded by the autograd scoring forward.
    pub actual: Vec<&'static str>,
}

/// A model whose training graph can be audited statically.
pub trait Auditable {
    /// Name used in audit reports (matches [`crate::SequentialRecommender::name`]).
    fn audit_name(&self) -> String;

    /// The freeze contracts, one per training stage, in training order.
    fn audit_contracts(&self) -> Vec<StageContract>;

    /// Records one training-step graph for `stage` on the given sequences.
    ///
    /// Implementations must route through the same loss-construction code
    /// `fit` uses, so the audited tape is the real training graph.
    /// `seed` drives dropout/augmentation sampling deterministically.
    ///
    /// Panics if `stage` is not one of the stages named by
    /// [`Auditable::audit_contracts`].
    fn trace_stage(&mut self, stage: &str, seqs: &[Vec<ItemId>], seed: u64) -> StageTrace;

    /// The frozen-parity check for this model, when it has a tape-free
    /// inference twin: the twin's declared op sequence next to the actual
    /// tape trace of the autograd scoring forward on `seqs[0]`.
    ///
    /// The default (`None`) means the family has no frozen twin and the
    /// parity pass is skipped, not failed.
    fn frozen_parity(&self, seqs: &[Vec<ItemId>]) -> Option<ParityCheck> {
        let _ = seqs;
        None
    }
}

/// Deterministic ring sequences for audits: item `i` is always followed by
/// `i + 1` (mod `num_items`). Mirrors the models' own smoke-test data.
pub fn audit_sequences(num_items: usize, users: usize, len: usize) -> Vec<Vec<ItemId>> {
    (0..users)
        .map(|u| (0..len).map(|t| 1 + (u + t) % num_items).collect())
        .collect()
}

/// Packs all `seqs` into a single left-padded training batch, exactly as
/// the models' `fit` loops would see it.
pub fn audit_batch(seqs: &[Vec<ItemId>], max_len: usize, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    let batcher = Batcher::new(seqs.to_vec(), max_len, seqs.len().max(1));
    let mut batches = batcher.epoch(&mut rng);
    assert!(
        !batches.is_empty(),
        "audit_batch needs at least one sequence"
    );
    batches.remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sequences_are_deterministic() {
        let a = audit_sequences(5, 3, 4);
        let b = audit_sequences(5, 3, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|s| s.len() == 4));
        assert!(a.iter().flatten().all(|&i| (1..=5).contains(&i)));
    }

    #[test]
    fn audit_batch_packs_every_sequence() {
        let seqs = audit_sequences(6, 4, 5);
        let batch = audit_batch(&seqs, 8, 7);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.seq_len(), 8);
    }
}

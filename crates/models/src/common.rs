//! The model trait, training configuration, and the shared evaluation
//! protocol.

use metrics::{EvalReport, MetricAccumulator};
use recdata::{ItemId, LeaveOneOut};

use crate::sampled::SoftmaxMode;

/// Shared training hyper-parameters.
///
/// Defaults follow the paper's implementation details (Adam, lr 1e-3,
/// dropout 0.2, 2 heads) at reproduction scale.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training sequences.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Maximum (padded) sequence length `T`.
    pub max_len: usize,
    /// RNG seed for shuffling, dropout, and sampling.
    pub seed: u64,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f32,
    /// Print a line per epoch when true.
    pub verbose: bool,
    /// Worker threads for data-parallel training (1 = serial). Thread count
    /// affects only which worker computes each shard, never the arithmetic,
    /// so results are identical for any value given the same seed and
    /// `shard_size`.
    pub threads: usize,
    /// Rows per gradient shard. Each mini-batch is split into contiguous
    /// shards of at most this many sequences; shards run forward/backward
    /// independently (in parallel when `threads > 1`) and their gradients
    /// are mean-reduced in fixed shard order. Contrastive terms draw
    /// in-batch negatives per shard, so smaller shards mean fewer negatives.
    pub shard_size: usize,
    /// Opt-in numeric sanitizer (debug mode). When true, every training
    /// shard's activations and collected gradients are scanned for
    /// NaN/Inf/exploding norms at stage boundaries, and training aborts
    /// with per-op blame (op name, tape node, parameter) on the first
    /// violation. Costs one extra pass over the tape per shard; off by
    /// default.
    pub sanitize: bool,
    /// Write a full training checkpoint (parameters, optimizer moments,
    /// RNG and schedule cursors) every this many optimizer steps. `0`
    /// disables periodic checkpointing. Requires [`TrainConfig::ckpt_dir`].
    pub save_every: u64,
    /// Retention: keep only the newest this many periodic checkpoints,
    /// pruning older ones after each save. `0` keeps everything.
    pub keep_last: usize,
    /// Directory for periodic checkpoints (`ckpt-<step>.msgc2` files).
    pub ckpt_dir: Option<String>,
    /// Resume training from a checkpoint: either a specific `.msgc2` file
    /// or a checkpoint directory (the newest valid checkpoint is used).
    /// Training continues from the exact epoch/batch/RNG position and is
    /// bitwise identical to a run that was never interrupted.
    pub resume: Option<String>,
    /// Halt after this many global optimizer steps (`0` = no limit). A
    /// partial epoch cut short by this limit is not recorded in the
    /// training history. Used to make "interrupted" runs reproducible in
    /// tests and the resume-smoke CI job.
    pub max_steps: u64,
    /// Write deterministic telemetry (per-batch/epoch loss decomposition,
    /// health events, deterministic metric snapshot) as JSONL to this path.
    /// The file is bitwise identical across `threads` values. `None`
    /// disables the stream (and, together with `trace_out`, leaves the
    /// telemetry registry disabled entirely — zero hot-loop overhead).
    pub metrics_out: Option<String>,
    /// Write tracing spans (epoch > batch > stage/forward/backward),
    /// wall-clock timings, and the full metric snapshot (including
    /// nondeterministic counters) as JSONL to this path.
    pub trace_out: Option<String>,
    /// Treat any fired health detector (KL collapse, dead σ', non-finite or
    /// exploding loss) as a training error after the run completes.
    pub strict_health: bool,
    /// How the next-item softmax denominator is built during training:
    /// full-catalog cross-entropy (default) or sampled softmax over a
    /// shared per-shard candidate list (see [`crate::sampled`]). Models
    /// without a tied-softmax objective ignore this. Evaluation and serving
    /// always score the full catalog regardless of the training mode.
    pub softmax: SoftmaxMode,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            lr: 1e-3,
            max_len: 20,
            seed: 42,
            grad_clip: 5.0,
            verbose: false,
            threads: 1,
            shard_size: 16,
            sanitize: false,
            save_every: 0,
            keep_last: 0,
            ckpt_dir: None,
            resume: None,
            max_steps: 0,
            metrics_out: None,
            trace_out: None,
            strict_health: false,
            softmax: SoftmaxMode::Full,
        }
    }
}

/// A next-item recommender that can be trained on user sequences and can
/// score the full item catalog for a user.
///
/// `Send` is required so trained models can move across threads (e.g. the
/// bench harness evaluating several models concurrently); all implementors
/// hold thread-safe [`autograd::ParamRef`] parameters and owned RNG state.
pub trait SequentialRecommender: Send {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> String;

    /// Number of real items (catalog size).
    fn num_items(&self) -> usize;

    /// Trains on per-user chronological sequences (`train[user]`).
    fn fit(&mut self, train: &[Vec<ItemId>], cfg: &TrainConfig);

    /// Scores every item for the given user and interaction history.
    /// Returns `num_items + 1` scores; index 0 (padding) is ignored by the
    /// evaluator. `user` indexes into the training sequence list; models
    /// without user embeddings ignore it.
    fn score(&mut self, user: usize, seq: &[ItemId]) -> Vec<f32>;
}

/// Evaluates on the test targets: input is `train ++ [valid_target]`,
/// ground truth is the last item (the paper's protocol).
pub fn evaluate_test(
    model: &mut dyn SequentialRecommender,
    split: &LeaveOneOut,
    ks: &[usize],
) -> EvalReport {
    let mut acc = MetricAccumulator::new(ks);
    for (user, u) in split.users.iter().enumerate() {
        let input = u.test_input();
        let scores = model.score(user, &input);
        debug_assert_eq!(scores.len(), model.num_items() + 1);
        acc.add_scores(&scores, u.test_target);
    }
    acc.finish()
}

/// Evaluates on the validation targets: input is the training prefix,
/// ground truth is the penultimate item.
pub fn evaluate_valid(
    model: &mut dyn SequentialRecommender,
    split: &LeaveOneOut,
    ks: &[usize],
) -> EvalReport {
    let mut acc = MetricAccumulator::new(ks);
    for (user, u) in split.users.iter().enumerate() {
        let scores = model.score(user, &u.train);
        acc.add_scores(&scores, u.valid_target);
    }
    acc.finish()
}

/// Produces the top-`k` recommended items for a user, optionally excluding
/// items already in the interaction history (the usual serving behaviour).
/// Returns `(item, score)` pairs in descending score order.
pub fn recommend_top_k(
    model: &mut dyn SequentialRecommender,
    user: usize,
    seq: &[ItemId],
    k: usize,
    exclude_seen: bool,
) -> Vec<(ItemId, f32)> {
    let scores = model.score(user, seq);
    let seen: std::collections::HashSet<ItemId> = if exclude_seen {
        seq.iter().copied().collect()
    } else {
        Default::default()
    };
    let mut ranked: Vec<(ItemId, f32)> = scores
        .iter()
        .enumerate()
        .skip(1) // never recommend padding
        .filter(|(i, _)| !seen.contains(i))
        .map(|(i, &s)| (i, s))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdata::Dataset;

    /// An oracle that always ranks a fixed item first.
    struct FixedTop(usize, usize);
    impl SequentialRecommender for FixedTop {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn num_items(&self) -> usize {
            self.1
        }
        fn fit(&mut self, _t: &[Vec<ItemId>], _c: &TrainConfig) {}
        fn score(&mut self, _u: usize, _s: &[ItemId]) -> Vec<f32> {
            let mut v = vec![0.0; self.1 + 1];
            v[self.0] = 1.0;
            v
        }
    }

    #[test]
    fn recommend_top_k_orders_and_excludes() {
        let mut m = FixedTop(2, 5);
        let recs = recommend_top_k(&mut m, 0, &[], 3, false);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].0, 2);
        assert!(recs[0].1 >= recs[1].1);
        // Excluding the seen top item promotes the next one.
        let recs = recommend_top_k(&mut m, 0, &[2], 3, true);
        assert!(recs.iter().all(|(i, _)| *i != 2));
        // Padding item 0 is never recommended.
        assert!(recs.iter().all(|(i, _)| *i >= 1));
    }

    #[test]
    fn evaluate_scores_against_correct_targets() {
        let d = Dataset {
            name: "t".into(),
            num_items: 5,
            sequences: vec![vec![1, 2, 3, 4], vec![1, 2, 3, 5]],
        };
        let split = LeaveOneOut::split(&d);
        // Oracle predicting item 4: hits user 0's test target only.
        let mut m = FixedTop(4, 5);
        let r = evaluate_test(&mut m, &split, &[1]);
        assert!((r.hr(1) - 0.5).abs() < 1e-12);
        // Valid targets are item 3 for both users.
        let mut m3 = FixedTop(3, 5);
        let rv = evaluate_valid(&mut m3, &split, &[1]);
        assert_eq!(rv.hr(1), 1.0);
    }
}

//! Property tests for the sampled-softmax objective: at the degenerate
//! point (sample count = full catalog) the sampled loss must be
//! **bitwise** equal to the full-softmax loss, on exactly the op
//! compositions the models use (`matmul_transb → reshape →
//! cross_entropy_with_logits`, with the candidate gather inserted).

use autograd::{Graph, Parameter, IGNORE_INDEX};
use models::sampled::{self, NegativeSampler, SoftmaxMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::init;

/// Random per-position targets with some padding rows, never id 0.
fn random_targets(rng: &mut StdRng, rows: usize, num_items: usize) -> Vec<usize> {
    (0..rows)
        .map(|_| {
            if rng.gen_bool(0.25) {
                IGNORE_INDEX
            } else {
                rng.gen_range(1..=num_items)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-catalog candidate list ⇒ loss bits identical to full softmax,
    /// with rank-3 hidden states (the training layout `[b, n, d]`).
    #[test]
    fn degenerate_sampled_loss_is_bitwise_full_loss(
        b in 1usize..4, n in 1usize..5, d in 1usize..6,
        num_items in 1usize..24, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = num_items + 1;
        let table = Parameter::shared("table", init::uniform(&mut rng, vec![vocab, d], -1.0, 1.0));
        let hidden = Parameter::shared("h", init::uniform(&mut rng, vec![b, n, d], -1.0, 1.0));
        let targets = random_targets(&mut rng, b * n, num_items);

        let g = Graph::new();
        let h = g.param(&hidden);
        let t = g.param(&table);
        let full = h
            .matmul_transb(&t)
            .reshape(vec![b * n, vocab])
            .cross_entropy_with_logits(&targets);

        let mode = SoftmaxMode::Sampled { negatives: num_items, sampler: NegativeSampler::Uniform };
        let cands = sampled::draw_candidates(&targets, num_items, &mode, &mut rng)
            .expect("sampled mode");
        prop_assert_eq!(&cands, &(0..vocab).collect::<Vec<_>>());
        let g2 = Graph::new();
        let s = sampled::sampled_ce(&g2.param(&hidden), &g2.param(&table), &targets, &cands);

        prop_assert_eq!(
            full.item().to_bits(), s.item().to_bits(),
            "full {} vs sampled {}", full.item(), s.item()
        );
    }

    /// The sampled loss equals a dense cross-entropy computed over only the
    /// candidate columns (independent reference: gather done by hand on the
    /// value side), for *proper* subsets too.
    #[test]
    fn sampled_loss_matches_manual_candidate_ce(
        rows in 1usize..5, d in 1usize..6, num_items in 4usize..24,
        negatives in 1usize..3, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = num_items + 1;
        let table = Parameter::shared("table", init::uniform(&mut rng, vec![vocab, d], -1.0, 1.0));
        let hidden = Parameter::shared("h", init::uniform(&mut rng, vec![rows, d], -1.0, 1.0));
        let targets = random_targets(&mut rng, rows, num_items);

        let mode = SoftmaxMode::Sampled { negatives, sampler: NegativeSampler::LogUniform };
        let cands = sampled::draw_candidates(&targets, num_items, &mode, &mut rng)
            .expect("sampled mode");
        prop_assert!(!cands.contains(&0), "padding leaked into candidates {:?}", cands);

        let g = Graph::new();
        let s = sampled::sampled_ce(&g.param(&hidden), &g.param(&table), &targets, &cands);

        // Manual reference: softmax over candidate dot products, f64 log-sum.
        let tv = table.borrow().value.clone();
        let hv = hidden.borrow().value.clone();
        let mut total = 0.0f64;
        let mut valid = 0usize;
        for (r, &t) in targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            let logits: Vec<f32> = cands
                .iter()
                .map(|&c| {
                    (0..d).map(|j| hv.row(r)[j] * tv.row(c)[j]).sum::<f32>()
                })
                .collect();
            let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse: f32 = m + logits.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            let ti = cands.iter().position(|&c| c == t).expect("target in candidates");
            total += f64::from(lse - logits[ti]);
            valid += 1;
        }
        let reference = (total / valid.max(1) as f64) as f32;
        prop_assert!(
            (s.item() - reference).abs() <= 1e-4 * reference.abs().max(1.0),
            "sampled {} vs reference {}", s.item(), reference
        );
    }
}

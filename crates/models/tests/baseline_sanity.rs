//! Sanity battery over every baseline: construction, naming, score-vector
//! contracts, determinism, and graceful handling of degenerate inputs.

use models::{
    Acvae, Bert4Rec, BprMf, Caser, Cl4SRec, ContrastVae, DuoRec, Gru4Rec, NetConfig, Pop, SasRec,
    SequentialRecommender, TrainConfig, Vsan,
};

const ITEMS: usize = 12;

fn net() -> NetConfig {
    NetConfig {
        max_len: 6,
        dim: 8,
        layers: 1,
        ..NetConfig::for_items(ITEMS)
    }
}

fn zoo() -> Vec<Box<dyn SequentialRecommender>> {
    vec![
        Box::new(Pop::new(ITEMS)),
        Box::new(BprMf::new(ITEMS, 8)),
        Box::new(Gru4Rec::new(ITEMS, 6, 8, 1)),
        Box::new(Caser::new(ITEMS, 4, 8, 1)),
        Box::new(SasRec::new(net())),
        Box::new(Bert4Rec::new(net())),
        Box::new(Vsan::new(net(), 0.1)),
        Box::new(Acvae::new(net())),
        Box::new(DuoRec::new(net())),
        Box::new(ContrastVae::new(net(), 0.05, 0.1)),
        Box::new(Cl4SRec::new(net())),
    ]
}

fn tiny_train() -> Vec<Vec<usize>> {
    (0..12)
        .map(|u| (0..6).map(|t| 1 + (u + t) % ITEMS).collect())
        .collect()
}

#[test]
fn names_are_unique_and_stable() {
    let names: Vec<String> = zoo().iter().map(|m| m.name()).collect();
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate model names: {names:?}");
    for n in &names {
        assert!(!n.is_empty());
    }
}

#[test]
fn score_vector_contract_holds_for_all_models() {
    let train = tiny_train();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 6,
        max_len: 6,
        ..Default::default()
    };
    for mut m in zoo() {
        m.fit(&train, &cfg);
        assert_eq!(m.num_items(), ITEMS, "{}", m.name());
        let s = m.score(0, &[1, 2, 3]);
        assert_eq!(s.len(), ITEMS + 1, "{} score length", m.name());
        assert!(
            s.iter().all(|x| x.is_finite()),
            "{} produced non-finite scores",
            m.name()
        );
    }
}

#[test]
fn empty_history_is_handled_everywhere() {
    let train = tiny_train();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 6,
        max_len: 6,
        ..Default::default()
    };
    for mut m in zoo() {
        m.fit(&train, &cfg);
        let s = m.score(0, &[]);
        assert_eq!(
            s.len(),
            ITEMS + 1,
            "{} empty-history score length",
            m.name()
        );
        assert!(s.iter().all(|x| x.is_finite()), "{}", m.name());
    }
}

#[test]
fn scoring_is_deterministic_after_training() {
    let train = tiny_train();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 6,
        max_len: 6,
        ..Default::default()
    };
    for mut m in zoo() {
        m.fit(&train, &cfg);
        let a = m.score(1, &[2, 3, 4]);
        let b = m.score(1, &[2, 3, 4]);
        assert_eq!(a, b, "{} scoring not deterministic", m.name());
    }
}

#[test]
fn training_twice_continues_without_panics() {
    // fit() is documented as restartable; the second call must not panic
    // and the model must stay usable.
    let train = tiny_train();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 6,
        max_len: 6,
        ..Default::default()
    };
    for mut m in zoo() {
        m.fit(&train, &cfg);
        m.fit(&train, &cfg);
        let s = m.score(0, &[1]);
        assert!(s.iter().all(|x| x.is_finite()), "{}", m.name());
    }
}

#[test]
fn out_of_range_history_items_are_rejected_or_ignored() {
    // Items above the vocabulary must not crash scoring for models that
    // accept arbitrary histories (they clamp/ignore); models that index
    // tables may panic, which is also a documented contract — we simply
    // check the well-behaved ones here.
    let train = tiny_train();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 6,
        max_len: 6,
        ..Default::default()
    };
    let mut pop = Pop::new(ITEMS);
    pop.fit(&train, &cfg);
    let s = pop.score(0, &[999]);
    assert_eq!(s.len(), ITEMS + 1);
}

//! Bitwise parity gates for the frozen model layer: padded forwards vs the
//! autograd training path, and incremental left-aligned state vs full
//! re-encodes and the autograd left-aligned references.

use autograd::Graph;
use models::{FrozenTransformerBackbone, Gru4Rec, SequentialRecommender, TransformerBackbone};
use nn::Freeze;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn backbone() -> TransformerBackbone {
    let mut rng = StdRng::seed_from_u64(11);
    TransformerBackbone::new(&mut rng, "bb", 21, 8, 8, 2, 2, 0.2, true)
}

#[test]
fn padded_forward_parity() {
    let bb = backbone();
    let f = bb.freeze();
    let inputs = vec![
        vec![0, 0, 1, 2, 3, 4, 5, 6],
        vec![0, 7, 8, 9, 10, 11, 12, 13],
    ];
    let pad = vec![
        vec![true, true, false, false, false, false, false, false],
        vec![true, false, false, false, false, false, false, false],
    ];
    let g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let want = bb.forward(&g, &inputs, &pad, &mut rng, false).value();
    let got = f.forward_padded(&inputs, &pad);
    assert_eq!(got.data(), want.data());
    assert_eq!(got.dims(), &[2, 8, 8]);
}

#[test]
fn left_aligned_full_encode_parity() {
    let bb = backbone();
    let f = bb.freeze();
    let seq: Vec<usize> = vec![3, 1, 4, 1, 5];
    let g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let want = bb.forward_left_aligned(&g, &seq, &mut rng, false).value();
    let (state, got) = f.begin_incremental(&seq);
    assert_eq!(got.data(), want.data());
    assert_eq!(state.len(), 5);
}

/// Appending items one at a time must match (a) a full frozen re-encode and
/// (b) the autograd left-aligned forward, at every prefix length.
#[test]
fn incremental_appends_match_reencode_and_autograd() {
    let bb = backbone();
    let f = bb.freeze();
    let history: Vec<usize> = vec![2, 9, 4, 7, 1, 6, 3];
    let (mut state, _) = f.begin_incremental(&history[..2]);

    for t in 2..history.len() {
        let h = f.append_incremental(&[history[t]], &mut [&mut state]);
        let prefix = &history[..=t];

        // Frozen full re-encode.
        let (_, full) = f.begin_incremental(prefix);
        let full_last = FrozenTransformerBackbone::last_hidden(&full);
        assert_eq!(
            h.data(),
            full_last.data(),
            "vs frozen re-encode, len {}",
            t + 1
        );

        // Autograd left-aligned reference.
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let auto = bb.forward_left_aligned(&g, prefix, &mut rng, false);
        let auto_last = TransformerBackbone::last_hidden(&auto).value();
        assert_eq!(h.data(), auto_last.data(), "vs autograd, len {}", t + 1);
    }
}

#[test]
fn batched_backbone_append_matches_single() {
    let bb = backbone();
    let f = bb.freeze();
    let (mut sa, _) = f.begin_incremental(&[1, 2, 3]);
    let (mut sb, _) = f.begin_incremental(&[4, 5]);
    let (mut sa2, _) = f.begin_incremental(&[1, 2, 3]);
    let (mut sb2, _) = f.begin_incremental(&[4, 5]);

    let ha = f.append_incremental(&[6], &mut [&mut sa]);
    let hb = f.append_incremental(&[7], &mut [&mut sb]);
    let both = f.append_incremental(&[6, 7], &mut [&mut sa2, &mut sb2]);

    assert_eq!(both.row(0), ha.row(0));
    assert_eq!(both.row(1), hb.row(0));
    assert_eq!(sa2.len(), 4);
    assert_eq!(sb2.len(), 3);
}

#[test]
fn backbone_scores_match_training_projection() {
    let bb = backbone();
    let f = bb.freeze();
    let inputs = vec![vec![0, 0, 0, 1, 2, 3, 4, 5]];
    let pad = vec![vec![true, true, true, false, false, false, false, false]];
    let g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let h = bb.forward(&g, &inputs, &pad, &mut rng, false);
    let want = bb.scores(&g, &TransformerBackbone::last_hidden(&h)).value();
    let fh = f.forward_padded(&inputs, &pad);
    let got = f.scores(&FrozenTransformerBackbone::last_hidden(&fh));
    assert_eq!(got.data(), want.data());
}

#[test]
fn gru4rec_padded_score_parity() {
    let mut m = Gru4Rec::new(15, 6, 8, 3);
    let f = m.freeze();
    for seq in [vec![1usize, 2, 3], vec![4; 10], vec![7]] {
        let want = m.score(0, &seq);
        assert_eq!(f.score_padded(&seq), want);
    }
    assert_eq!(f.score_padded(&[]), vec![0.0; 16]);
}

#[test]
fn gru4rec_incremental_matches_unpadded_reference() {
    let m = Gru4Rec::new(15, 6, 8, 4);
    let f = m.freeze();
    let history: Vec<usize> = vec![3, 8, 1, 12, 5, 9, 2, 14, 6];

    let mut state = f.begin_incremental(&history[..3]);
    for t in 3..history.len() {
        f.append_incremental(&[history[t]], &mut [&mut state]);
        let got = f.scores(&f.hidden(&state)).row(0).to_vec();
        let want = m.score_unpadded(&history[..=t]);
        assert_eq!(got, want, "len {}", t + 1);
        // And the frozen full recurrence agrees too.
        assert_eq!(f.score_unpadded(&history[..=t]), want);
    }
    // No length cap: the state is already past max_len and stayed exact.
    assert!(state.len() > f.max_len());
}

#[test]
fn gru4rec_batched_append_matches_single() {
    let m = Gru4Rec::new(15, 6, 8, 5);
    let f = m.freeze();
    let mut sa = f.begin_incremental(&[1, 2]);
    let mut sb = f.begin_incremental(&[3, 4, 5]);
    let mut sa2 = f.begin_incremental(&[1, 2]);
    let mut sb2 = f.begin_incremental(&[3, 4, 5]);

    let ha = f.append_incremental(&[6], &mut [&mut sa]);
    let hb = f.append_incremental(&[7], &mut [&mut sb]);
    let both = f.append_incremental(&[6, 7], &mut [&mut sa2, &mut sb2]);

    assert_eq!(both.row(0), ha.row(0));
    assert_eq!(both.row(1), hb.row(0));
}

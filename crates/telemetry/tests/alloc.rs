//! Proof that disabled telemetry is allocation-free on the hot path.
//!
//! The training loop calls `counter.add` / `gauge.set` /
//! `histogram.record` from inside the per-batch kernels; when telemetry is
//! off those must compile down to one relaxed atomic load and nothing
//! else. A counting global allocator makes the claim checkable in CI
//! (counter-based, not timing-based): after warm-up, a burst of metric
//! operations with telemetry disabled must perform **zero** heap
//! allocations.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_hot_loop_allocates_nothing() {
    // Warm up: intern the metrics once (registration may allocate).
    telemetry::set_enabled(true);
    let c = telemetry::metrics::counter("alloc.test.counter", true);
    let g = telemetry::metrics::gauge("alloc.test.gauge", true);
    let h = telemetry::metrics::histogram("alloc.test.hist", false);
    let s = telemetry::metrics::sketch("alloc.test.sketch", false);
    c.add(1);
    g.set(0.5);
    h.record(7);
    h.record_f64(3.5);
    s.record(125);

    telemetry::set_enabled(false);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        c.add(i);
        c.inc();
        g.set(i as f64);
        h.record(i);
        h.record_f64(i as f64 * 0.25);
        s.record(i);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-telemetry metric ops must not touch the heap"
    );

    // The enabled path on already-interned metrics is also allocation-free
    // (pure atomics) — keeps the overhead story honest when telemetry is on.
    telemetry::set_enabled(true);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        c.add(i);
        g.set(i as f64);
        h.record(i);
        // The serve-latency sketch records on every request; it must be
        // pure atomics too (the ≤2% serve-overhead budget assumes it).
        s.record(i);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "enabled metric ops on interned metrics must not touch the heap"
    );
    telemetry::set_enabled(false);
}

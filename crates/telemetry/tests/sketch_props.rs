//! Property test gating the quantile sketch's documented accuracy bound.
//!
//! For arbitrary observation sets, the sketch's p50/p99 (and the other
//! reported quantiles) must land within relative error α of the exact
//! sorted-rank quantile computed with the same rank rule
//! (`⌊q·(n-1)⌋`). This is the acceptance gate behind the BENCH_10
//! sketch-vs-exact section: the bench measures one workload, this test
//! sweeps the input space.

use proptest::prelude::*;
use telemetry::sketch::{DdSketch, REPORTED_QUANTILES};

fn exact(sorted: &[u64], q: f64) -> u64 {
    let target = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[target]
}

/// Relative error of `est` against `want`, treating exact zero specially
/// (bucket 0 is exact, so the estimate must be exactly 0 there).
fn rel_err(est: f64, want: u64) -> f64 {
    if want == 0 {
        est.abs()
    } else {
        (est - want as f64).abs() / want as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reported_quantiles_within_alpha_of_exact(
        // Latency-shaped values across many orders of magnitude, plus
        // exact zeros (selector picks the scale per element).
        mut vals in prop::collection::vec(
            (0u8..8, 1u64..u64::MAX / 2).prop_map(|(sel, x)| match sel {
                0 => 0,
                1..=3 => x % 1_000,
                4..=6 => x % 1_000_000,
                _ => x,
            }),
            1..2_000,
        ),
        alpha_i in 0usize..3,
    ) {
        let alpha = [0.005f64, 0.01, 0.02][alpha_i];
        let s = DdSketch::new(alpha);
        for &v in &vals {
            s.record(v);
        }
        vals.sort_unstable();
        for (name, q) in REPORTED_QUANTILES {
            let est = s.quantile(q).unwrap();
            let want = exact(&vals, q);
            let err = rel_err(est, want);
            prop_assert!(
                err <= alpha + 1e-9,
                "{name} (α={alpha}): estimate {est} vs exact {want}, rel err {err}"
            );
        }
    }

    #[test]
    fn merged_sketch_keeps_the_bound(
        a in prop::collection::vec(1u64..100_000, 1..500),
        b in prop::collection::vec(1u64..100_000, 1..500),
    ) {
        let sa = DdSketch::new(0.01);
        let sb = DdSketch::new(0.01);
        for &v in &a { sa.record(v); }
        for &v in &b { sb.record(v); }
        sa.merge_from(&sb);
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        for (_, q) in [("p50", 0.5), ("p99", 0.99)] {
            let est = sa.quantile(q).unwrap();
            let want = exact(&all, q);
            prop_assert!(rel_err(est, want) <= 0.01 + 1e-9);
        }
    }
}

//! Schema validation for the telemetry JSONL streams.
//!
//! Every line the training loop emits — to `--metrics-out` or
//! `--trace-out` — is a flat JSON object with an `ev` discriminator. This
//! module validates a line against the documented schema (`DESIGN.md` §10)
//! and is what the `telemetry_check` bin and the CI `telemetry-smoke` job
//! run over entire files. Unknown *fields* are allowed (forward
//! compatibility); unknown *event kinds* are rejected.

use crate::json::{parse, Json};

/// A required field and its expected shape.
enum Ty {
    /// JSON number.
    Num,
    /// JSON number or `null` (non-finite floats serialize as null).
    NumOrNull,
    /// JSON string.
    Str,
    /// JSON bool.
    Bool,
}

fn check_field(obj: &Json, name: &str, ty: &Ty) -> Result<(), String> {
    let v = obj
        .get(name)
        .ok_or_else(|| format!("missing required field `{name}`"))?;
    let ok = match ty {
        Ty::Num => v.as_num().is_some(),
        Ty::NumOrNull => v.as_num().is_some() || *v == Json::Null,
        Ty::Str => v.as_str().is_some(),
        Ty::Bool => v.as_bool().is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("field `{name}` has the wrong type"))
    }
}

fn check_all(obj: &Json, fields: &[(&str, Ty)]) -> Result<(), String> {
    for (name, ty) in fields {
        check_field(obj, name, ty)?;
    }
    Ok(())
}

/// Validates one JSONL line; returns the event kind on success.
pub fn validate_line(line: &str) -> Result<String, String> {
    let obj = parse(line).map_err(|e| e.to_string())?;
    validate_event(&obj)
}

/// Validates one already-parsed event object; returns the event kind.
/// (The admin snapshot embeds metric event objects, so validation is
/// shared between the line-oriented streams and the snapshot document.)
pub fn validate_event(obj: &Json) -> Result<String, String> {
    if !matches!(obj, Json::Obj(_)) {
        return Err("line is not a JSON object".into());
    }
    let ev = obj
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing string field `ev`")?
        .to_string();
    match ev.as_str() {
        "run" => check_all(
            obj,
            &[
                ("schema", Ty::Num),
                ("strategy", Ty::Str),
                ("threads", Ty::Num),
                ("shard_size", Ty::Num),
                ("seed", Ty::Num),
            ],
        )?,
        "batch" => check_all(
            obj,
            &[
                ("epoch", Ty::Num),
                ("batch", Ty::Num),
                ("step", Ty::Num),
                ("beta", Ty::NumOrNull),
                ("recon", Ty::NumOrNull),
                ("kl_a", Ty::NumOrNull),
                ("kl_b", Ty::NumOrNull),
                ("info_nce", Ty::NumOrNull),
                ("total", Ty::NumOrNull),
                ("grad_norm", Ty::NumOrNull),
            ],
        )?,
        "epoch" => check_all(
            obj,
            &[
                ("epoch", Ty::Num),
                ("batches", Ty::Num),
                ("recon", Ty::NumOrNull),
                ("kl_a", Ty::NumOrNull),
                ("kl_b", Ty::NumOrNull),
                ("info_nce", Ty::NumOrNull),
                ("total", Ty::NumOrNull),
            ],
        )?,
        "metric" => {
            check_all(
                obj,
                &[("name", Ty::Str), ("kind", Ty::Str), ("det", Ty::Bool)],
            )?;
            match obj.get("kind").and_then(Json::as_str) {
                Some("counter") => check_all(obj, &[("value", Ty::Num)])?,
                Some("gauge") => check_all(obj, &[("value", Ty::NumOrNull)])?,
                Some("histogram") => {
                    check_all(
                        obj,
                        &[("count", Ty::Num), ("sum", Ty::Num), ("invalid", Ty::Num)],
                    )?;
                    let buckets = obj
                        .get("buckets")
                        .and_then(Json::as_arr)
                        .ok_or("histogram missing `buckets` array")?;
                    for b in buckets {
                        let pair = b.as_arr().ok_or("bucket entry is not an array")?;
                        if pair.len() != 2 || pair.iter().any(|x| x.as_num().is_none()) {
                            return Err("bucket entry is not a [index, count] pair".into());
                        }
                    }
                }
                Some("sketch") => check_all(
                    obj,
                    &[
                        ("count", Ty::Num),
                        ("sum", Ty::Num),
                        ("p50", Ty::NumOrNull),
                        ("p90", Ty::NumOrNull),
                        ("p99", Ty::NumOrNull),
                        ("p999", Ty::NumOrNull),
                    ],
                )?,
                other => return Err(format!("unknown metric kind {other:?}")),
            }
        }
        // One flat event per *sampled* serve request: phase breakdown plus
        // outcome flags (DESIGN.md §15).
        "req" => check_all(
            obj,
            &[
                ("id", Ty::Num),
                ("op", Ty::Str),
                ("enqueue_ns", Ty::Num),
                ("assemble_ns", Ty::Num),
                ("forward_ns", Ty::Num),
                ("retrieve_ns", Ty::Num),
                ("serialize_ns", Ty::Num),
                ("total_ns", Ty::Num),
                ("cold_start", Ty::Bool),
                ("cache_hit", Ty::Bool),
                ("ann", Ty::Bool),
                ("ann_fallback", Ty::Bool),
            ],
        )?,
        "span" => check_all(
            obj,
            &[
                ("id", Ty::Num),
                ("parent", Ty::Num),
                ("name", Ty::Str),
                ("start_ns", Ty::Num),
                ("dur_ns", Ty::Num),
            ],
        )?,
        "health" => check_all(
            obj,
            &[
                ("detector", Ty::Str),
                ("epoch", Ty::Num),
                ("batch", Ty::Num),
                ("step", Ty::Num),
                ("value", Ty::NumOrNull),
                ("message", Ty::Str),
            ],
        )?,
        "checkpoint" => check_all(obj, &[("step", Ty::Num), ("path", Ty::Str)])?,
        "resume" => check_all(
            obj,
            &[
                ("epoch", Ty::Num),
                ("batch", Ty::Num),
                ("step", Ty::Num),
                ("path", Ty::Str),
            ],
        )?,
        other => return Err(format!("unknown event kind `{other}`")),
    }
    Ok(ev)
}

/// Validates a serve admin `snapshot` response document.
///
/// Shape (DESIGN.md §15): `{"ok":true,"kind":"snapshot","metrics":[...],
/// "slos":[...]}` where each metric entry is a full `metric` event object
/// (validated by [`validate_event`], names must be sorted) and each SLO
/// state carries `name`/`status`/`value`/`threshold`/`breached_ever`/
/// `reason`. Returns `(metric count, slo count)`.
pub fn validate_admin_snapshot(text: &str) -> Result<(usize, usize), String> {
    let obj = parse(text).map_err(|e| e.to_string())?;
    check_all(&obj, &[("ok", Ty::Bool), ("kind", Ty::Str)])?;
    if obj.get("kind").and_then(Json::as_str) != Some("snapshot") {
        return Err("`kind` is not \"snapshot\"".into());
    }
    let metrics = obj
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("missing `metrics` array")?;
    let mut prev: Option<&str> = None;
    for (i, m) in metrics.iter().enumerate() {
        let kind = validate_event(m).map_err(|e| format!("metrics[{i}]: {e}"))?;
        if kind != "metric" {
            return Err(format!("metrics[{i}]: event kind `{kind}` is not `metric`"));
        }
        let name = m
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metrics[{i}]: missing name"))?;
        if prev.is_some_and(|p| p >= name) {
            return Err(format!("metrics[{i}]: `{name}` breaks name-sorted order"));
        }
        prev = Some(name);
    }
    let slos = obj
        .get("slos")
        .and_then(Json::as_arr)
        .ok_or("missing `slos` array")?;
    for (i, s) in slos.iter().enumerate() {
        check_all(
            s,
            &[
                ("name", Ty::Str),
                ("status", Ty::Str),
                ("value", Ty::NumOrNull),
                ("threshold", Ty::Num),
                ("breached_ever", Ty::Bool),
                ("reason", Ty::Str),
            ],
        )
        .map_err(|e| format!("slos[{i}]: {e}"))?;
        let status = s.get("status").and_then(Json::as_str).unwrap_or("");
        if !matches!(status, "ok" | "degraded" | "no_data") {
            return Err(format!("slos[{i}]: unknown status `{status}`"));
        }
    }
    Ok((metrics.len(), slos.len()))
}

/// Validates a `BENCH_10.json` document (serving observability bench):
/// a `sketch` section gating sketch-vs-exact quantile error and a
/// `tracing` section gating enabled-sampled-tracing overhead, plus the
/// measured disabled-observability overhead.
pub fn validate_bench10(text: &str) -> Result<(), String> {
    let obj = parse(text).map_err(|e| e.to_string())?;
    check_all(&obj, &[("bench", Ty::Str), ("pass", Ty::Bool)])?;
    if obj.get("bench").and_then(Json::as_str) != Some("BENCH_10") {
        return Err("`bench` is not \"BENCH_10\"".into());
    }
    let sketch = obj.get("sketch").ok_or("missing `sketch` section")?;
    check_all(
        sketch,
        &[
            ("n", Ty::Num),
            ("p50_sketch_us", Ty::Num),
            ("p50_exact_us", Ty::Num),
            ("p99_sketch_us", Ty::Num),
            ("p99_exact_us", Ty::Num),
            ("rel_err_p50", Ty::Num),
            ("rel_err_p99", Ty::Num),
            ("bound", Ty::Num),
            ("pass", Ty::Bool),
        ],
    )
    .map_err(|e| format!("sketch: {e}"))?;
    let tracing = obj.get("tracing").ok_or("missing `tracing` section")?;
    check_all(
        tracing,
        &[
            ("requests", Ty::Num),
            ("base_us_per_req", Ty::Num),
            ("traced_us_per_req", Ty::Num),
            ("overhead_frac", Ty::Num),
            ("budget", Ty::Num),
            ("pass", Ty::Bool),
        ],
    )
    .map_err(|e| format!("tracing: {e}"))?;
    let disabled = obj.get("disabled").ok_or("missing `disabled` section")?;
    check_all(
        disabled,
        &[
            ("requests", Ty::Num),
            ("enabled_us_per_req", Ty::Num),
            ("disabled_us_per_req", Ty::Num),
            ("overhead_frac", Ty::Num),
            ("budget", Ty::Num),
        ],
    )
    .map_err(|e| format!("disabled: {e}"))?;
    Ok(())
}

/// Validates a whole JSONL document (one event per non-empty line).
/// Returns per-kind counts, or the first error with its line number.
pub fn validate_stream(text: &str) -> Result<Vec<(String, usize)>, String> {
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let kind = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        *counts.entry(kind).or_insert(0) += 1;
    }
    Ok(counts.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documented_events() {
        let lines = [
            r#"{"ev":"run","schema":1,"strategy":"meta-two-step","threads":4,"shard_size":16,"seed":42}"#,
            r#"{"ev":"batch","epoch":0,"batch":3,"step":3,"beta":0.05,"recon":4.1,"kl_a":0.9,"kl_b":1.2,"info_nce":2.1,"total":4.3,"grad_norm":1.25,"meta_update_norm":0.004}"#,
            r#"{"ev":"epoch","epoch":0,"batches":12,"recon":4.0,"kl_a":0.9,"kl_b":1.1,"info_nce":2.0,"total":4.2}"#,
            r#"{"ev":"metric","name":"tensor.gemm.calls","kind":"counter","det":true,"value":1024}"#,
            r#"{"ev":"metric","name":"optim.grad_norm","kind":"gauge","det":true,"value":0.5}"#,
            r#"{"ev":"metric","name":"autograd.backward.wall_ns","kind":"histogram","det":false,"count":3,"sum":900,"invalid":0,"buckets":[[8,2],[9,1]]}"#,
            r#"{"ev":"span","id":2,"parent":1,"name":"batch","start_ns":10,"dur_ns":90,"epoch":0}"#,
            r#"{"ev":"health","t_ns":5,"detector":"kl_collapse_a","epoch":1,"batch":2,"step":14,"value":1e-9,"message":"collapse"}"#,
            r#"{"ev":"checkpoint","t_ns":9,"step":40,"path":"ckpts/ckpt-000000000040.msgc2"}"#,
            r#"{"ev":"resume","t_ns":1,"epoch":2,"batch":1,"step":21,"path":"ckpts"}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn null_stands_in_for_nonfinite_floats() {
        let line = r#"{"ev":"batch","epoch":0,"batch":0,"step":0,"beta":0.0,"recon":null,"kl_a":null,"kl_b":0.1,"info_nce":0.2,"total":null,"grad_norm":null}"#;
        assert_eq!(validate_line(line).unwrap(), "batch");
    }

    #[test]
    fn rejects_unknown_kind_missing_field_wrong_type() {
        assert!(validate_line(r#"{"ev":"mystery"}"#).is_err());
        assert!(validate_line(r#"{"ev":"batch","epoch":0}"#).is_err());
        assert!(validate_line(
            r#"{"ev":"span","id":"x","parent":0,"name":"n","start_ns":0,"dur_ns":0}"#
        )
        .is_err());
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2]").is_err());
        let bad_bucket = r#"{"ev":"metric","name":"h","kind":"histogram","det":true,"count":1,"sum":1,"invalid":0,"buckets":[[1]]}"#;
        assert!(validate_line(bad_bucket).is_err());
    }

    #[test]
    fn accepts_serve_events() {
        let lines = [
            r#"{"ev":"metric","name":"serve.latency_us","kind":"sketch","det":false,"count":10,"sum":1000,"p50":90.0,"p90":180.0,"p99":200.0,"p999":null}"#,
            r#"{"ev":"req","id":17,"t_ns":5,"op":"score","user":3,"enqueue_ns":100,"assemble_ns":50,"forward_ns":900,"retrieve_ns":200,"serialize_ns":30,"total_ns":1280,"cold_start":false,"cache_hit":true,"ann":true,"ann_fallback":false}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // Missing a phase field or a flag is an error.
        assert!(validate_line(r#"{"ev":"req","id":1,"op":"score"}"#).is_err());
        assert!(validate_line(
            r#"{"ev":"metric","name":"s","kind":"sketch","det":false,"count":1,"sum":1}"#
        )
        .is_err());
    }

    #[test]
    fn admin_snapshot_validates_shape_and_order() {
        let good = r#"{"ok":true,"kind":"snapshot","metrics":[
            {"ev":"metric","name":"serve.cache.hit","kind":"counter","det":true,"value":5},
            {"ev":"metric","name":"serve.latency_us","kind":"sketch","det":false,"count":2,"sum":20,"p50":9.0,"p90":11.0,"p99":11.0,"p999":11.0}
        ],"slos":[
            {"name":"p99_latency_ms","status":"ok","value":1.5,"threshold":50.0,"breached_ever":false,"reason":"1.5 within budget 50"},
            {"name":"recall_at_10","status":"no_data","value":null,"threshold":0.8,"breached_ever":false,"reason":"no observations in window"}
        ]}"#;
        assert_eq!(validate_admin_snapshot(good), Ok((2, 2)));
        // Unsorted metric names are rejected (determinism contract).
        let unsorted = good.replace("serve.cache.hit", "zzz.last");
        assert!(validate_admin_snapshot(&unsorted)
            .unwrap_err()
            .contains("name-sorted"));
        let bad_status = good.replace("\"no_data\"", "\"meh\"");
        assert!(validate_admin_snapshot(&bad_status).is_err());
        assert!(validate_admin_snapshot(r#"{"ok":true,"kind":"health"}"#).is_err());
    }

    #[test]
    fn bench10_validates_required_sections() {
        let good = r#"{"bench":"BENCH_10","pass":true,
            "sketch":{"n":4096,"p50_sketch_us":101.0,"p50_exact_us":100.0,"p99_sketch_us":250.0,"p99_exact_us":252.0,"rel_err_p50":0.01,"rel_err_p99":0.008,"bound":0.02,"pass":true},
            "tracing":{"requests":4096,"base_us_per_req":120.0,"traced_us_per_req":125.0,"overhead_frac":0.04,"budget":0.25,"pass":true},
            "disabled":{"requests":4096,"enabled_us_per_req":120.0,"disabled_us_per_req":119.0,"overhead_frac":-0.008,"budget":0.02}}"#;
        validate_bench10(good).unwrap_or_else(|e| panic!("{e}"));
        assert!(validate_bench10(r#"{"bench":"BENCH_9","pass":true}"#).is_err());
        let missing = good.replace("\"tracing\"", "\"tracingX\"");
        assert!(validate_bench10(&missing).unwrap_err().contains("tracing"));
    }

    #[test]
    fn stream_counts_by_kind_and_reports_line_numbers() {
        let text = "\n{\"ev\":\"checkpoint\",\"step\":1,\"path\":\"a\"}\n{\"ev\":\"checkpoint\",\"step\":2,\"path\":\"b\"}\n";
        assert_eq!(
            validate_stream(text).unwrap(),
            vec![("checkpoint".to_string(), 2)]
        );
        let broken = "{\"ev\":\"checkpoint\",\"step\":1,\"path\":\"a\"}\nnope\n";
        let err = validate_stream(broken).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}

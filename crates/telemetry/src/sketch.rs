//! A mergeable streaming quantile sketch (DDSketch-style).
//!
//! Serving latency quantiles (p50/p99/p999) must be available live, over
//! millions of observations, without storing samples. This sketch buckets
//! values logarithmically: with relative accuracy `alpha`, bucket `i ≥ 1`
//! covers `(γ^(i-1), γ^i]` for `γ = (1+α)/(1-α)`, and the bucket-midpoint
//! estimate `2γ^i/(γ+1)` is within a factor `1±α` of every value in the
//! bucket. Quantile queries therefore return an estimate with **relative
//! error ≤ α** of the exact sorted-rank sample — the property test in this
//! module checks that bound directly against exact sorted quantiles.
//!
//! Memory is fixed at construction: the `u64` domain needs
//! `⌈ln(u64::MAX)/ln γ⌉ + 1` buckets (≈ 2.2 k at α = 1 %, ~18 KB), so there
//! is no collapse logic and recording is one atomic increment — safe to
//! share behind `&'static` from any number of threads. Two sketches with
//! the same `alpha` merge by adding bucket counts ([`DdSketch::merge_from`]),
//! which is how sliding windows are composed in [`crate::slo`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Default relative accuracy (1 %).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Quantiles reported in snapshots and the admin endpoint, in order.
pub const REPORTED_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)];

/// Shared bucket-index math for a given accuracy, usable by both the
/// atomic sketch and the plain windowed buffers in [`crate::slo`].
#[derive(Debug, Clone, Copy)]
pub struct SketchLayout {
    /// Relative accuracy α.
    pub alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Bucket count, including the exact-zero bucket 0.
    pub buckets: usize,
}

impl SketchLayout {
    /// Layout for relative accuracy `alpha` (clamped to a sane range).
    pub fn new(alpha: f64) -> SketchLayout {
        let alpha = alpha.clamp(1e-4, 0.5);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        // Bucket i ≥ 1 covers (γ^(i-1), γ^i]; the u64 domain tops out at
        // index ⌈ln(u64::MAX)/ln γ⌉.
        let top = ((u64::MAX as f64).ln() / ln_gamma).ceil() as usize;
        SketchLayout {
            alpha,
            gamma,
            ln_gamma,
            buckets: top + 2,
        }
    }

    /// Bucket index for a value: 0 holds exact zeros, `i ≥ 1` covers
    /// `(γ^(i-1), γ^i]`.
    pub fn index_of(&self, v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        // ceil with a tolerance: v exactly on a bucket edge (γ^i) must not
        // spill upward through float noise.
        let raw = (v as f64).ln() / self.ln_gamma;
        let idx = raw.ceil();
        let idx = if idx - raw > 1.0 - 1e-9 {
            idx - 1.0
        } else {
            idx
        };
        (idx.max(1.0) as usize).min(self.buckets - 1)
    }

    /// Midpoint estimate for bucket `i`: within `1±α` of every value in it.
    pub fn estimate_of(&self, idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        2.0 * self.gamma.powi(idx as i32) / (self.gamma + 1.0)
    }
}

/// A fixed-memory, thread-safe, mergeable quantile sketch over `u64`
/// observations (latencies in µs or ns).
pub struct DdSketch {
    layout: SketchLayout,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl DdSketch {
    /// A sketch with relative accuracy `alpha`.
    pub fn new(alpha: f64) -> DdSketch {
        let layout = SketchLayout::new(alpha);
        DdSketch {
            layout,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..layout.buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The bucket layout (accuracy and size).
    pub fn layout(&self) -> SketchLayout {
        self.layout
    }

    /// Records one observation: two relaxed atomic adds plus one bucket
    /// increment — no locks, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[self.layout.index_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate of the `q`-quantile (`0 ≤ q ≤ 1`), or `None` when empty.
    ///
    /// The estimate is within relative error α of the exact sample at rank
    /// `⌊q·(n-1)⌋` of the sorted observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (n - 1) as f64).floor() as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum > target {
                return Some(self.layout.estimate_of(i));
            }
        }
        Some(self.layout.estimate_of(self.layout.buckets - 1))
    }

    /// Adds every bucket of `other` into `self`. Both sketches must share
    /// the same accuracy (layouts are equal by construction from `alpha`).
    pub fn merge_from(&self, other: &DdSketch) {
        debug_assert_eq!(self.layout.buckets, other.layout.buckets);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let v = src.load(Ordering::Relaxed);
            if v > 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Zeroes the sketch.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// The reported quantiles (`p50`/`p90`/`p99`/`p999`), `None` per entry
    /// when the sketch is empty.
    pub fn reported(&self) -> [(&'static str, Option<f64>); 4] {
        REPORTED_QUANTILES.map(|(name, q)| (name, self.quantile(q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile with the same rank rule the sketch uses.
    fn exact(sorted: &[u64], q: f64) -> u64 {
        let target = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[target]
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = DdSketch::new(DEFAULT_ALPHA);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn bucket_edges_round_trip_within_alpha() {
        let layout = SketchLayout::new(0.01);
        for v in [1u64, 2, 3, 10, 100, 12345, 1_000_000, u64::MAX / 2] {
            let est = layout.estimate_of(layout.index_of(v));
            let rel = (est - v as f64).abs() / v as f64;
            assert!(rel <= 0.01 + 1e-9, "value {v}: estimate {est}, rel {rel}");
        }
        assert_eq!(layout.index_of(0), 0);
        assert_eq!(layout.estimate_of(0), 0.0);
    }

    #[test]
    fn quantiles_track_exact_sorted_values() {
        // Deterministic pseudo-random latencies spanning four decades.
        let mut vals: Vec<u64> = (0..10_000u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                100 + x % 1_000_000
            })
            .collect();
        let s = DdSketch::new(DEFAULT_ALPHA);
        for &v in &vals {
            s.record(v);
        }
        vals.sort_unstable();
        for (_, q) in REPORTED_QUANTILES {
            let est = s.quantile(q).unwrap();
            let want = exact(&vals, q) as f64;
            let rel = (est - want).abs() / want;
            assert!(
                rel <= DEFAULT_ALPHA + 1e-9,
                "q={q}: est {est} want {want} rel {rel}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = DdSketch::new(0.02);
        let b = DdSketch::new(0.02);
        let all = DdSketch::new(0.02);
        for i in 0..500u64 {
            let v = 1 + i * 37 % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn zeros_and_extremes_are_representable() {
        let s = DdSketch::new(0.01);
        s.record(0);
        s.record(0);
        s.record(u64::MAX);
        assert_eq!(s.quantile(0.0), Some(0.0));
        let top = s.quantile(1.0).unwrap();
        assert!(top > u64::MAX as f64 * 0.98);
    }
}

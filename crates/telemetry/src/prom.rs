//! Prometheus-style text exposition over registry snapshots.
//!
//! The serve admin endpoint answers `{"op":"admin","cmd":"prom"}` with this
//! format so any scrape-based collector can ingest the registry without a
//! JSON shim. The output follows the text exposition conventions: metric
//! names are the registry names with `.` mapped to `_`, counters get a
//! `_total` suffix, histograms and sketches expand to `_count`/`_sum` plus
//! quantile series labelled `{quantile="0.99"}`. Lines are emitted in
//! name-sorted snapshot order, so the exposition is deterministic for a
//! deterministic registry state.

use crate::metrics::{MetricSnapshot, MetricValue};
use crate::sketch::REPORTED_QUANTILES;
use crate::trace::json_f64;

/// Maps a registry metric name (`serve.batch.wait_us`) to a Prometheus
/// metric name (`serve_batch_wait_us`). Any character outside
/// `[a-zA-Z0-9_:]` becomes `_`.
pub fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        json_f64(v)
    }
}

/// Renders one snapshot to exposition lines (no trailing blank line).
pub fn render(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshots {
        let base = prom_name(m.name);
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {base}_total counter\n"));
                out.push_str(&format!("{base}_total {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                out.push_str(&format!("{base} {}\n", prom_f64(*v)));
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                // Log2 buckets expose cumulative counts keyed by upper edge,
                // the conventional `le` label (bucket i covers [2^(i-1), 2^i)).
                out.push_str(&format!("# TYPE {base} histogram\n"));
                let mut cum = 0u64;
                for (i, c) in buckets {
                    cum += c;
                    let le = if *i == 0 {
                        "0".to_string()
                    } else if *i >= 64 {
                        "+Inf".to_string()
                    } else {
                        (1u64 << i).to_string()
                    };
                    out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                if buckets.last().is_none_or(|(i, _)| *i < 64) {
                    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {cum}\n"));
                }
                out.push_str(&format!("{base}_sum {sum}\n"));
                out.push_str(&format!("{base}_count {count}\n"));
            }
            MetricValue::Sketch {
                count,
                sum,
                quantiles,
            } => {
                out.push_str(&format!("# TYPE {base} summary\n"));
                for ((_, v), (_, q)) in quantiles.iter().zip(REPORTED_QUANTILES) {
                    if let Some(v) = v {
                        out.push_str(&format!("{base}{{quantile=\"{q}\"}} {}\n", prom_f64(*v)));
                    }
                }
                out.push_str(&format!("{base}_sum {sum}\n"));
                out.push_str(&format!("{base}_count {count}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_mapping_replaces_dots() {
        assert_eq!(prom_name("serve.batch.wait_us"), "serve_batch_wait_us");
        assert_eq!(prom_name("a-b c"), "a_b_c");
    }

    #[test]
    fn renders_every_kind() {
        let snaps = vec![
            MetricSnapshot {
                name: "serve.requests",
                det: true,
                value: MetricValue::Counter(42),
            },
            MetricSnapshot {
                name: "serve.qps",
                det: false,
                value: MetricValue::Gauge(12.5),
            },
            MetricSnapshot {
                name: "serve.batch.wait_us",
                det: false,
                value: MetricValue::Histogram {
                    count: 3,
                    sum: 10,
                    invalid: 0,
                    buckets: vec![(0, 1), (3, 2)],
                },
            },
            MetricSnapshot {
                name: "serve.latency_us",
                det: false,
                value: MetricValue::Sketch {
                    count: 2,
                    sum: 300,
                    quantiles: [
                        ("p50", Some(100.0)),
                        ("p90", Some(200.0)),
                        ("p99", Some(200.0)),
                        ("p999", None),
                    ],
                },
            },
        ];
        let text = render(&snaps);
        assert!(text.contains("serve_requests_total 42\n"), "{text}");
        assert!(text.contains("serve_qps 12.5\n"), "{text}");
        // Histogram buckets are cumulative and close with +Inf.
        assert!(text.contains("serve_batch_wait_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("serve_batch_wait_us_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("serve_batch_wait_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_batch_wait_us_count 3\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.5\"} 100.0\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.99\"} 200.0\n"));
        // Empty p999 is omitted, totals still present.
        assert!(!text.contains("quantile=\"0.999\""));
        assert!(text.contains("serve_latency_us_count 2\n"));
    }
}

//! Structured tracing spans emitted as JSONL.
//!
//! A [`Tracer`] owns one output stream (usually the `--trace-out` file) and
//! hands out process-unique span ids from an atomic counter. Timestamps are
//! nanoseconds on a monotonic clock anchored at tracer creation, so events
//! order correctly even across worker threads. Workers share the tracer
//! behind an `Arc`; the write path takes one short mutex per emitted line
//! (spans are emitted at *end*, so the lock is held outside the traced
//! region).
//!
//! Event shape (see `DESIGN.md` §10 for the full schema):
//!
//! ```json
//! {"ev":"span","id":7,"parent":3,"name":"backward","start_ns":1234,"dur_ns":567,"shard":1}
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of an emitted span; `SpanId::ROOT` (0) means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The no-parent sentinel.
    pub const ROOT: SpanId = SpanId(0);
}

/// A started-but-not-yet-emitted span. Pass it back to [`Tracer::end`].
#[derive(Debug)]
pub struct ActiveSpan {
    /// Id allocated at start (children may reference it as their parent).
    pub id: SpanId,
    name: &'static str,
    parent: SpanId,
    start_ns: u64,
}

/// An extra field attached to a span or event.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// Serializes an `f64` as a JSON value: finite floats use Rust's shortest
/// round-trip formatting (deterministic for a deterministic value);
/// non-finite values become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits the ".0" on integral floats; keep it so readers see a
        // float, and so the value survives a parse → format round trip.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

/// JSON string escaping for the small character set that can appear in
/// paths, messages, and metric names.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_fields(line: &mut String, fields: &[(&str, Field<'_>)]) {
    for (k, v) in fields {
        line.push_str(",\"");
        line.push_str(&json_escape(k));
        line.push_str("\":");
        match v {
            Field::U64(x) => line.push_str(&x.to_string()),
            Field::I64(x) => line.push_str(&x.to_string()),
            Field::F64(x) => line.push_str(&json_f64(*x)),
            Field::Bool(x) => line.push_str(if *x { "true" } else { "false" }),
            Field::Str(s) => {
                line.push('"');
                line.push_str(&json_escape(s));
                line.push('"');
            }
        }
    }
}

/// A JSONL span/event writer with monotonic timestamps.
pub struct Tracer {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    origin: Instant,
    next_id: AtomicU64,
}

impl Tracer {
    /// Creates a tracer writing to `path` (truncating an existing file).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Tracer> {
        let f = File::create(path)?;
        Ok(Tracer::to_writer(Box::new(f)))
    }

    /// Creates a tracer over an arbitrary writer (tests use a buffer).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Tracer {
        Tracer {
            out: Mutex::new(BufWriter::new(w)),
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
        }
    }

    /// Nanoseconds since tracer creation on the monotonic clock.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Starts a span. Cheap: allocates an id and records the start time; no
    /// I/O happens until [`Tracer::end`].
    pub fn begin(&self, name: &'static str, parent: SpanId) -> ActiveSpan {
        ActiveSpan {
            id: SpanId(self.next_id.fetch_add(1, Ordering::Relaxed)),
            name,
            parent,
            start_ns: self.now_ns(),
        }
    }

    /// Ends a span, emitting its JSONL event with optional extra fields.
    pub fn end(&self, span: ActiveSpan, fields: &[(&str, Field<'_>)]) {
        let dur = self.now_ns().saturating_sub(span.start_ns);
        self.emit_span(span.id, span.parent, span.name, span.start_ns, dur, fields);
    }

    /// Allocates a fresh span id without starting a clock.
    ///
    /// For spans reconstructed from stored timestamps (the serve pipeline
    /// measures phases as it goes and emits the whole tree at response
    /// time): allocate the parent id up front so children can reference it,
    /// then emit every member with [`Tracer::emit_span`].
    pub fn alloc_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Emits a span event from explicit timestamps (`start_ns` on this
    /// tracer's clock — see [`Tracer::now_ns`]) under a pre-allocated id.
    pub fn emit_span(
        &self,
        id: SpanId,
        parent: SpanId,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        fields: &[(&str, Field<'_>)],
    ) {
        let mut line = format!(
            "{{\"ev\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}",
            id.0,
            parent.0,
            json_escape(name),
            start_ns,
            dur_ns
        );
        push_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }

    /// Emits an instant event (`{"ev":"<name>", "t_ns":..., fields}`); the
    /// name must be one of the schema's event kinds.
    pub fn event(&self, ev: &str, fields: &[(&str, Field<'_>)]) {
        let mut line = format!(
            "{{\"ev\":\"{}\",\"t_ns\":{}",
            json_escape(ev),
            self.now_ns()
        );
        push_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }

    /// Writes one pre-formatted JSONL line (no trailing newline required).
    pub fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer that appends into a shared buffer so tests can inspect
    /// emitted lines after the tracer flushes.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_nest_and_validate() {
        let buf = Shared::default();
        let t = Tracer::to_writer(Box::new(buf.clone()));
        let epoch = t.begin("epoch", SpanId::ROOT);
        let batch = t.begin("batch", epoch.id);
        let (epoch_id, batch_id) = (epoch.id.0, batch.id.0);
        t.end(batch, &[("batch", Field::U64(3))]);
        t.end(epoch, &[("epoch", Field::U64(0))]);
        t.event(
            "health",
            &[
                ("detector", Field::Str("kl_collapse_a")),
                ("epoch", Field::U64(0)),
                ("batch", Field::U64(3)),
                ("step", Field::U64(12)),
                ("value", Field::F64(1e-9)),
                ("message", Field::Str("kl_a below floor")),
            ],
        );
        t.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            crate::schema::validate_line(line)
                .unwrap_or_else(|e| panic!("line {line} failed schema: {e}"));
        }
        // The batch span names the epoch span as its parent.
        assert!(lines[0].contains(&format!("\"parent\":{epoch_id}")));
        assert!(lines[0].contains(&format!("\"id\":{batch_id}")));
    }

    #[test]
    fn json_f64_round_trips_and_nulls_nonfinite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(-0.0), "-0.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let tiny = 1e-300;
        let s = json_f64(tiny);
        assert_eq!(s.parse::<f64>().unwrap(), tiny);
    }

    #[test]
    fn escape_covers_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

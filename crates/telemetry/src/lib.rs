//! Training telemetry for the Meta-SGCL reproduction.
//!
//! Three cooperating pieces, all dependency-free and usable from every
//! layer of the stack (`tensor` up to the `msgc` CLI):
//!
//! * [`metrics`] — a process-wide, lock-cheap registry of counters, gauges
//!   and log2-bucketed histograms. Hot-path updates are a single relaxed
//!   atomic op guarded by a global enabled flag; with telemetry disabled
//!   (the default) an update is one atomic load and **zero allocations**.
//!   Snapshots are returned in deterministic (name-sorted) order, and every
//!   metric is tagged with a determinism class so thread-count-invariant
//!   values can be separated from timing noise.
//! * [`trace`] — structured tracing spans around the training loop's
//!   semantic stages (epoch, batch, forward, backward, optimizer step,
//!   the meta two-step's stage-1/stage-2), emitted as JSONL events with
//!   monotonic timestamps and process-unique span ids.
//! * [`health`] — online detectors over the per-batch loss decomposition:
//!   KL collapse of either latent view, a dead `Enc_σ'` meta stage, and
//!   non-finite / exploding losses.
//!
//! Serving observability (DESIGN.md §15) builds on the same primitives:
//!
//! * [`sketch`] — a mergeable DDSketch-style streaming quantile sketch
//!   (fixed memory, relative error ≤ α) behind the registry's `sketch`
//!   metric kind, for live p50/p99/p999 serve latency.
//! * [`slo`] — sliding-window rate/quantile monitors with the latching
//!   breach semantics of [`health`], backing the serve admin endpoint's
//!   SLO states.
//! * [`prom`] — a Prometheus-style text exposition writer over registry
//!   snapshots.
//!
//! [`json`] is a minimal JSON reader (the build is fully offline, so no
//! serde) and [`schema`] validates emitted JSONL lines against the
//! documented event schema (see `DESIGN.md` §10); both back the
//! `telemetry_check` CLI and `msgc report`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod schema;
pub mod sketch;
pub mod slo;
pub mod trace;

pub use health::{BatchHealth, Detector, HealthConfig, HealthMonitor, HealthWarning};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Sketch};
pub use sketch::DdSketch;
pub use slo::{
    SloKind, SloMonitor, SloState, SloStatus, WindowCfg, WindowedQuantile, WindowedRate,
};
pub use trace::{ActiveSpan, Field, SpanId, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables metric collection.
///
/// Disabled (the default), every counter/gauge/histogram update is a single
/// relaxed atomic load — no stores, no locks, no allocations on any hot
/// path. Tracing is independently opt-in per [`Tracer`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when metric collection is globally enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

//! Online training-health detectors over the per-batch loss decomposition.
//!
//! Meta-SGCL's objective couples reconstruction, two KL terms (one per
//! latent view), and an InfoNCE term under a two-stage meta schedule; its
//! characteristic failure modes are invisible in a single loss number:
//!
//! * **KL collapse** — a latent view's KL term sits at ~0, meaning the
//!   posterior has collapsed onto the prior and the view carries no
//!   sequence information (the classic VAE pathology the paper's β/KL
//!   annealing fights).
//! * **Dead `Enc_σ'`** — the meta stage's update norm is ~0, so the learned
//!   view generator has stopped adapting and the second view is frozen.
//! * **Non-finite / exploding loss** — divergence.
//!
//! [`HealthMonitor`] consumes one [`BatchHealth`] per batch and returns
//! structured [`HealthWarning`]s. Each detector latches: it fires once per
//! run, when its condition has held for the configured patience.

use std::fmt;

/// Detector identifiers (stable strings for the JSONL stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// KL of view 1 (`Enc_σ`) below the floor for `kl_patience` batches.
    KlCollapseA,
    /// KL of view 2 (`Enc_σ'`) below the floor for `kl_patience` batches.
    KlCollapseB,
    /// Meta-stage (σ'-only) update norm ≈ 0 for `dead_patience` batches.
    DeadMetaSigma,
    /// Total loss became NaN or infinite.
    NonFiniteLoss,
    /// Total loss exceeded the explosion limit.
    ExplodingLoss,
}

impl Detector {
    /// Stable wire name used in JSONL `health` events.
    pub fn wire_name(self) -> &'static str {
        match self {
            Detector::KlCollapseA => "kl_collapse_a",
            Detector::KlCollapseB => "kl_collapse_b",
            Detector::DeadMetaSigma => "dead_meta_sigma",
            Detector::NonFiniteLoss => "non_finite_loss",
            Detector::ExplodingLoss => "exploding_loss",
        }
    }
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Per-batch observations the monitor consumes.
#[derive(Debug, Clone, Copy)]
pub struct BatchHealth {
    /// Epoch index.
    pub epoch: usize,
    /// Batch index within the epoch.
    pub batch: usize,
    /// Global optimizer step.
    pub step: u64,
    /// Unweighted KL of view 1 (`Enc_σ`).
    pub kl_a: f64,
    /// Unweighted KL of view 2 (`Enc_σ'` or the configured generator).
    pub kl_b: f64,
    /// Weighted total loss.
    pub total: f64,
    /// Update norm of the meta (σ'-only) stage, when that stage ran.
    pub meta_update_norm: Option<f64>,
}

/// Detector thresholds. Defaults are generous: healthy runs at
/// reproduction scale stay far above the floors (the log-variance heads
/// initialize near KL ≈ 1, and Adam updates are ≥ 1e-6 while gradients
/// flow at all).
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// A view's KL below this value counts toward collapse.
    pub kl_floor: f64,
    /// Consecutive below-floor batches before the collapse detector fires.
    pub kl_patience: usize,
    /// Meta-stage update norm below this value counts as dead.
    pub dead_update_norm: f64,
    /// Consecutive dead batches before the dead-σ' detector fires.
    pub dead_patience: usize,
    /// Total loss above this value fires the explosion detector.
    pub explode_limit: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            kl_floor: 1e-4,
            kl_patience: 25,
            dead_update_norm: 1e-9,
            dead_patience: 25,
            explode_limit: 1e6,
        }
    }
}

/// A structured warning emitted by a detector.
#[derive(Debug, Clone)]
pub struct HealthWarning {
    /// Which detector fired.
    pub detector: Detector,
    /// Epoch of the triggering batch.
    pub epoch: usize,
    /// Batch index of the triggering batch.
    pub batch: usize,
    /// Global step of the triggering batch.
    pub step: u64,
    /// The offending value (KL, update norm, or loss).
    pub value: f64,
    /// Human-readable diagnosis.
    pub message: String,
}

impl fmt::Display for HealthWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[health:{}] epoch {} batch {} step {}: {} (value {:.3e})",
            self.detector, self.epoch, self.batch, self.step, self.message, self.value
        )
    }
}

/// Streaming state of all detectors for one training run.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    below_a: usize,
    below_b: usize,
    dead_meta: usize,
    fired: Vec<Detector>,
}

impl HealthMonitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(cfg: HealthConfig) -> HealthMonitor {
        HealthMonitor {
            cfg,
            below_a: 0,
            below_b: 0,
            dead_meta: 0,
            fired: Vec::new(),
        }
    }

    /// True if `d` has already fired in this run.
    pub fn has_fired(&self, d: Detector) -> bool {
        self.fired.contains(&d)
    }

    /// All detectors that fired so far, in firing order.
    pub fn fired(&self) -> &[Detector] {
        &self.fired
    }

    fn fire(
        &mut self,
        out: &mut Vec<HealthWarning>,
        b: &BatchHealth,
        d: Detector,
        value: f64,
        message: String,
    ) {
        if self.has_fired(d) {
            return;
        }
        self.fired.push(d);
        out.push(HealthWarning {
            detector: d,
            epoch: b.epoch,
            batch: b.batch,
            step: b.step,
            value,
            message,
        });
    }

    /// Feeds one batch; returns any newly fired warnings.
    pub fn observe(&mut self, b: &BatchHealth) -> Vec<HealthWarning> {
        let mut out = Vec::new();
        let cfg = self.cfg;

        if !b.total.is_finite() {
            self.fire(
                &mut out,
                b,
                Detector::NonFiniteLoss,
                b.total,
                "total loss is NaN or infinite".into(),
            );
        } else if b.total.abs() > cfg.explode_limit {
            self.fire(
                &mut out,
                b,
                Detector::ExplodingLoss,
                b.total,
                format!("total loss exceeds {:.1e}", cfg.explode_limit),
            );
        }

        // NaN KLs never count as "below floor" — the non-finite detector
        // owns that case via the total.
        self.below_a = if b.kl_a < cfg.kl_floor {
            self.below_a + 1
        } else {
            0
        };
        self.below_b = if b.kl_b < cfg.kl_floor {
            self.below_b + 1
        } else {
            0
        };
        if self.below_a >= cfg.kl_patience {
            self.fire(
                &mut out,
                b,
                Detector::KlCollapseA,
                b.kl_a,
                format!(
                    "view-1 KL below {:.1e} for {} consecutive batches (posterior collapse)",
                    cfg.kl_floor, cfg.kl_patience
                ),
            );
        }
        if self.below_b >= cfg.kl_patience {
            self.fire(
                &mut out,
                b,
                Detector::KlCollapseB,
                b.kl_b,
                format!(
                    "view-2 KL below {:.1e} for {} consecutive batches (posterior collapse)",
                    cfg.kl_floor, cfg.kl_patience
                ),
            );
        }

        if let Some(norm) = b.meta_update_norm {
            self.dead_meta = if norm < cfg.dead_update_norm {
                self.dead_meta + 1
            } else {
                0
            };
            if self.dead_meta >= cfg.dead_patience {
                self.fire(
                    &mut out,
                    b,
                    Detector::DeadMetaSigma,
                    norm,
                    format!(
                        "meta-stage (Enc_σ') update norm below {:.1e} for {} consecutive batches",
                        cfg.dead_update_norm, cfg.dead_patience
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(i: usize, kl_a: f64, kl_b: f64, total: f64, meta: Option<f64>) -> BatchHealth {
        BatchHealth {
            epoch: 0,
            batch: i,
            step: i as u64,
            kl_a,
            kl_b,
            total,
            meta_update_norm: meta,
        }
    }

    #[test]
    fn collapsed_kl_trips_detector_healthy_does_not() {
        let cfg = HealthConfig {
            kl_patience: 5,
            ..HealthConfig::default()
        };
        // Healthy run: KLs well above the floor.
        let mut healthy = HealthMonitor::new(cfg);
        for i in 0..200 {
            let w = healthy.observe(&batch(i, 0.8, 1.1, 5.0, Some(1e-3)));
            assert!(w.is_empty(), "healthy run fired {:?}", w[0].detector);
        }
        // Collapsed view 2: kl_b pinned at ~0.
        let mut collapsed = HealthMonitor::new(cfg);
        let mut fired = Vec::new();
        for i in 0..20 {
            fired.extend(collapsed.observe(&batch(i, 0.8, 1e-7, 5.0, Some(1e-3))));
        }
        assert_eq!(fired.len(), 1, "detector must latch after firing once");
        assert_eq!(fired[0].detector, Detector::KlCollapseB);
        assert_eq!(fired[0].batch, 4, "fires exactly at the patience limit");
    }

    #[test]
    fn recovery_resets_the_streak() {
        let cfg = HealthConfig {
            kl_patience: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        assert!(m.observe(&batch(0, 1e-9, 1.0, 5.0, None)).is_empty());
        assert!(m.observe(&batch(1, 1e-9, 1.0, 5.0, None)).is_empty());
        // One healthy batch resets the counter.
        assert!(m.observe(&batch(2, 0.5, 1.0, 5.0, None)).is_empty());
        assert!(m.observe(&batch(3, 1e-9, 1.0, 5.0, None)).is_empty());
        assert!(m.observe(&batch(4, 1e-9, 1.0, 5.0, None)).is_empty());
        let fired = m.observe(&batch(5, 1e-9, 1.0, 5.0, None));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, Detector::KlCollapseA);
    }

    #[test]
    fn dead_meta_sigma_fires_only_with_meta_stage() {
        let cfg = HealthConfig {
            dead_patience: 4,
            ..HealthConfig::default()
        };
        // Joint training never reports a meta update norm: no firing.
        let mut joint = HealthMonitor::new(cfg);
        for i in 0..50 {
            assert!(joint.observe(&batch(i, 1.0, 1.0, 5.0, None)).is_empty());
        }
        // Two-step training with a frozen σ'.
        let mut dead = HealthMonitor::new(cfg);
        let mut fired = Vec::new();
        for i in 0..10 {
            fired.extend(dead.observe(&batch(i, 1.0, 1.0, 5.0, Some(0.0))));
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, Detector::DeadMetaSigma);
    }

    #[test]
    fn nan_and_explosion_fire_immediately() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        let w = m.observe(&batch(0, 1.0, 1.0, f64::NAN, None));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].detector, Detector::NonFiniteLoss);

        let mut m = HealthMonitor::new(HealthConfig::default());
        let w = m.observe(&batch(0, 1.0, 1.0, 1e9, None));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].detector, Detector::ExplodingLoss);
        // Latched: a second exploding batch stays quiet.
        assert!(m.observe(&batch(1, 1.0, 1.0, 1e9, None)).is_empty());
    }
}

//! The lock-cheap metrics registry.
//!
//! Metrics are interned once per call site (cache the returned `&'static`
//! reference in a `OnceLock` if the lookup is on a hot path) and updated
//! with single relaxed atomic operations. The registry itself is only
//! locked at registration, snapshot, reset, and restore time — never on
//! the update path.
//!
//! # Determinism classes
//!
//! Every metric declares whether its value is *deterministic*: a pure
//! function of the work performed, identical across thread counts and
//! re-runs (op counts, tape lengths, loss-derived gauges). Wall-clock
//! histograms and allocator-pool hit rates are not. Deterministic metrics
//! are what `--metrics-out` snapshots, what training checkpoints persist,
//! and what the threads=1-vs-4 bitwise tests compare; nondeterministic
//! ones ride along in the trace stream only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::sketch::DdSketch;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so bucket 64 tops out the `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing `u64` counter.
pub struct Counter {
    name: &'static str,
    det: bool,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` when telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one when telemetry is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the value (checkpoint restore path).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
pub struct Gauge {
    name: &'static str,
    det: bool,
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge when telemetry is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A histogram over `u64` values with fixed log2 buckets.
pub struct Histogram {
    name: &'static str,
    det: bool,
    count: AtomicU64,
    sum: AtomicU64,
    invalid: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Bucket index for a recorded value: 0 for 0, else `64 - leading_zeros`
/// (so bucket `i ≥ 1` covers `[2^(i-1), 2^i)`).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one value when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an `f64` observation.
    ///
    /// NaN is counted as *invalid* and recorded in no bucket. Everything
    /// else saturates into the `u64` domain: negatives, zero, and
    /// subnormals land in bucket 0; `+∞` and values beyond `u64::MAX` land
    /// in the top bucket.
    #[inline]
    pub fn record_f64(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if v.is_nan() {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // `as` saturates: -x → 0, +∞ / huge → u64::MAX.
        self.record(v as u64);
    }

    /// `(count, sum, invalid)` totals.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.invalid.load(Ordering::Relaxed),
        )
    }

    /// Occupied buckets as `(bucket index, count)` pairs in index order.
    pub fn occupied_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A registry-owned quantile sketch (see [`crate::sketch::DdSketch`]).
///
/// Like the histogram it records `u64` observations with relaxed atomics,
/// but snapshots report accuracy-bounded quantiles (p50/p90/p99/p999)
/// instead of log2 buckets — the serving latency surface.
pub struct Sketch {
    name: &'static str,
    det: bool,
    inner: DdSketch,
}

impl Sketch {
    /// Records one value when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.inner.record(v);
        }
    }

    /// Estimate of the `q`-quantile, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.inner.quantile(q)
    }

    /// `(count, sum)` totals.
    pub fn totals(&self) -> (u64, u64) {
        (self.inner.count(), self.inner.sum())
    }

    /// The underlying mergeable sketch.
    pub fn inner(&self) -> &DdSketch {
        &self.inner
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

enum MetricRef {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
    S(&'static Sketch),
}

impl MetricRef {
    fn name(&self) -> &'static str {
        match self {
            MetricRef::C(c) => c.name,
            MetricRef::G(g) => g.name,
            MetricRef::H(h) => h.name,
            MetricRef::S(s) => s.name,
        }
    }
}

struct Registry {
    metrics: Vec<MetricRef>,
    /// Counter values restored from a checkpoint before the corresponding
    /// call site has registered its counter; applied at registration.
    pending_counters: Vec<(String, u64)>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> MutexGuard<'static, Registry> {
    let m = REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            metrics: Vec::new(),
            pending_counters: Vec::new(),
        })
    });
    // A panic while holding this lock is already fatal to telemetry;
    // clearing the poison keeps the rest of the process usable.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Interns (or returns the existing) counter `name`. `det` declares the
/// determinism class; it must be consistent across call sites.
pub fn counter(name: &'static str, det: bool) -> &'static Counter {
    let mut reg = registry();
    for m in &reg.metrics {
        if let MetricRef::C(c) = m {
            if c.name == name {
                return c;
            }
        }
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter {
        name,
        det,
        value: AtomicU64::new(0),
    }));
    if let Some(pos) = reg.pending_counters.iter().position(|(n, _)| n == name) {
        let (_, v) = reg.pending_counters.swap_remove(pos);
        leaked.value.store(v, Ordering::Relaxed);
    }
    reg.metrics.push(MetricRef::C(leaked));
    leaked
}

/// Interns (or returns the existing) gauge `name`.
pub fn gauge(name: &'static str, det: bool) -> &'static Gauge {
    let mut reg = registry();
    for m in &reg.metrics {
        if let MetricRef::G(g) = m {
            if g.name == name {
                return g;
            }
        }
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge {
        name,
        det,
        bits: AtomicU64::new(0.0f64.to_bits()),
    }));
    reg.metrics.push(MetricRef::G(leaked));
    leaked
}

/// Interns (or returns the existing) histogram `name`.
pub fn histogram(name: &'static str, det: bool) -> &'static Histogram {
    let mut reg = registry();
    for m in &reg.metrics {
        if let MetricRef::H(h) = m {
            if h.name == name {
                return h;
            }
        }
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        det,
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        invalid: AtomicU64::new(0),
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
    }));
    reg.metrics.push(MetricRef::H(leaked));
    leaked
}

/// Interns (or returns the existing) quantile sketch `name`, with the
/// default accuracy ([`crate::sketch::DEFAULT_ALPHA`]).
pub fn sketch(name: &'static str, det: bool) -> &'static Sketch {
    let mut reg = registry();
    for m in &reg.metrics {
        if let MetricRef::S(s) = m {
            if s.name == name {
                return s;
            }
        }
    }
    let leaked: &'static Sketch = Box::leak(Box::new(Sketch {
        name,
        det,
        inner: DdSketch::new(crate::sketch::DEFAULT_ALPHA),
    }));
    reg.metrics.push(MetricRef::S(leaked));
    leaked
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Last gauge value.
    Gauge(f64),
    /// Histogram totals plus occupied `(bucket, count)` pairs.
    Histogram {
        /// Number of recorded observations (excluding invalid ones).
        count: u64,
        /// Saturating sum of recorded values.
        sum: u64,
        /// NaN observations rejected by [`Histogram::record_f64`].
        invalid: u64,
        /// Non-empty buckets in index order.
        buckets: Vec<(usize, u64)>,
    },
    /// Quantile-sketch totals plus the reported quantiles.
    Sketch {
        /// Number of recorded observations.
        count: u64,
        /// Saturating sum of recorded values.
        sum: u64,
        /// `(p50, p90, p99, p999)` estimates; `None` per entry when empty.
        quantiles: [(&'static str, Option<f64>); 4],
    },
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Determinism class (see module docs).
    pub det: bool,
    /// Value at snapshot time.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// Serializes this snapshot as one JSONL `metric` event.
    pub fn to_jsonl(&self) -> String {
        let det = self.det;
        let name = self.name;
        match &self.value {
            MetricValue::Counter(v) => format!(
                "{{\"ev\":\"metric\",\"name\":\"{name}\",\"kind\":\"counter\",\"det\":{det},\"value\":{v}}}"
            ),
            MetricValue::Gauge(v) => format!(
                "{{\"ev\":\"metric\",\"name\":\"{name}\",\"kind\":\"gauge\",\"det\":{det},\"value\":{}}}",
                crate::trace::json_f64(*v)
            ),
            MetricValue::Histogram {
                count,
                sum,
                invalid,
                buckets,
            } => {
                let b: Vec<String> = buckets.iter().map(|(i, c)| format!("[{i},{c}]")).collect();
                format!(
                    "{{\"ev\":\"metric\",\"name\":\"{name}\",\"kind\":\"histogram\",\"det\":{det},\
                     \"count\":{count},\"sum\":{sum},\"invalid\":{invalid},\"buckets\":[{}]}}",
                    b.join(",")
                )
            }
            MetricValue::Sketch {
                count,
                sum,
                quantiles,
            } => {
                let q: Vec<String> = quantiles
                    .iter()
                    .map(|(name, v)| {
                        format!(
                            "\"{name}\":{}",
                            v.map_or_else(|| "null".into(), crate::trace::json_f64)
                        )
                    })
                    .collect();
                format!(
                    "{{\"ev\":\"metric\",\"name\":\"{name}\",\"kind\":\"sketch\",\"det\":{det},\
                     \"count\":{count},\"sum\":{sum},{}}}",
                    q.join(",")
                )
            }
        }
    }
}

/// Snapshots every registered metric in deterministic (name-sorted) order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry();
    let mut out: Vec<MetricSnapshot> = reg
        .metrics
        .iter()
        .map(|m| match m {
            MetricRef::C(c) => MetricSnapshot {
                name: c.name,
                det: c.det,
                value: MetricValue::Counter(c.get()),
            },
            MetricRef::G(g) => MetricSnapshot {
                name: g.name,
                det: g.det,
                value: MetricValue::Gauge(g.get()),
            },
            MetricRef::H(h) => {
                let (count, sum, invalid) = h.totals();
                MetricSnapshot {
                    name: h.name,
                    det: h.det,
                    value: MetricValue::Histogram {
                        count,
                        sum,
                        invalid,
                        buckets: h.occupied_buckets(),
                    },
                }
            }
            MetricRef::S(s) => {
                let (count, sum) = s.totals();
                MetricSnapshot {
                    name: s.name,
                    det: s.det,
                    value: MetricValue::Sketch {
                        count,
                        sum,
                        quantiles: s.inner.reported(),
                    },
                }
            }
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// [`snapshot`] restricted to deterministic metrics.
pub fn snapshot_deterministic() -> Vec<MetricSnapshot> {
    let mut all = snapshot();
    all.retain(|m| m.det);
    all
}

/// Zeroes every registered metric and clears pending restores. Call at the
/// start of a training run so per-run snapshots are not polluted by earlier
/// work in the same process.
pub fn reset() {
    let mut reg = registry();
    reg.pending_counters.clear();
    for m in &reg.metrics {
        match m {
            MetricRef::C(c) => c.value.store(0, Ordering::Relaxed),
            MetricRef::G(g) => g.bits.store(0.0f64.to_bits(), Ordering::Relaxed),
            MetricRef::H(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                h.invalid.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
            MetricRef::S(s) => s.inner.reset(),
        }
    }
}

/// Restores counter values from a checkpoint so counts continue
/// monotonically across a resume instead of restarting from zero.
///
/// Counters whose call sites have not yet run (and therefore are not
/// registered yet) are held pending and applied at registration time.
pub fn restore_counters(entries: &[(String, u64)]) {
    let mut reg = registry();
    for (name, v) in entries {
        let existing = reg.metrics.iter().find_map(|m| match m {
            MetricRef::C(c) if c.name == *name => Some(*c),
            _ => None,
        });
        match existing {
            Some(c) => c.value.store(*v, Ordering::Relaxed),
            None => reg.pending_counters.push((name.clone(), *v)),
        }
    }
}

/// Names every registered metric (sorted), for diagnostics.
pub fn metric_names() -> Vec<&'static str> {
    let reg = registry();
    let mut names: Vec<&'static str> = reg.metrics.iter().map(MetricRef::name).collect();
    names.sort_unstable();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and the enabled flag are process-global; every test in
    // this module serializes on this lock and resets before use.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        crate::set_enabled(true);
        reset();
        g
    }

    #[test]
    fn counter_round_trip_and_disabled_noop() {
        let _g = guard();
        let c = counter("test.counter.rt", true);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        crate::set_enabled(false);
        c.add(100);
        assert_eq!(c.get(), 4, "disabled counter must not move");
        crate::set_enabled(true);
    }

    #[test]
    fn histogram_bucket_edges() {
        let _g = guard();
        // Exact zero → bucket 0.
        assert_eq!(bucket_of(0), 0);
        // Powers of two land at the bottom of their bucket.
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let h = histogram("test.hist.edges", true);
        h.record_f64(0.0);
        h.record_f64(f64::MIN_POSITIVE / 2.0); // subnormal → bucket 0
        h.record_f64(-5.0); // negative saturates to 0
        h.record_f64(f64::INFINITY); // top bucket
        h.record_f64(f64::NAN); // invalid, no bucket
        let (count, _sum, invalid) = h.totals();
        assert_eq!(count, 4);
        assert_eq!(invalid, 1);
        let buckets = h.occupied_buckets();
        assert_eq!(buckets, vec![(0, 3), (64, 1)]);
    }

    #[test]
    fn snapshot_is_name_sorted_and_det_filtered() {
        let _g = guard();
        counter("test.zz.last", true).add(1);
        counter("test.aa.first", false).add(2);
        gauge("test.mm.mid", true).set(1.5);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(snapshot_deterministic()
            .iter()
            .all(|m| m.det && m.name != "test.aa.first"));
    }

    #[test]
    fn restore_applies_to_existing_and_pending_counters() {
        let _g = guard();
        let c = counter("test.restore.existing", true);
        c.add(5);
        restore_counters(&[
            ("test.restore.existing".into(), 40),
            ("test.restore.later".into(), 7),
        ]);
        assert_eq!(c.get(), 40);
        // Registered after the restore: picks up the pending value.
        let later = counter("test.restore.later", true);
        assert_eq!(later.get(), 7);
        later.add(1);
        assert_eq!(later.get(), 8, "restored counter continues monotonically");
    }

    #[test]
    fn interning_returns_the_same_metric() {
        let _g = guard();
        let a = counter("test.intern.once", true);
        let b = counter("test.intern.once", true);
        assert!(std::ptr::eq(a, b));
        a.add(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn metric_jsonl_lines_validate() {
        let _g = guard();
        counter("test.jsonl.c", true).add(9);
        gauge("test.jsonl.g", false).set(-0.25);
        let h = histogram("test.jsonl.h", false);
        h.record(0);
        h.record(1000);
        let s = sketch("test.jsonl.s", false);
        s.record(500);
        for m in snapshot() {
            let line = m.to_jsonl();
            crate::schema::validate_line(&line)
                .unwrap_or_else(|e| panic!("line {line} failed schema: {e}"));
        }
    }

    #[test]
    fn sketch_metric_gates_on_enabled_and_resets() {
        let _g = guard();
        let s = sketch("test.sketch.gate", false);
        crate::set_enabled(false);
        s.record(1_000);
        assert_eq!(s.totals(), (0, 0), "disabled sketch must not move");
        crate::set_enabled(true);
        for v in [100u64, 200, 300] {
            s.record(v);
        }
        assert_eq!(s.totals().0, 3);
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 200.0).abs() / 200.0 <= 0.011, "p50 {p50}");
        // Empty sketch snapshots report null quantiles.
        reset();
        assert_eq!(s.quantile(0.5), None);
        let snap = snapshot();
        let me = snap.iter().find(|m| m.name == "test.sketch.gate").unwrap();
        assert!(me.to_jsonl().contains("\"p999\":null"));
    }
}

//! Sliding-window SLO monitors.
//!
//! The training-side [`crate::health`] detectors consume a deterministic
//! per-batch loss decomposition; serving health is different in kind —
//! wall-clock latency quantiles, rates over a recent window, a live recall
//! canary — so this module provides the windowed counterparts while
//! keeping the same shape: a monitor consumes observations, compares a
//! derived value against a configured threshold, and reports a structured
//! state with a human-readable reason. Like the latching health detectors,
//! a monitor remembers that it ever degraded (`breached_ever`) even after
//! the window recovers.
//!
//! Windows are rings of `slots` time slices of `slot_ms` each, rotated
//! lazily on access against a monotonic clock: recording is a lock, a
//! rotation check, and an in-place add — no allocation after construction.
//! Quantile windows hold one plain log-bucket array per slot (the same
//! [`crate::sketch::SketchLayout`] math as the global sketch), so a
//! windowed p99 is the merge of the live slots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::sketch::SketchLayout;
use crate::trace::{json_escape, json_f64};

/// Ring geometry: `slots` slices of `slot_ms` milliseconds each.
#[derive(Debug, Clone, Copy)]
pub struct WindowCfg {
    /// Number of ring slots.
    pub slots: usize,
    /// Width of one slot in milliseconds.
    pub slot_ms: u64,
}

impl Default for WindowCfg {
    fn default() -> Self {
        // A one-minute window in 10 s slices.
        WindowCfg {
            slots: 6,
            slot_ms: 10_000,
        }
    }
}

impl WindowCfg {
    /// Total window length in seconds.
    pub fn window_secs(&self) -> f64 {
        (self.slots as u64 * self.slot_ms) as f64 / 1e3
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Ring rotation shared by both window kinds: advances `cur` to the slot
/// for `now`, zeroing skipped slots via `clear(slot_index)`.
struct Ring {
    origin: Instant,
    slot_ms: u64,
    slots: usize,
    /// Absolute slot number currently written (`elapsed_ms / slot_ms`).
    cur: u64,
}

impl Ring {
    fn new(cfg: WindowCfg, origin: Instant) -> Ring {
        Ring {
            origin,
            slot_ms: cfg.slot_ms.max(1),
            slots: cfg.slots.max(1),
            cur: 0,
        }
    }

    /// Rotates to the current slot, calling `clear` for each expired slot.
    fn rotate(&mut self, now: Instant, mut clear: impl FnMut(usize)) -> usize {
        let abs = now.duration_since(self.origin).as_millis() as u64 / self.slot_ms;
        if abs > self.cur {
            // Clear every slot skipped since the last write (bounded by
            // the ring size — beyond that the whole ring is stale).
            let skipped = (abs - self.cur).min(self.slots as u64);
            for i in 1..=skipped {
                clear(((self.cur + i) % self.slots as u64) as usize);
            }
            self.cur = abs;
        }
        (self.cur % self.slots as u64) as usize
    }
}

struct RateInner {
    ring: Ring,
    num: Vec<u64>,
    den: Vec<u64>,
}

/// A windowed ratio: numerator / denominator over the live ring.
///
/// Feeds rate-style SLOs (ANN fallback rate, cold-start rate, cache
/// hit rate).
pub struct WindowedRate {
    inner: Mutex<RateInner>,
}

impl WindowedRate {
    /// A rate window with the given geometry, anchored at `origin`.
    pub fn new(cfg: WindowCfg, origin: Instant) -> WindowedRate {
        WindowedRate {
            inner: Mutex::new(RateInner {
                ring: Ring::new(cfg, origin),
                num: vec![0; cfg.slots.max(1)],
                den: vec![0; cfg.slots.max(1)],
            }),
        }
    }

    /// Adds to the current slot: `num` events out of `den` opportunities.
    pub fn record_at(&self, now: Instant, num: u64, den: u64) {
        let mut g = lock(&self.inner);
        let RateInner {
            ring,
            num: ns,
            den: ds,
        } = &mut *g;
        let slot = ring.rotate(now, |i| {
            ns[i] = 0;
            ds[i] = 0;
        });
        ns[slot] += num;
        ds[slot] += den;
    }

    /// The windowed ratio, or `None` when the window saw no opportunities.
    pub fn value_at(&self, now: Instant) -> Option<f64> {
        let (num, den) = self.totals_at(now);
        (den > 0).then(|| num as f64 / den as f64)
    }

    /// Raw `(numerator, denominator)` totals over the live window (the
    /// numerator doubles as a windowed event count, e.g. for QPS).
    pub fn totals_at(&self, now: Instant) -> (u64, u64) {
        let mut g = lock(&self.inner);
        let RateInner {
            ring,
            num: ns,
            den: ds,
        } = &mut *g;
        ring.rotate(now, |i| {
            ns[i] = 0;
            ds[i] = 0;
        });
        (ns.iter().sum(), ds.iter().sum())
    }
}

struct QuantInner {
    ring: Ring,
    layout: SketchLayout,
    /// One plain log-bucket histogram per slot (`slots × layout.buckets`).
    buckets: Vec<Vec<u64>>,
    counts: Vec<u64>,
}

/// A windowed quantile sketch: one log-bucket array per ring slot, merged
/// at query time. Same accuracy bound as [`crate::sketch::DdSketch`].
pub struct WindowedQuantile {
    inner: Mutex<QuantInner>,
}

impl WindowedQuantile {
    /// A quantile window with accuracy `alpha`, anchored at `origin`.
    pub fn new(cfg: WindowCfg, alpha: f64, origin: Instant) -> WindowedQuantile {
        let layout = SketchLayout::new(alpha);
        WindowedQuantile {
            inner: Mutex::new(QuantInner {
                ring: Ring::new(cfg, origin),
                layout,
                buckets: (0..cfg.slots.max(1))
                    .map(|_| vec![0; layout.buckets])
                    .collect(),
                counts: vec![0; cfg.slots.max(1)],
            }),
        }
    }

    /// Records one observation into the current slot.
    pub fn record_at(&self, now: Instant, v: u64) {
        let mut g = lock(&self.inner);
        let QuantInner {
            ring,
            layout,
            buckets,
            counts,
        } = &mut *g;
        let slot = ring.rotate(now, |i| {
            buckets[i].iter_mut().for_each(|b| *b = 0);
            counts[i] = 0;
        });
        buckets[slot][layout.index_of(v)] += 1;
        counts[slot] += 1;
    }

    /// Estimate of the `q`-quantile over the live window, or `None` when
    /// the window is empty.
    pub fn quantile_at(&self, now: Instant, q: f64) -> Option<f64> {
        let mut g = lock(&self.inner);
        let QuantInner {
            ring,
            layout,
            buckets,
            counts,
        } = &mut *g;
        ring.rotate(now, |i| {
            buckets[i].iter_mut().for_each(|b| *b = 0);
            counts[i] = 0;
        });
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (n - 1) as f64).floor() as u64;
        let mut cum = 0u64;
        for i in 0..layout.buckets {
            cum += buckets.iter().map(|slot| slot[i]).sum::<u64>();
            if cum > target {
                return Some(layout.estimate_of(i));
            }
        }
        Some(layout.estimate_of(layout.buckets - 1))
    }
}

/// Which side of the threshold is healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Value must stay at or below the threshold (latency, error rates).
    UpperBound,
    /// Value must stay at or above the threshold (hit rate, recall).
    LowerBound,
}

/// Current status of one SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStatus {
    /// Within budget.
    Ok,
    /// Out of budget right now.
    Degraded,
    /// The window holds no observations yet; treated as passing.
    NoData,
}

impl SloStatus {
    /// Stable wire spelling.
    pub fn wire_name(self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Degraded => "degraded",
            SloStatus::NoData => "no_data",
        }
    }
}

/// One evaluated SLO, as reported by the admin endpoint.
#[derive(Debug, Clone)]
pub struct SloState {
    /// Monitor name (stable, e.g. `p99_latency_ms`).
    pub name: &'static str,
    /// Status at evaluation time.
    pub status: SloStatus,
    /// The windowed value, when the window has data.
    pub value: Option<f64>,
    /// Configured budget.
    pub threshold: f64,
    /// True if this monitor has ever evaluated Degraded in this process
    /// (the latching bit, mirroring the training health detectors).
    pub breached_ever: bool,
    /// Human-readable explanation of the current status.
    pub reason: String,
}

impl SloState {
    /// Serializes this state as one JSON object (admin wire format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"status\":\"{}\",\"value\":{},\"threshold\":{},\
             \"breached_ever\":{},\"reason\":\"{}\"}}",
            json_escape(self.name),
            self.status.wire_name(),
            self.value.map_or_else(|| "null".into(), json_f64),
            json_f64(self.threshold),
            self.breached_ever,
            json_escape(&self.reason),
        )
    }
}

/// A named threshold over a windowed value, with the latched breach bit.
pub struct SloMonitor {
    name: &'static str,
    kind: SloKind,
    threshold: f64,
    breached: AtomicBool,
}

impl SloMonitor {
    /// A monitor asserting `kind` against `threshold`.
    pub fn new(name: &'static str, kind: SloKind, threshold: f64) -> SloMonitor {
        SloMonitor {
            name,
            kind,
            threshold,
            breached: AtomicBool::new(false),
        }
    }

    /// The monitor name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Evaluates the monitor against the current windowed `value`.
    /// `None` (no data yet) passes — a monitor cannot degrade on silence.
    pub fn eval(&self, value: Option<f64>) -> SloState {
        let (status, reason) = match value {
            None => (SloStatus::NoData, "no observations in window".to_string()),
            Some(v) => {
                let ok = match self.kind {
                    SloKind::UpperBound => v <= self.threshold,
                    SloKind::LowerBound => v >= self.threshold,
                };
                if ok {
                    (
                        SloStatus::Ok,
                        format!("{v:.4} within budget {:.4}", self.threshold),
                    )
                } else {
                    let dir = match self.kind {
                        SloKind::UpperBound => "exceeds",
                        SloKind::LowerBound => "below",
                    };
                    (
                        SloStatus::Degraded,
                        format!("{v:.4} {dir} budget {:.4}", self.threshold),
                    )
                }
            }
        };
        if status == SloStatus::Degraded {
            self.breached.store(true, Ordering::Relaxed);
        }
        SloState {
            name: self.name,
            status,
            value,
            threshold: self.threshold,
            breached_ever: self.breached.load(Ordering::Relaxed),
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn t(origin: Instant, ms: u64) -> Instant {
        origin + Duration::from_millis(ms)
    }

    #[test]
    fn rate_window_slides_old_slots_out() {
        let origin = Instant::now();
        let cfg = WindowCfg {
            slots: 3,
            slot_ms: 100,
        };
        let r = WindowedRate::new(cfg, origin);
        r.record_at(t(origin, 0), 1, 1); // slot 0: 1/1
        r.record_at(t(origin, 150), 0, 1); // slot 1: 0/1
        assert_eq!(r.value_at(t(origin, 150)), Some(0.5));
        // 400 ms: slot 0 (abs 0) has slid out; only abs slot 1 remains.
        assert_eq!(r.value_at(t(origin, 380)), Some(0.0));
        // Far future: everything stale.
        assert_eq!(r.value_at(t(origin, 10_000)), None);
    }

    #[test]
    fn rate_window_survives_long_gaps() {
        let origin = Instant::now();
        let cfg = WindowCfg {
            slots: 4,
            slot_ms: 10,
        };
        let r = WindowedRate::new(cfg, origin);
        r.record_at(t(origin, 0), 5, 10);
        // A gap far larger than slots * slot_ms must fully clear the ring.
        r.record_at(t(origin, 1_000_000), 1, 1);
        assert_eq!(r.value_at(t(origin, 1_000_000)), Some(1.0));
    }

    #[test]
    fn quantile_window_merges_live_slots_and_expires() {
        let origin = Instant::now();
        let cfg = WindowCfg {
            slots: 2,
            slot_ms: 100,
        };
        let w = WindowedQuantile::new(cfg, 0.01, origin);
        for _ in 0..100 {
            w.record_at(t(origin, 0), 1_000);
        }
        for _ in 0..100 {
            w.record_at(t(origin, 150), 100_000);
        }
        // Both slots live: the median sits between the two modes.
        let p99 = w.quantile_at(t(origin, 150), 0.99).unwrap();
        assert!((p99 - 100_000.0).abs() / 100_000.0 < 0.02, "p99 {p99}");
        // After the first slot expires only the 100k mode remains.
        let p01 = w.quantile_at(t(origin, 250), 0.01).unwrap();
        assert!((p01 - 100_000.0).abs() / 100_000.0 < 0.02, "p01 {p01}");
        assert_eq!(w.quantile_at(t(origin, 10_000), 0.5), None);
    }

    #[test]
    fn monitor_latches_breach_and_reports_reasons() {
        let m = SloMonitor::new("p99_latency_ms", SloKind::UpperBound, 10.0);
        let s = m.eval(None);
        assert_eq!(s.status, SloStatus::NoData);
        assert!(!s.breached_ever);
        let s = m.eval(Some(50.0));
        assert_eq!(s.status, SloStatus::Degraded);
        assert!(s.reason.contains("exceeds"), "{}", s.reason);
        // Recovery: status clears, the latch does not.
        let s = m.eval(Some(5.0));
        assert_eq!(s.status, SloStatus::Ok);
        assert!(s.breached_ever, "breach latch must survive recovery");

        let m = SloMonitor::new("cache_hit_rate", SloKind::LowerBound, 0.8);
        let s = m.eval(Some(0.5));
        assert_eq!(s.status, SloStatus::Degraded);
        assert!(s.reason.contains("below"), "{}", s.reason);
    }

    #[test]
    fn slo_state_json_validates() {
        let m = SloMonitor::new("ann_fallback_rate", SloKind::UpperBound, 0.1);
        for v in [None, Some(0.05), Some(0.5)] {
            let line = m.eval(v).to_json();
            let obj = crate::json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(obj.get("status").is_some());
        }
    }
}

//! A minimal JSON reader for telemetry streams.
//!
//! The build environment is fully offline (no serde), and the telemetry
//! consumers (`msgc report`, `telemetry_check`) only need to read back the
//! flat JSONL this workspace itself emits, so this parser supports exactly
//! standard JSON: objects, arrays, strings (with escapes), numbers, bools,
//! and null. It rejects trailing garbage and malformed input with
//! positioned error messages.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; the streams only carry values that
    /// fit, and `u64` counters round-trip losslessly below 2^53).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted map; telemetry lines never rely on key order).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Number value, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array value, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

/// Maximum container nesting depth. The parser is recursive-descent, so
/// unbounded nesting would overflow the stack; telemetry lines are nearly
/// flat, making this limit generous while keeping hostile input an `Err`
/// rather than a crash.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    /// Bumps the nesting depth, failing past [`MAX_DEPTH`]. The caller must
    /// pair a successful `enter` with `self.depth -= 1`.
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_body();
        self.depth -= 1;
        r
    }

    fn object_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_body();
        self.depth -= 1;
        r
    }

    fn array_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(out)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-UTF-8 in \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad hex in \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by this workspace;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 byte")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        // `f64::from_str` happily returns ±inf for overflowing literals like
        // 1e999; JSON has no non-finite numbers, so treat that as an error.
        if !n.is_finite() {
            return Err(self.err(format!("number `{text}` does not fit in f64")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_line() {
        let v = parse(r#"{"ev":"batch","epoch":0,"recon":3.25,"ok":true,"x":null}"#).unwrap();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("batch"));
        assert_eq!(v.get("recon").and_then(Json::as_num), Some(3.25));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"buckets":[[0,3],[64,1]],"s":"a\"b\ncA"}"#).unwrap();
        let b = v.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].as_arr().unwrap()[0].as_num(), Some(64.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\nc\u{41}"));
    }

    #[test]
    fn numbers_cover_negatives_and_exponents() {
        assert_eq!(parse("-0.5").unwrap().as_num(), Some(-0.5));
        assert_eq!(parse("1e-3").unwrap().as_num(), Some(1e-3));
        assert_eq!(
            parse("12345678901234").unwrap().as_num(),
            Some(12345678901234.0)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,2,").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_emitted_float_formatting() {
        for v in [0.25f64, -1.5, 1e-300, 123456.0] {
            let s = crate::trace::json_f64(v);
            assert_eq!(parse(&s).unwrap().as_num(), Some(v));
        }
    }

    #[test]
    fn escaped_quotes_and_backslashes_resolve() {
        // Every escape the emitter produces, plus pathological runs of
        // backslashes (even run = literal backslashes; odd run before a
        // quote = escaped quote).
        let v = parse(r#""\\\\""#).unwrap();
        assert_eq!(v.as_str(), Some("\\\\"));
        let v = parse(r#""\\\"""#).unwrap();
        assert_eq!(v.as_str(), Some("\\\""));
        let v = parse(r#"{"k\"ey":"v\\al"}"#).unwrap();
        assert_eq!(v.get("k\"ey").and_then(Json::as_str), Some("v\\al"));
        // A string ending in a bare escape is unterminated, not a panic.
        assert!(parse(r#""trailing\"#).is_err());
        assert!(parse(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn unicode_escapes_resolve_or_error() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""snow ☃""#).unwrap().as_str(), Some("snow ☃"));
        // Lone surrogates map to U+FFFD (the workspace never emits pairs).
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        // Truncated and malformed escapes error cleanly.
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\u12"#).is_err());
        assert!(parse(r#""\uzzzz""#).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Comfortably inside the limit: parses.
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        // One past the limit: a positioned error, not a stack overflow.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let e = parse(&over).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        // Same for objects, and for absurd hostile depth (would previously
        // blow the stack long before returning).
        let hostile = "[".repeat(200_000);
        assert!(parse(&hostile).is_err());
        let objs = format!("{}{}", r#"{"a":"#.repeat(MAX_DEPTH + 1), "1");
        assert!(parse(&objs).is_err());
    }

    #[test]
    fn depth_counts_nesting_not_total_containers() {
        // Wide-but-shallow input must not trip the depth limit: siblings
        // release their depth when they close.
        let wide = format!("[{}]", vec!["[1]"; MAX_DEPTH * 2].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn overflow_numbers_error_cleanly() {
        for s in ["1e999", "-1e999", "1e308999", "123456789e999999999"] {
            let e = parse(s).unwrap_err();
            assert!(e.msg.contains("fit"), "`{s}` → {e}");
        }
        // Near-max magnitudes still parse.
        assert!(parse("1e308").unwrap().as_num().unwrap().is_finite());
        assert!(parse("-1.7976931348623157e308").is_ok());
        // Precision loss (not overflow) is fine: u64::MAX rounds.
        assert!(parse("18446744073709551615").is_ok());
    }
}

//! Regression pins for the `serve.*` counter audit (ISSUE 10, satellite 1).
//!
//! Two bugs are pinned here so they cannot come back:
//!
//! * incremental cold starts (empty window in `handle_slow`) were counted
//!   as `serve.cache.miss` — there is nothing the cache could have held;
//! * ANN-preferring requests in [`Mode::Incremental`] were silently served
//!   exact without counting `serve.ann.fallback`.
//!
//! The tests assert *exact* counter deltas, and cross-check them against
//! the per-request [`ReqObs`] flags (which must mirror the counters
//! one-for-one). The file is its own process (integration test), so the
//! global registry is not shared with other test binaries; a lock
//! serialises the tests inside it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::Freeze;
use serve::{Engine, HnswConfig, HnswIndex, Mode, ReqObs, Request, TopK};
use telemetry::metrics;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let l = LOCK.get_or_init(|| Mutex::new(()));
    telemetry::set_enabled(true);
    // A test that panicked while holding the lock doesn't invalidate the
    // registry for the next one.
    l.lock().unwrap_or_else(|e| e.into_inner())
}

fn model(num_items: usize) -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 6,
            dim: 8,
            layers: 1,
            ..NetConfig::for_items(num_items)
        },
        ..MetaSgclConfig::for_items(num_items)
    })
}

fn score(user: u64, history: Vec<usize>, topk: Option<TopK>) -> Request {
    Request::Score {
        user,
        history,
        k: 5,
        topk,
    }
}

fn append(user: u64, item: usize, topk: Option<TopK>) -> Request {
    Request::Append {
        user,
        item,
        k: 5,
        topk,
    }
}

/// Snapshot of every counter these tests audit.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Counts {
    cold_start: u64,
    cache_hit: u64,
    cache_miss: u64,
    reencode: u64,
    ann_query: u64,
    ann_fallback: u64,
}

fn counts() -> Counts {
    Counts {
        cold_start: metrics::counter("serve.cold_start", false).get(),
        cache_hit: metrics::counter("serve.cache.hit", false).get(),
        cache_miss: metrics::counter("serve.cache.miss", false).get(),
        reencode: metrics::counter("serve.reencode", false).get(),
        ann_query: metrics::counter("serve.ann.query", false).get(),
        ann_fallback: metrics::counter("serve.ann.fallback", false).get(),
    }
}

fn delta(before: Counts, after: Counts) -> Counts {
    Counts {
        cold_start: after.cold_start - before.cold_start,
        cache_hit: after.cache_hit - before.cache_hit,
        cache_miss: after.cache_miss - before.cache_miss,
        reencode: after.reencode - before.reencode,
        ann_query: after.ann_query - before.ann_query,
        ann_fallback: after.ann_fallback - before.ann_fallback,
    }
}

/// The counter deltas the [`ReqObs`] flags imply: flags and counters must
/// agree request-for-request.
fn implied(obs: &[ReqObs]) -> Counts {
    let mut c = Counts {
        cold_start: 0,
        cache_hit: 0,
        cache_miss: 0,
        reencode: 0,
        ann_query: 0,
        ann_fallback: 0,
    };
    for o in obs {
        c.cold_start += o.cold_start as u64;
        c.cache_hit += o.cache_hit as u64;
        c.reencode += o.reencode as u64;
        c.ann_fallback += o.ann_fallback as u64;
        // Exact re-encodes that are neither cold starts nor cache hits are
        // cache misses; ANN-served requests count a query instead.
        if o.ann {
            c.ann_query += 1;
        } else if o.reencode {
            c.cache_miss += 1;
        }
    }
    c
}

fn run(engine: &Engine<impl serve::FrozenScorer>, reqs: &[Request]) -> (Counts, Vec<ReqObs>) {
    let before = counts();
    let (_, obs) = engine.handle_batch_obs(reqs, false);
    (delta(before, counts()), obs)
}

#[test]
fn incremental_cold_start_is_not_a_cache_miss() {
    let _g = lock();
    let engine = Engine::new(model(12).freeze(), Mode::Incremental);
    let (d, obs) = run(&engine, &[score(1, vec![], None)]);
    assert_eq!(d.cold_start, 1, "cold start counted once");
    assert_eq!(d.cache_miss, 0, "regression: cold start counted as miss");
    assert_eq!(d.reencode, 0, "nothing was encoded");
    assert!(obs[0].cold_start && !obs[0].cache_hit && !obs[0].reencode);
    assert_eq!(d, implied(&obs));

    // Same request in Full mode: identical accounting.
    let engine = Engine::new(model(12).freeze(), Mode::Full);
    let (d, obs) = run(&engine, &[score(1, vec![], None)]);
    assert_eq!((d.cold_start, d.cache_miss, d.reencode), (1, 0, 0));
    assert_eq!(d, implied(&obs));
}

#[test]
fn incremental_ann_preference_counts_fallback_exactly_once() {
    let _g = lock();
    let engine = Engine::new(model(12).freeze(), Mode::Incremental);
    // Slow path (fresh history) with an ANN preference.
    let (d, obs) = run(&engine, &[score(1, vec![1, 2], Some(TopK::Ann))]);
    assert_eq!(
        d.ann_fallback, 1,
        "regression: incremental ANN request served exact without counting a fallback"
    );
    assert_eq!(d.ann_query, 0, "no index exists in incremental mode");
    assert_eq!(d.cache_miss, 1);
    assert!(obs[0].ann_fallback && !obs[0].ann);
    assert_eq!(d, implied(&obs));

    // Fast path (cached state) with an ANN preference: still one fallback.
    let (d, obs) = run(&engine, &[append(1, 3, Some(TopK::Ann))]);
    assert_eq!(
        d.ann_fallback, 1,
        "fast appends must count the fallback too"
    );
    assert_eq!(d.cache_hit, 1);
    assert_eq!(d.cache_miss, 0);
    assert!(obs[0].ann_fallback && obs[0].cache_hit);
    assert_eq!(d, implied(&obs));

    // Exact-preferring traffic never counts a fallback.
    let (d, _) = run(&engine, &[append(1, 4, None)]);
    assert_eq!(d.ann_fallback, 0);
}

#[test]
fn batched_appends_count_one_hit_per_request_not_per_flush() {
    let _g = lock();
    let engine = Engine::new(model(12).freeze(), Mode::Incremental);
    // Seed three users with live state (3 misses).
    let (d, _) = run(
        &engine,
        &[
            score(1, vec![1, 2], None),
            score(2, vec![3, 4], None),
            score(3, vec![5], None),
        ],
    );
    assert_eq!((d.cache_miss, d.cache_hit), (3, 0));
    // One coalesced batch of three appends → exactly 3 hits, 0 misses.
    let (d, obs) = run(
        &engine,
        &[append(1, 6, None), append(2, 7, None), append(3, 8, None)],
    );
    assert_eq!(d.cache_hit, 3, "one hit per request in the coalesced step");
    assert_eq!((d.cache_miss, d.reencode, d.cold_start), (0, 0, 0));
    assert!(obs.iter().all(|o| o.cache_hit));
    assert_eq!(d, implied(&obs));

    // Duplicate users in one batch cannot coalesce: the second append for
    // user 1 flushes the group and re-encodes (1 hit + 1 miss).
    let (d, obs) = run(&engine, &[append(1, 9, None), append(1, 10, None)]);
    assert_eq!((d.cache_hit, d.cache_miss), (1, 1));
    assert_eq!(d, implied(&obs));
}

#[test]
fn full_mode_ann_fallback_without_an_index_counts_once() {
    let _g = lock();
    let engine = Engine::new(model(12).freeze(), Mode::Full);
    let (d, obs) = run(&engine, &[score(1, vec![1, 2, 3], Some(TopK::Ann))]);
    assert_eq!(d.ann_fallback, 1);
    assert_eq!(d.ann_query, 0);
    assert_eq!(
        d.cache_miss, 1,
        "the exact path that answered counts its miss"
    );
    assert_eq!(d.reencode, 1, "one re-encode, not two");
    assert!(obs[0].ann_fallback && !obs[0].ann && obs[0].reencode);
    assert_eq!(d, implied(&obs));
}

#[test]
fn full_mode_ann_served_requests_count_a_query_not_a_miss() {
    let _g = lock();
    let m = model(12);
    let frozen = m.freeze();
    let table = frozen.item_embeddings();
    let index = HnswIndex::build(&table, 12, &HnswConfig::default());
    let engine = Engine::new(frozen, Mode::Full).with_ann(index);
    let (d, obs) = run(&engine, &[score(1, vec![1, 2, 3], Some(TopK::Ann))]);
    assert_eq!(d.ann_query, 1);
    assert_eq!(d.ann_fallback, 0);
    assert_eq!(d.cache_miss, 0, "ANN-served requests are not cache misses");
    assert_eq!(d.reencode, 1, "the query embedding is one encode");
    assert!(obs[0].ann && !obs[0].ann_fallback);
    assert_eq!(d, implied(&obs));
}

#[test]
fn mixed_batch_flags_mirror_counters_exactly() {
    let _g = lock();
    let engine = Engine::new(model(12).freeze(), Mode::Incremental);
    let (seed, _) = run(&engine, &[score(7, vec![1, 2], None)]);
    assert_eq!(seed.cache_miss, 1);
    // Cold start + fast append + slow score + ANN-preferring append in one
    // batch: every flag ↔ counter pairing exercised at once.
    let (d, obs) = run(
        &engine,
        &[
            score(8, vec![], None),
            append(7, 3, None),
            score(9, vec![4, 5], None),
            append(7, 6, Some(TopK::Ann)),
        ],
    );
    assert_eq!(d, implied(&obs));
    assert_eq!(d.cold_start, 1);
    assert_eq!(d.cache_hit, 2);
    assert_eq!(d.cache_miss, 1);
    assert_eq!(d.ann_fallback, 1);
}

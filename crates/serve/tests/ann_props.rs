//! Property tests for the HNSW index: an unbounded beam (`ef = ∞`) must
//! return the *exact* inner-product top-k, the build must be a pure
//! function of its inputs, and padding id 0 must never be retrievable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{HnswConfig, HnswIndex};
use tensor::init;

/// Reference ranking: brute-force inner products over item ids
/// `1..=num_items`, sorted by (score desc, id asc) — the index's
/// deterministic tie rule.
fn brute_force(table: &tensor::Tensor, num_items: usize, q: &[f32], k: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, f32)> = (1..=num_items)
        .map(|item| {
            let row = table.row(item);
            let s: f32 = row.iter().zip(q).map(|(a, b)| a * b).sum();
            (item, s)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked.into_iter().map(|(i, _)| i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ef >= n` is *defined* to be exact: identical items, in the exact
    /// order, with the same deterministic tie-breaking as brute force.
    #[test]
    fn unbounded_ef_returns_exact_top_k(
        num_items in 1usize..50, dim in 1usize..8, k in 1usize..12, seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = init::uniform(&mut rng, vec![num_items + 1, dim], -1.0, 1.0);
        let q: Vec<f32> = init::uniform(&mut rng, vec![dim], -1.0, 1.0).data().to_vec();
        let idx = HnswIndex::build(&table, num_items, &HnswConfig::default());
        let got: Vec<usize> = idx.search(&q, k, usize::MAX).into_iter().map(|(i, _)| i).collect();
        let want = brute_force(&table, num_items, &q, k);
        prop_assert_eq!(&got, &want);
        prop_assert!(got.iter().all(|&i| i >= 1), "padding leaked: {:?}", got);
    }

    /// Builds are deterministic and survive a sidecar round-trip: two
    /// builds from the same table answer every query identically, and so
    /// does a save/load copy.
    #[test]
    fn build_and_sidecar_are_deterministic(
        num_items in 2usize..40, dim in 1usize..6, seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = init::uniform(&mut rng, vec![num_items + 1, dim], -1.0, 1.0);
        let cfg = HnswConfig::default();
        let a = HnswIndex::build(&table, num_items, &cfg);
        let b = HnswIndex::build(&table, num_items, &cfg);
        let dir = std::env::temp_dir().join("msgc_ann_props");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("idx_{seed}_{num_items}_{dim}.hnsw"));
        a.save(&path).expect("save");
        let c = HnswIndex::load(&path, &table, num_items, &cfg).expect("load fresh sidecar");
        std::fs::remove_file(&path).ok();
        for qs in 0..3u64 {
            let mut qrng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(qs));
            let q: Vec<f32> = init::uniform(&mut qrng, vec![dim], -1.0, 1.0).data().to_vec();
            let ra = a.search(&q, 5, 0);
            prop_assert_eq!(&ra, &b.search(&q, 5, 0));
            prop_assert_eq!(&ra, &c.search(&q, 5, 0));
        }
    }
}

//! End-to-end observability: a live TCP server with a [`ServeObs`]
//! attached — every request metered, 1-in-1 trace sampling, and the
//! read-only `"admin"` endpoint answering snapshot / health / prom
//! queries that validate against the telemetry schemas.
#![allow(clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::Freeze;
use serve::{server, Batcher, Engine, Mode, ObsConfig, ServeObs, SloBudgets};
use telemetry::trace::Tracer;

fn model() -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 6,
            dim: 8,
            layers: 1,
            ..NetConfig::for_items(12)
        },
        ..MetaSgclConfig::for_items(12)
    })
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    }
}

fn start_server(obs: Option<Arc<ServeObs>>) -> std::net::SocketAddr {
    let engine = Arc::new(Engine::new(model().freeze(), Mode::Incremental));
    let batcher = Arc::new(Batcher::new(engine, 8, Duration::from_millis(0)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        let _ = server::run_obs(listener, batcher, obs);
    });
    addr
}

#[test]
fn admin_endpoint_serves_valid_snapshots_and_traces_flow() {
    telemetry::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("obs_admin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace_path = dir.join("trace.jsonl");
    let tracer = Arc::new(Tracer::to_file(&trace_path).expect("tracer"));

    let obs = ServeObs::new(ObsConfig {
        tracer: Some(Arc::clone(&tracer)),
        sample_every: 1, // trace every request
        budgets: SloBudgets {
            min_hit_rate: Some(0.01),
            // 1 of the 4 smoke requests below prefers ANN on an engine
            // with no index (a deliberate fallback); don't let that 25%
            // trip the health check.
            max_fallback_rate: 0.5,
            ..SloBudgets::default()
        },
        ..ObsConfig::default()
    });
    let addr = start_server(Some(Arc::clone(&obs)));

    let mut c = Client::connect(addr);
    assert_eq!(c.roundtrip(r#"{"op":"ping"}"#), r#"{"ok":true}"#);
    // Traffic across the paths: cold start, miss, fast append, fallback.
    for line in [
        r#"{"op":"score","user":1,"history":[],"k":3}"#,
        r#"{"op":"score","user":1,"history":[1,2],"k":3}"#,
        r#"{"op":"append","user":1,"item":3,"k":3}"#,
        r#"{"op":"append","user":1,"item":4,"k":3,"topk":"ann"}"#,
    ] {
        let reply = c.roundtrip(line);
        assert!(reply.contains("\"items\""), "unexpected reply {reply}");
    }

    // Snapshot: schema-valid, name-sorted, and carrying our traffic.
    let snap = c.roundtrip(r#"{"op":"admin","cmd":"snapshot"}"#);
    let (n_metrics, n_slos) =
        telemetry::schema::validate_admin_snapshot(&snap).expect("snapshot schema");
    assert!(n_metrics >= 5, "only {n_metrics} metrics in snapshot");
    assert!(n_slos >= 4, "only {n_slos} SLO states in snapshot");
    assert!(
        snap.contains("\"serve.latency_us\""),
        "latency sketch missing"
    );
    assert!(snap.contains("\"p99_latency_ms\""), "p99 SLO missing");

    // `"cmd"` defaults to snapshot.
    let default = c.roundtrip(r#"{"op":"admin"}"#);
    telemetry::schema::validate_admin_snapshot(&default).expect("default cmd");

    // Health: a light smoke load must not be degraded.
    let health = c.roundtrip(r#"{"op":"admin","cmd":"health"}"#);
    assert!(
        health.contains("\"status\":\"pass\""),
        "unhealthy under smoke load: {health}"
    );

    // Prom: one JSON line wrapping the text exposition.
    let prom = c.roundtrip(r#"{"op":"admin","cmd":"prom"}"#);
    assert!(prom.contains("\"kind\":\"prom\""));
    assert!(
        prom.contains("serve_requests_total"),
        "no counter in {prom}"
    );

    // Unknown command errors without killing the connection.
    let bad = c.roundtrip(r#"{"op":"admin","cmd":"nope"}"#);
    assert!(bad.contains("\"error\""));
    assert_eq!(c.roundtrip(r#"{"op":"ping"}"#), r#"{"ok":true}"#);

    // Every trace line must validate; the stream must contain the span
    // tree (request + phases) and the flat `req` events.
    obs.flush();
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    let mut kinds: Vec<String> = Vec::new();
    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        kinds.push(telemetry::schema::validate_line(line).unwrap_or_else(|e| {
            panic!("invalid trace line: {e}\n  {line}");
        }));
    }
    assert!(kinds.iter().any(|k| k == "req"), "no req events in trace");
    assert!(kinds.iter().any(|k| k == "span"), "no spans in trace");
    for phase in [
        "\"enqueue\"",
        "\"forward\"",
        "\"retrieve\"",
        "\"serialize\"",
    ] {
        assert!(trace.contains(phase), "missing {phase} span");
    }
    let reqs = trace
        .lines()
        .filter(|l| l.contains("\"ev\":\"req\""))
        .count();
    assert_eq!(reqs, 4, "one req event per scored request");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_without_observability_is_an_error_not_a_hang() {
    let addr = start_server(None);
    let mut c = Client::connect(addr);
    let reply = c.roundtrip(r#"{"op":"admin","cmd":"snapshot"}"#);
    assert!(reply.contains("\"error\""), "got {reply}");
    // The connection keeps serving scoring traffic.
    let scored = c.roundtrip(r#"{"op":"score","user":1,"history":[1,2],"k":3}"#);
    assert!(scored.contains("\"items\""), "got {scored}");
}

//! Regression: requests already queued when the batching worker frees up
//! must coalesce into one batch even at the flush boundary (`batch_wait`
//! elapsed or zero). Before the fix the deadline check fired *before* any
//! non-blocking drain, so backlogged requests dispatched as batches of
//! one — head-of-line serialisation that turned a shared-GEMM design into
//! sequential scoring.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use serve::{Batcher, Engine, FrozenScorer, Mode, Request};
use telemetry::metrics;

/// Minimal scorer whose full-history path is slow, so the worker is
/// reliably busy while follow-up requests pile into the queue.
struct SlowScorer;

impl FrozenScorer for SlowScorer {
    type State = ();

    fn num_items(&self) -> usize {
        4
    }

    fn window_cap(&self) -> usize {
        8
    }

    fn score_full(&self, seq: &[usize]) -> Vec<f32> {
        std::thread::sleep(Duration::from_millis(150));
        let mut scores = vec![0.0; self.num_items() + 1];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = (i + seq.len()) as f32;
        }
        scores
    }

    fn begin(&self, window: &[usize]) -> ((), Vec<f32>) {
        ((), self.score_full(window))
    }

    fn state_len(&self, _state: &()) -> usize {
        1
    }

    fn append_batch(&self, items: &[usize], _states: &mut [&mut ()]) -> Vec<Vec<f32>> {
        items
            .iter()
            .map(|_| vec![0.0; self.num_items() + 1])
            .collect()
    }
}

#[test]
fn queued_requests_coalesce_at_the_flush_boundary() {
    telemetry::set_enabled(true);
    let engine = Arc::new(Engine::new(SlowScorer, Mode::Full));
    // batch_wait = 0: the worker never *waits* for company, so before the
    // try_recv drain every request was its own batch by construction.
    let batcher = Arc::new(Batcher::new(engine, 8, Duration::ZERO));

    // Occupy the worker, then queue four requests while it is scoring.
    let first = {
        let b = Arc::clone(&batcher);
        std::thread::spawn(move || {
            b.submit(Request::Score {
                user: 0,
                history: vec![1],
                k: 2,
                topk: None,
            })
        })
    };
    std::thread::sleep(Duration::from_millis(40)); // worker is now inside score_full
    let (done_tx, done_rx) = mpsc::channel();
    for user in 1..=4u64 {
        let b = Arc::clone(&batcher);
        let done = done_tx.clone();
        std::thread::spawn(move || {
            let resp = b.submit(Request::Score {
                user,
                history: vec![1, 2],
                k: 2,
                topk: None,
            });
            done.send(resp).ok();
        });
    }
    // Queued submits need to be sitting in the channel before the worker
    // returns from the first batch.
    std::thread::sleep(Duration::from_millis(60));

    let first = first.join().expect("first submit");
    assert_eq!(first.user, 0);
    let mut late: Vec<u64> = (0..4)
        .map(|_| done_rx.recv().expect("reply").user)
        .collect();
    late.sort_unstable();
    assert_eq!(late, vec![1, 2, 3, 4]);

    drop(done_tx);
    drop(batcher);

    // The four backlogged requests must have shared a single dispatch
    // even though batch_wait is zero: five requests, at most two batches
    // (the opener, then the drained backlog). Before the fix this was
    // five batches of one.
    let (batches, dispatched, _) = metrics::histogram("serve.batch.size", false).totals();
    assert_eq!(dispatched, 5, "all five requests scored");
    assert!(
        batches <= 2,
        "5 requests took {batches} dispatches — flush-boundary stall"
    );
}

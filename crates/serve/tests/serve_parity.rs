//! End-to-end serving parity: engine responses vs offline autograd
//! scoring, full and incremental modes, micro-batching, and the wire
//! protocol round-trip.

use std::sync::Arc;
use std::time::Duration;

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::{Gru4Rec, NetConfig, SequentialRecommender};
use nn::Freeze;
use serve::{proto, top_k, Batcher, Engine, Mode, Request, Response};

fn model(decoder_layers: usize) -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 6,
            dim: 8,
            layers: 2,
            ..NetConfig::for_items(12)
        },
        decoder_layers,
        ..MetaSgclConfig::for_items(12)
    })
}

#[test]
fn full_mode_matches_offline_score_sequence_bitwise() {
    let m = model(1);
    let engine = Engine::new(m.freeze(), Mode::Full);
    let histories: Vec<Vec<usize>> = vec![
        vec![1, 2, 3],
        vec![4, 5, 6, 7, 8, 9, 10, 11], // longer than max_len
        vec![12],
    ];
    let reqs: Vec<Request> = histories
        .iter()
        .enumerate()
        .map(|(u, h)| Request::Score {
            user: u as u64,
            history: h.clone(),
            k: 5,
            topk: None,
        })
        .collect();
    let responses = engine.handle_batch(&reqs);
    for (u, h) in histories.iter().enumerate() {
        let (want_items, want_scores) = top_k(&m.score_sequence(h), 5);
        assert_eq!(responses[u].user, u as u64);
        assert_eq!(responses[u].items, want_items);
        assert_eq!(responses[u].scores, want_scores);
    }

    // Appends re-score the extended history, still bitwise vs offline.
    let r = engine.handle_batch(&[Request::Append {
        user: 0,
        item: 7,
        k: 5,
        topk: None,
    }]);
    let (want_items, want_scores) = top_k(&m.score_sequence(&[1, 2, 3, 7]), 5);
    assert_eq!(r[0].items, want_items);
    assert_eq!(r[0].scores, want_scores);
}

#[test]
fn incremental_mode_matches_left_aligned_reference() {
    let m = model(1);
    let engine = Engine::new(m.freeze(), Mode::Incremental);
    let mut history = vec![3usize, 9, 1];
    engine.handle_batch(&[Request::Score {
        user: 7,
        history: history.clone(),
        k: 4,
        topk: None,
    }]);
    // Appends extend cached state; each response must equal the autograd
    // left-aligned reference on the growing history — including past the
    // window cap, where the engine slides.
    for item in [5usize, 2, 8, 11, 4, 6, 10] {
        history.push(item);
        let r = engine.handle_batch(&[Request::Append {
            user: 7,
            item,
            k: 4,
            topk: None,
        }]);
        let window = &history[history.len().saturating_sub(6)..];
        let (want_items, want_scores) = top_k(&m.score_left_aligned(window), 4);
        assert_eq!(r[0].items, want_items, "history {history:?}");
        assert_eq!(r[0].scores, want_scores, "history {history:?}");
    }
}

#[test]
fn mixed_batch_coalesces_and_stays_exact() {
    let m = model(0);
    let engine = Engine::new(m.freeze(), Mode::Incremental);
    // Three users with live state.
    for u in 0..3u64 {
        engine.handle_batch(&[Request::Score {
            user: u,
            history: vec![1 + u as usize, 2 + u as usize],
            k: 3,
            topk: None,
        }]);
    }
    // One batch: two fast appends, one fresh score, another append.
    let reqs = vec![
        Request::Append {
            user: 0,
            item: 5,
            k: 3,
            topk: None,
        },
        Request::Append {
            user: 1,
            item: 6,
            k: 3,
            topk: None,
        },
        Request::Score {
            user: 9,
            history: vec![4, 5],
            k: 3,
            topk: None,
        },
        Request::Append {
            user: 2,
            item: 7,
            k: 3,
            topk: None,
        },
    ];
    let responses = engine.handle_batch(&reqs);
    let cases: Vec<(u64, Vec<usize>)> = vec![
        (0, vec![1, 2, 5]),
        (1, vec![2, 3, 6]),
        (9, vec![4, 5]),
        (2, vec![3, 4, 7]),
    ];
    for (r, (user, hist)) in responses.iter().zip(&cases) {
        let (want_items, want_scores) = top_k(&m.score_left_aligned(hist), 3);
        assert_eq!(r.user, *user);
        assert_eq!(r.items, want_items, "user {user}");
        assert_eq!(r.scores, want_scores, "user {user}");
    }
}

#[test]
fn gru4rec_served_matches_offline() {
    let mut m = Gru4Rec::new(15, 6, 8, 3);
    let engine = Engine::new(m.freeze(), Mode::Full);
    let r = engine.handle_batch(&[Request::Score {
        user: 1,
        history: vec![1, 2, 3, 4],
        k: 5,
        topk: None,
    }]);
    let (want_items, want_scores) = top_k(&m.score(1, &[1, 2, 3, 4]), 5);
    assert_eq!(r[0].items, want_items);
    assert_eq!(r[0].scores, want_scores);

    // Incremental GRU state has no window cap: appends never slide.
    let m2 = Gru4Rec::new(15, 6, 8, 3);
    let engine = Engine::new(m2.freeze(), Mode::Incremental);
    let mut history = vec![1usize, 2, 3, 4];
    engine.handle_batch(&[Request::Score {
        user: 1,
        history: history.clone(),
        k: 5,
        topk: None,
    }]);
    for item in [5usize, 6, 7, 8, 9, 10, 11, 12] {
        history.push(item);
        let r = engine.handle_batch(&[Request::Append {
            user: 1,
            item,
            k: 5,
            topk: None,
        }]);
        let (want_items, want_scores) = top_k(&m2.score_unpadded(&history), 5);
        assert_eq!(r[0].items, want_items, "history {history:?}");
        assert_eq!(r[0].scores, want_scores);
    }
}

#[test]
fn batcher_coalesces_concurrent_submissions() {
    let m = model(0);
    let engine = Arc::new(Engine::new(m.freeze(), Mode::Full));
    let batcher = Arc::new(Batcher::new(
        Arc::clone(&engine),
        16,
        Duration::from_millis(5),
    ));
    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|u| {
                let b = Arc::clone(&batcher);
                s.spawn(move || {
                    b.submit(Request::Score {
                        user: u,
                        history: vec![1 + u as usize % 10, 2],
                        k: 3,
                        topk: None,
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (u, r) in responses.iter().enumerate() {
        let (want_items, want_scores) = top_k(&m.score_sequence(&[1 + u % 10, 2]), 3);
        assert_eq!(r.user, u as u64);
        assert_eq!(r.items, want_items);
        assert_eq!(r.scores, want_scores);
    }
}

#[test]
fn protocol_round_trips_scores_bitwise() {
    let resp = Response {
        user: 42,
        items: vec![3, 1, 7],
        scores: vec![1.25, -0.000123456, 3.4e-20],
    };
    let line = proto::format_response(&resp);
    let back = proto::parse_response(&line).unwrap();
    assert_eq!(back, resp);

    // Request parsing.
    match proto::parse_request(r#"{"op":"score","user":3,"history":[1,2],"k":4}"#).unwrap() {
        proto::Incoming::Req(Request::Score {
            user, history, k, ..
        }) => {
            assert_eq!((user, history, k), (3, vec![1, 2], 4));
        }
        other => panic!("unexpected parse {other:?}"),
    }
    match proto::parse_request(r#"{"op":"append","user":3,"item":9}"#).unwrap() {
        proto::Incoming::Req(Request::Append { user, item, k, .. }) => {
            assert_eq!((user, item, k), (3, 9, 10));
        }
        other => panic!("unexpected parse {other:?}"),
    }
    assert!(matches!(
        proto::parse_request(r#"{"op":"ping"}"#).unwrap(),
        proto::Incoming::Ping
    ));
    assert!(proto::parse_request("not json").is_err());
    assert!(proto::parse_request(r#"{"op":"nope"}"#).is_err());
}

#[test]
fn serve_metrics_flow_through_registry() {
    telemetry::set_enabled(true);
    let m = model(0);
    let engine = Engine::new(m.freeze(), Mode::Incremental);
    let hit0 = telemetry::metrics::counter("serve.cache.hit", false).get();
    let miss0 = telemetry::metrics::counter("serve.cache.miss", false).get();
    engine.handle_batch(&[Request::Score {
        user: 1,
        history: vec![1, 2],
        k: 3,
        topk: None,
    }]);
    engine.handle_batch(&[Request::Append {
        user: 1,
        item: 3,
        k: 3,
        topk: None,
    }]);
    assert!(telemetry::metrics::counter("serve.cache.miss", false).get() > miss0);
    assert!(telemetry::metrics::counter("serve.cache.hit", false).get() > hit0);
    assert!(telemetry::metrics::counter("serve.requests", false).get() >= 2);
}

#[test]
fn empty_history_scores_zeros() {
    let m = model(0);
    for mode in [Mode::Full, Mode::Incremental] {
        let engine = Engine::new(m.freeze(), mode);
        let r = engine.handle_batch(&[Request::Score {
            user: 1,
            history: vec![],
            k: 3,
            topk: None,
        }]);
        assert_eq!(r[0].scores, vec![0.0; 3]);
    }
}

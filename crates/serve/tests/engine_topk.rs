//! Engine-level retrieval contracts: ANN vs exact top-k, deterministic
//! cold-start ranking for empty histories, and the padding sweep (item id
//! 0 must never be recommended by any path).

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::Freeze;
use serve::{top_k, Engine, HnswConfig, HnswIndex, Mode, Request, TopK};

fn model(num_items: usize, dim: usize) -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 6,
            dim,
            layers: 1,
            ..NetConfig::for_items(num_items)
        },
        ..MetaSgclConfig::for_items(num_items)
    })
}

fn score(user: u64, history: Vec<usize>, k: usize, topk: Option<TopK>) -> Request {
    Request::Score {
        user,
        history,
        k,
        topk,
    }
}

#[test]
fn ann_requests_fall_back_to_exact_without_an_index() {
    let m = model(12, 8);
    let engine = Engine::new(m.freeze(), Mode::Full);
    let exact = engine.handle_batch(&[score(0, vec![1, 2, 3], 5, Some(TopK::Exact))]);
    let ann = engine.handle_batch(&[score(0, vec![1, 2, 3], 5, Some(TopK::Ann))]);
    assert_eq!(exact, ann);
}

#[test]
fn ann_retrieval_matches_exact_on_a_small_catalog() {
    // 12 items < default ef (64): the index degrades to an exact scan, so
    // the ANN ranking must equal the full-catalog projection's (scores
    // agree up to scalar-vs-SIMD dot-product rounding).
    let m = model(12, 8);
    let frozen = m.freeze();
    let table = frozen.item_embeddings();
    let index = HnswIndex::build(&table, 12, &HnswConfig::default());
    let engine = Engine::new(frozen, Mode::Full).with_ann(index);
    for history in [vec![1, 2, 3], vec![7], vec![4, 5, 6, 7, 8, 9, 10, 11]] {
        let exact = &engine.handle_batch(&[score(0, history.clone(), 5, None)])[0];
        let ann = &engine.handle_batch(&[score(0, history.clone(), 5, Some(TopK::Ann))])[0];
        assert_eq!(exact.items, ann.items, "history {history:?}");
        for (a, b) in exact.scores.iter().zip(&ann.scores) {
            assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
        assert!(ann.items.iter().all(|&i| i >= 1), "padding retrieved");
    }
}

#[test]
fn ann_recall_is_high_on_a_real_frozen_model() {
    let m = model(300, 16);
    let frozen = m.freeze();
    let table = frozen.item_embeddings();
    let index = HnswIndex::build(&table, 300, &HnswConfig::default());
    let engine = Engine::new(frozen, Mode::Full).with_ann(index);
    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..20u64 {
        let history: Vec<usize> = (0..5)
            .map(|i| 1 + ((u as usize * 37 + i * 13) % 300))
            .collect();
        let exact = &engine.handle_batch(&[score(u, history.clone(), 10, None)])[0];
        let ann = &engine.handle_batch(&[score(u, history, 10, Some(TopK::Ann))])[0];
        total += exact.items.len();
        hits += exact.items.iter().filter(|i| ann.items.contains(i)).count();
        assert!(ann.items.iter().all(|&i| (1..=300).contains(&i)));
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.9, "recall@10 {recall} < 0.9");
}

#[test]
fn cold_start_defaults_to_item_id_order() {
    for mode in [Mode::Full, Mode::Incremental] {
        let m = model(12, 8);
        let engine = Engine::new(m.freeze(), mode);
        let a = engine.handle_batch(&[score(1, vec![], 5, None)]);
        assert_eq!(a[0].items, vec![1, 2, 3, 4, 5], "mode {mode:?}");
        assert_eq!(a[0].scores, vec![0.0; 5]);
        // Deterministic: repeating the request changes nothing.
        let b = engine.handle_batch(&[score(1, vec![], 5, None)]);
        assert_eq!(a, b);
    }
}

#[test]
fn cold_start_uses_popularity_when_installed() {
    // Item 7 dominates, then 3; ties (1 vs 2) break towards the lower id.
    let mut counts = vec![0u64; 13];
    counts[7] = 10;
    counts[3] = 5;
    counts[1] = 2;
    counts[2] = 2;
    for mode in [Mode::Full, Mode::Incremental] {
        let m = model(12, 8);
        let engine = Engine::new(m.freeze(), mode).with_popularity(&counts);
        let r = &engine.handle_batch(&[score(0, vec![], 4, None)])[0];
        assert_eq!(r.items, vec![7, 3, 1, 2], "mode {mode:?}");
        assert!(r.scores[0] > r.scores[1] && r.scores[1] > r.scores[2]);
        assert_eq!(r.scores[2], r.scores[3]);
        assert!(!r.items.contains(&0), "padding in cold-start ranking");
        // A non-empty history immediately leaves the cold-start path.
        let warm = &engine.handle_batch(&[score(0, vec![7], 4, None)])[0];
        assert_ne!(warm.scores, r.scores);
    }
}

#[test]
fn pad_id_is_never_ranked_even_with_the_highest_score() {
    // Direct top_k sweep: index 0 carries the max score and must still be
    // excluded at every k.
    let scores = vec![99.0, 0.5, 2.5, 1.5];
    for k in 1..=4 {
        let (items, s) = top_k(&scores, k);
        assert!(!items.contains(&0), "k={k} ranked padding");
        assert_eq!(items.len(), k.min(3));
        if k >= 3 {
            assert_eq!(items, vec![2, 3, 1]);
            assert_eq!(s, vec![2.5, 1.5, 0.5]);
        }
    }
}

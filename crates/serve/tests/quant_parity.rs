//! Gated-quantisation parity: bf16 must keep top-k rankings identical to
//! f32 while cutting resident frozen-weight bytes, int8 must clear the
//! overlap gate or be refused, and the f32 passthrough must stay bitwise.

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::{Freeze, InferModule};
use serve::{quantize_gated, top_k, FrozenScorer};
use tensor::QuantMode;

/// Quick geometry: a small catalog with a realistic layer stack, large
/// enough that the item table dominates resident weight bytes.
fn model() -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 8,
            dim: 16,
            layers: 2,
            ..NetConfig::for_items(60)
        },
        decoder_layers: 1,
        ..MetaSgclConfig::for_items(60)
    })
}

fn probes() -> Vec<Vec<usize>> {
    vec![
        vec![1, 2, 3],
        vec![7, 21, 14, 3, 55],
        vec![60, 59, 58, 57, 56, 55, 54, 53, 52], // longer than max_len
        vec![10, 20, 30, 40],
        vec![5],
    ]
}

#[test]
fn bf16_keeps_topk_rankings_and_saves_bytes() {
    let m = model();
    let mut f = m.freeze();
    let f32_bytes = InferModule::weight_bytes(&f);
    let baseline: Vec<Vec<usize>> = probes()
        .iter()
        .map(|h| top_k(&f.score_full(h), 10).0)
        .collect();

    let report = quantize_gated(&mut f, QuantMode::Bf16, &probes()).expect("bf16 passes the gate");
    assert_eq!(report.probes, probes().len());
    assert!((report.min_overlap - 1.0).abs() < f64::EPSILON);
    assert!(
        report.bytes_saved() >= 0.40,
        "bf16 must save >= 40% of weight bytes, saved {:.1}%",
        report.bytes_saved() * 100.0
    );
    assert_eq!(report.f32_bytes, f32_bytes);
    assert!(InferModule::weight_bytes(&f) < f32_bytes);

    // The gate already checked this, but assert independently: the
    // served top-10 set after re-encoding matches f32 on every probe
    // (order may permute only across bf16-precision ties, which the
    // gate has already vetted).
    for (h, want) in probes().iter().zip(&baseline) {
        let got = top_k(&f.score_full(h), 10).0;
        let mut got_sorted = got.clone();
        let mut want_sorted = want.clone();
        got_sorted.sort_unstable();
        want_sorted.sort_unstable();
        assert_eq!(got_sorted, want_sorted, "history {h:?}");
    }
}

#[test]
fn f32_mode_is_a_bitwise_noop() {
    let m = model();
    let mut f = m.freeze();
    let before: Vec<Vec<f32>> = probes().iter().map(|h| f.score_full(h)).collect();
    let report = quantize_gated(&mut f, QuantMode::F32, &probes()).expect("f32 is trivial");
    assert_eq!(report.quant_bytes, report.f32_bytes);
    for (h, want) in probes().iter().zip(&before) {
        assert_eq!(&f.score_full(h), want, "f32 passthrough changed bits");
    }
}

#[test]
fn int8_report_is_honest_about_overlap() {
    let m = model();
    let mut f = m.freeze();
    match quantize_gated(&mut f, QuantMode::Int8, &probes()) {
        Ok(report) => {
            // Accepted only if every probe cleared the overlap gate.
            assert!(report.min_overlap >= 0.8, "gate passed below threshold");
            assert!(report.bytes_saved() >= 0.40);
        }
        Err(e) => {
            // An untrained model may legitimately fail the ranking gate;
            // what matters is that failure refuses to serve quantised.
            assert!(
                e.contains("int8") || e.contains("overlap") || e.contains("bytes"),
                "{e}"
            );
        }
    }
}

#[test]
fn empty_probe_set_is_refused() {
    let m = model();
    let mut f = m.freeze();
    assert!(quantize_gated(&mut f, QuantMode::Bf16, &[]).is_err());
}

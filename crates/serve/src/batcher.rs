//! Micro-batching: a single worker drains a request queue, coalescing
//! whatever arrives within a bounded wait into one [`Engine::handle_batch`]
//! call, so concurrent users share GEMM work.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use telemetry::metrics;
use tensor::bug::OrBug;

use crate::engine::{Engine, FrozenScorer, ReqObs, Request, Response};

/// Batching-layer timings and engine flags for one request, returned by
/// [`Batcher::submit_obs`] alongside the response.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobReport {
    /// Queue wait: submit → batch dispatch (includes the coalescing wait).
    pub enqueue_ns: u64,
    /// Batch assembly: first-job pickup → dispatch (same for every request
    /// in the batch).
    pub assemble_ns: u64,
    /// Engine-side flags and phase timings.
    pub obs: ReqObs,
}

struct Job {
    req: Request,
    sampled: bool,
    submitted: Instant,
    reply: mpsc::SyncSender<(Response, JobReport)>,
}

/// Hands requests from any number of threads to a single batching worker.
///
/// The worker blocks for the first request, then keeps collecting until
/// either `batch_max` requests are queued or `batch_wait` has elapsed —
/// the standard latency/throughput trade.
pub struct Batcher<M: FrozenScorer> {
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: FrozenScorer> Batcher<M> {
    /// Starts the worker thread.
    pub fn new(engine: Arc<Engine<M>>, batch_max: usize, batch_wait: Duration) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let worker = std::thread::spawn(move || {
            while let Ok(first) = rx.recv() {
                let received = Instant::now();
                let mut jobs = vec![first];
                let deadline = received + batch_wait;
                while jobs.len() < batch_max.max(1) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => jobs.push(job),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // The deadline bounds how long we *wait*, not how much we
                // take: requests already queued (e.g. while the previous
                // batch was scoring, or with `batch_wait = 0`) coalesce
                // for free. Without this drain they would each dispatch
                // as a batch of one — head-of-line serialisation at the
                // flush boundary.
                while jobs.len() < batch_max.max(1) {
                    match rx.try_recv() {
                        Ok(job) => jobs.push(job),
                        Err(_) => break,
                    }
                }
                // Queueing delay the coalescing wait added on top of the
                // scoring work itself: first-job receipt → batch dispatch.
                // Wall-clock, so non-deterministic by nature.
                let dispatch = Instant::now();
                let assemble_ns = (dispatch - received).as_nanos() as u64;
                metrics::histogram("serve.batch.wait_us", false)
                    .record((dispatch - received).as_micros() as u64);
                let reqs: Vec<Request> = jobs.iter().map(|j| j.req.clone()).collect();
                // Phase timing costs clock reads inside the engine; only
                // pay for it when a sampled trace rides in this batch.
                let timed = jobs.iter().any(|j| j.sampled);
                let (responses, obs) = engine.handle_batch_obs(&reqs, timed);
                for ((job, resp), obs) in jobs.into_iter().zip(responses).zip(obs) {
                    let report = JobReport {
                        enqueue_ns: dispatch.saturating_duration_since(job.submitted).as_nanos()
                            as u64,
                        assemble_ns,
                        obs,
                    };
                    // A caller that gave up is not an error for the batch.
                    let _ = job.reply.send((resp, report));
                }
            }
        });
        Batcher {
            tx: Some(tx),
            worker: Some(worker),
            _marker: std::marker::PhantomData,
        }
    }

    /// Submits one request and blocks until its response is scored
    /// (possibly alongside other users' requests in the same batch).
    pub fn submit(&self, req: Request) -> Response {
        self.submit_obs(req, false).0
    }

    /// [`Batcher::submit`] plus the per-request [`JobReport`]. `sampled`
    /// marks the request as carrying a trace, which turns on engine phase
    /// timing for its batch.
    pub fn submit_obs(&self, req: Request, sampled: bool) -> (Response, JobReport) {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .as_ref()
            .or_bug("batcher running")
            .send(Job {
                req,
                sampled,
                submitted: Instant::now(),
                reply: rtx,
            })
            .or_bug("batch worker alive");
        rrx.recv().or_bug("batch worker replies before exiting")
    }
}

impl<M: FrozenScorer> Drop for Batcher<M> {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect the queue so the worker exits
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

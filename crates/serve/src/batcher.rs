//! Micro-batching: a single worker drains a request queue, coalescing
//! whatever arrives within a bounded wait into one [`Engine::handle_batch`]
//! call, so concurrent users share GEMM work.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use telemetry::metrics;
use tensor::bug::OrBug;

use crate::engine::{Engine, FrozenScorer, Request, Response};

struct Job {
    req: Request,
    reply: mpsc::SyncSender<Response>,
}

/// Hands requests from any number of threads to a single batching worker.
///
/// The worker blocks for the first request, then keeps collecting until
/// either `batch_max` requests are queued or `batch_wait` has elapsed —
/// the standard latency/throughput trade.
pub struct Batcher<M: FrozenScorer> {
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: FrozenScorer> Batcher<M> {
    /// Starts the worker thread.
    pub fn new(engine: Arc<Engine<M>>, batch_max: usize, batch_wait: Duration) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let worker = std::thread::spawn(move || {
            while let Ok(first) = rx.recv() {
                let received = Instant::now();
                let mut jobs = vec![first];
                let deadline = received + batch_wait;
                while jobs.len() < batch_max.max(1) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => jobs.push(job),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // The deadline bounds how long we *wait*, not how much we
                // take: requests already queued (e.g. while the previous
                // batch was scoring, or with `batch_wait = 0`) coalesce
                // for free. Without this drain they would each dispatch
                // as a batch of one — head-of-line serialisation at the
                // flush boundary.
                while jobs.len() < batch_max.max(1) {
                    match rx.try_recv() {
                        Ok(job) => jobs.push(job),
                        Err(_) => break,
                    }
                }
                // Queueing delay the coalescing wait added on top of the
                // scoring work itself: first-job receipt → batch dispatch.
                // Wall-clock, so non-deterministic by nature.
                metrics::histogram("serve.batch.wait_us", false)
                    .record(received.elapsed().as_micros() as u64);
                let reqs: Vec<Request> = jobs.iter().map(|j| j.req.clone()).collect();
                let responses = engine.handle_batch(&reqs);
                for (job, resp) in jobs.into_iter().zip(responses) {
                    // A caller that gave up is not an error for the batch.
                    let _ = job.reply.send(resp);
                }
            }
        });
        Batcher {
            tx: Some(tx),
            worker: Some(worker),
            _marker: std::marker::PhantomData,
        }
    }

    /// Submits one request and blocks until its response is scored
    /// (possibly alongside other users' requests in the same batch).
    pub fn submit(&self, req: Request) -> Response {
        let (rtx, rrx) = mpsc::sync_channel(1);
        self.tx
            .as_ref()
            .or_bug("batcher running")
            .send(Job { req, reply: rtx })
            .or_bug("batch worker alive");
        rrx.recv().or_bug("batch worker replies before exiting")
    }
}

impl<M: FrozenScorer> Drop for Batcher<M> {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect the queue so the worker exits
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

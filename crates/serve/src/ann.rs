//! From-scratch HNSW approximate-nearest-neighbour index over the frozen
//! item-embedding table, for sub-linear top-k retrieval at serving time.
//!
//! The exact serving path scores a user's hidden state against every
//! catalog row (`h · Mᵀ`, an O(|items| · d) GEMM per request). Because the
//! softmax table is *tied*, the served ranking is exactly "maximum inner
//! product over item embeddings" — which an HNSW graph answers in
//! O(ef · d · log n) hops instead.
//!
//! Design constraints, in order:
//!
//! * **No dependencies.** The graph, the heaps, and the level sampler are
//!   all local. Level draws use an inline splitmix64 stream keyed by
//!   `(seed, node)`, so the build is a pure function of the table bytes
//!   and the [`HnswConfig`] — bit-identical across runs and thread counts.
//! * **Padding can never be retrieved.** Index row 0 (the padding item) is
//!   excluded at construction: node `i` holds item id `i + 1`.
//! * **Graceful degradation to exact.** A search with `ef >= len()` (or
//!   `k >= len()`) answers by brute-force scan, so `ef = ∞` is *defined*
//!   to return the exact top-k — the property tests pin this.
//! * **Persistence.** [`save`](HnswIndex::save)/[`load`](HnswIndex::load)
//!   write a versioned sidecar next to the MSGC2 checkpoint; the file
//!   embeds an FNV-64 hash of the embedding bytes, so a stale index
//!   (retrained or re-quantised weights) is detected and rebuilt rather
//!   than silently served.
//!
//! Similarity is the raw inner product (no normalisation), matching the
//! tied-softmax scores. ANN scores are computed as scalar dot products and
//! may differ from the SIMD GEMM of the exact path in final bits; the ANN
//! path trades the bitwise contract for sub-linear retrieval, which is why
//! it is opt-in per request and gated by a measured recall curve (BENCH_9)
//! rather than the bitwise parity gate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io::{Read, Write};
use std::path::Path;

use recdata::ItemId;
use tensor::Tensor;

/// Sidecar file magic + format version (bumped on any layout change).
const MAGIC: &[u8; 8] = b"MSGHNSW1";

/// Hard cap on sampled levels (2^24 nodes would be needed to exceed it).
const MAX_LEVEL: usize = 24;

/// Build/search parameters for [`HnswIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct HnswConfig {
    /// Max neighbours per node on levels above 0 (level 0 keeps `2m`).
    pub m: usize,
    /// Beam width while inserting (recall/build-time trade).
    pub ef_construction: usize,
    /// Default beam width at query time when the caller passes `ef = 0`.
    pub ef_search: usize,
    /// Seed for the deterministic level sampler.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 42,
        }
    }
}

/// splitmix64: the tiny deterministic generator behind level sampling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64 over the embedding bytes (stale-sidecar detection).
fn fnv64(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// A (similarity, node) pair with a total deterministic order: higher
/// similarity first, ties broken towards the lower node id.
#[derive(Clone, Copy, Debug)]
struct Cand {
    sim: f32,
    node: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap pops the highest similarity; among equals, the lowest id.
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The index: flat vector storage plus the layered neighbour graph.
pub struct HnswIndex {
    cfg: HnswConfig,
    dim: usize,
    /// Node count (= catalog size; node `i` is item id `i + 1`).
    n: usize,
    /// Row-major `n × dim` embedding rows (padding row 0 excluded).
    vecs: Vec<f32>,
    /// Top level of each node.
    levels: Vec<u8>,
    /// `links[node][level]` = neighbour node ids.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
    table_hash: u64,
}

impl HnswIndex {
    /// Builds the index over item rows `1..=num_items` of the tied
    /// embedding table (`[num_items + 1, d]`, row 0 = padding). Nodes are
    /// inserted in item-id order with seeded level draws, so the graph is
    /// a deterministic function of `(table, cfg)`.
    pub fn build(table: &Tensor, num_items: usize, cfg: &HnswConfig) -> HnswIndex {
        let dims = table.dims();
        assert_eq!(dims.len(), 2, "item table must be rank 2");
        assert!(dims[0] > num_items, "table must hold num_items + 1 rows");
        let dim = dims[1];
        let vecs: Vec<f32> = table.data()[dim..(num_items + 1) * dim].to_vec();
        let table_hash = fnv64(&vecs);
        let mut index = HnswIndex {
            cfg: cfg.clone(),
            dim,
            n: num_items,
            vecs,
            levels: Vec::with_capacity(num_items),
            links: Vec::with_capacity(num_items),
            entry: 0,
            max_level: 0,
            table_hash,
        };
        let ml = 1.0 / (cfg.m.max(2) as f64).ln();
        for node in 0..num_items as u32 {
            let level = index.draw_level(node, ml);
            index.levels.push(level as u8);
            index.links.push(vec![Vec::new(); level + 1]);
            index.insert(node);
        }
        index
    }

    /// Deterministic geometric level draw for one node.
    fn draw_level(&self, node: u32, ml: f64) -> usize {
        let bits = splitmix64(self.cfg.seed ^ (u64::from(node) << 1) ^ 0xA5A5_5A5A);
        // (0, 1) exclusive on both ends: ln never sees 0.
        let u = ((bits >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    fn vec_of(&self, node: u32) -> &[f32] {
        let i = node as usize * self.dim;
        &self.vecs[i..i + self.dim]
    }

    fn sim(&self, a: &[f32], node: u32) -> f32 {
        let b = self.vec_of(node);
        let mut s = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        s
    }

    /// Max neighbours a node keeps at `level`.
    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.cfg.m * 2
        } else {
            self.cfg.m
        }
    }

    /// Greedy descent at one level: follow the best neighbour until no
    /// neighbour improves on the current node.
    fn greedy_step(&self, q: &[f32], mut ep: u32, level: usize) -> u32 {
        let mut best = self.sim(q, ep);
        loop {
            let mut improved = false;
            for &nb in &self.links[ep as usize][level] {
                let s = self.sim(q, nb);
                if s > best || (s == best && nb < ep) {
                    best = s;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search at one level: returns up to `ef` candidates, best first.
    fn search_layer(&self, q: &[f32], ep: u32, ef: usize, level: usize) -> Vec<Cand> {
        let mut visited = vec![false; self.n];
        visited[ep as usize] = true;
        let start = Cand {
            sim: self.sim(q, ep),
            node: ep,
        };
        let mut frontier = BinaryHeap::new(); // max-heap: most promising first
        frontier.push(start);
        let mut results: BinaryHeap<std::cmp::Reverse<Cand>> = BinaryHeap::new();
        results.push(std::cmp::Reverse(start));
        while let Some(cand) = frontier.pop() {
            let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
            if results.len() >= ef && cand.sim < worst {
                break;
            }
            for &nb in &self.links[cand.node as usize][level] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let s = self.sim(q, nb);
                let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
                if results.len() < ef || s > worst {
                    let c = Cand { sim: s, node: nb };
                    frontier.push(c);
                    results.push(std::cmp::Reverse(c));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Neighbour selection (HNSW Algorithm 4 with pruned-candidate
    /// backfill): walk candidates best-first, keep one only when it is
    /// closer to the query than to every neighbour already kept —
    /// spreading links across directions instead of clustering them.
    fn select_neighbors(&self, cands: &[Cand], m: usize) -> Vec<u32> {
        let mut selected: Vec<Cand> = Vec::with_capacity(m);
        let mut pruned: Vec<Cand> = Vec::new();
        for &c in cands {
            if selected.len() >= m {
                break;
            }
            let cv = self.vec_of(c.node).to_vec();
            let dominated = selected.iter().any(|s| self.sim(&cv, s.node) > c.sim);
            if dominated {
                pruned.push(c);
            } else {
                selected.push(c);
            }
        }
        for &p in &pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(p);
        }
        selected.into_iter().map(|c| c.node).collect()
    }

    /// Inserts `node` (levels/links rows already sized for it).
    fn insert(&mut self, node: u32) {
        if node == 0 {
            self.entry = 0;
            self.max_level = self.levels[0] as usize;
            return;
        }
        let level = self.levels[node as usize] as usize;
        let q = self.vec_of(node).to_vec();
        let mut ep = self.entry;
        for l in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_step(&q, ep, l);
        }
        for l in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(&q, ep, self.cfg.ef_construction, l);
            let neighbors = self.select_neighbors(&cands, self.max_links(l));
            for &nb in &neighbors {
                self.links[node as usize][l].push(nb);
                self.links[nb as usize][l].push(node);
                let cap = self.max_links(l);
                if self.links[nb as usize][l].len() > cap {
                    self.shrink(nb, l, cap);
                }
            }
            if let Some(best) = cands.first() {
                ep = best.node;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    /// Re-selects a node's neighbour list after it overflowed `cap`.
    fn shrink(&mut self, node: u32, level: usize, cap: usize) {
        let v = self.vec_of(node).to_vec();
        let mut cands: Vec<Cand> = self.links[node as usize][level]
            .iter()
            .map(|&nb| Cand {
                sim: self.sim(&v, nb),
                node: nb,
            })
            .collect();
        cands.sort_by(|a, b| b.cmp(a));
        self.links[node as usize][level] = self.select_neighbors(&cands, cap);
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configured default query beam width.
    pub fn ef_search(&self) -> usize {
        self.cfg.ef_search
    }

    /// Exact brute-force top-k (the `ef = ∞` semantics).
    fn exact_top_k(&self, query: &[f32], k: usize) -> Vec<(ItemId, f32)> {
        let mut all: Vec<Cand> = (0..self.n as u32)
            .map(|node| Cand {
                sim: self.sim(query, node),
                node,
            })
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all.into_iter()
            .map(|c| (c.node as usize + 1, c.sim))
            .collect()
    }

    /// Top-k items by inner product with `query`, best first, as
    /// `(item_id, score)` pairs. `ef = 0` uses the configured default;
    /// `ef >= len()` (or `k >= len()`) degrades to an exact scan, so an
    /// unbounded beam returns the exact answer by construction. Item id 0
    /// (padding) is never returned.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<(ItemId, f32)> {
        if self.n == 0 || k == 0 {
            return Vec::new();
        }
        let ef = if ef == 0 { self.cfg.ef_search } else { ef };
        let ef = ef.max(k);
        if ef >= self.n || k >= self.n {
            return self.exact_top_k(query, k);
        }
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_step(query, ep, l);
        }
        let mut cands = self.search_layer(query, ep, ef, 0);
        cands.truncate(k);
        cands
            .into_iter()
            .map(|c| (c.node as usize + 1, c.sim))
            .collect()
    }

    // -- persistence ---------------------------------------------------------

    /// Serialises the graph (not the vectors — those come from the
    /// checkpoint) to `path`, with a format version and an embedding-bytes
    /// hash for stale-sidecar detection.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(64 + self.n * (self.cfg.m + 2) * 4);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&self.cfg.seed.to_le_bytes());
        buf.extend_from_slice(&(self.cfg.m as u32).to_le_bytes());
        buf.extend_from_slice(&(self.cfg.ef_construction as u32).to_le_bytes());
        buf.extend_from_slice(&(self.dim as u32).to_le_bytes());
        buf.extend_from_slice(&(self.n as u32).to_le_bytes());
        buf.extend_from_slice(&self.entry.to_le_bytes());
        buf.extend_from_slice(&(self.max_level as u32).to_le_bytes());
        buf.extend_from_slice(&self.table_hash.to_le_bytes());
        for node in 0..self.n {
            buf.push(self.levels[node]);
            for level in &self.links[node] {
                buf.extend_from_slice(&(level.len() as u32).to_le_bytes());
                for nb in level {
                    buf.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        let tmp = path.with_extension("hnsw.tmp");
        std::fs::File::create(&tmp)?.write_all(&buf)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a sidecar written by [`save`](HnswIndex::save), reattaching
    /// the embedding rows from `table`. Returns `None` (caller rebuilds)
    /// when the file is missing, from another format version, or was built
    /// from different embedding bytes or build parameters.
    pub fn load(
        path: &Path,
        table: &Tensor,
        num_items: usize,
        cfg: &HnswConfig,
    ) -> Option<HnswIndex> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .ok()?
            .read_to_end(&mut bytes)
            .ok()?;
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let u32_at = |at: &mut usize| -> Option<u32> {
            take(at, 4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        };
        let u64_at = |at: &mut usize| -> Option<u64> {
            take(at, 8)
                .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
        };
        if take(&mut at, 8)? != MAGIC {
            return None;
        }
        let seed = u64_at(&mut at)?;
        let m = u32_at(&mut at)? as usize;
        let ef_construction = u32_at(&mut at)? as usize;
        let dim = u32_at(&mut at)? as usize;
        let n = u32_at(&mut at)? as usize;
        let entry = u32_at(&mut at)?;
        let max_level = u32_at(&mut at)? as usize;
        let table_hash = u64_at(&mut at)?;
        let dims = table.dims();
        if dims.len() != 2 || dims[0] <= num_items || dims[1] != dim || n != num_items {
            return None;
        }
        if seed != cfg.seed || m != cfg.m || ef_construction != cfg.ef_construction {
            return None;
        }
        let vecs: Vec<f32> = table.data()[dim..(num_items + 1) * dim].to_vec();
        if fnv64(&vecs) != table_hash {
            return None;
        }
        let mut levels = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let level = *take(&mut at, 1)?.first()? as usize;
            levels.push(level as u8);
            let mut per_node = Vec::with_capacity(level + 1);
            for _ in 0..=level {
                let cnt = u32_at(&mut at)? as usize;
                let mut nbs = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let nb = u32_at(&mut at)?;
                    if nb as usize >= n {
                        return None;
                    }
                    nbs.push(nb);
                }
                per_node.push(nbs);
            }
            links.push(per_node);
        }
        if at != bytes.len() || (n > 0 && entry as usize >= n) {
            return None;
        }
        Some(HnswIndex {
            cfg: HnswConfig {
                m,
                ef_construction,
                ef_search: cfg.ef_search,
                seed,
            },
            dim,
            n,
            vecs,
            levels,
            links,
            entry,
            max_level,
            table_hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random table: vocab rows (row 0 = padding).
    fn toy_table(num_items: usize, dim: usize, seed: u64) -> Tensor {
        let mut data = vec![0.0f32; (num_items + 1) * dim];
        for (i, v) in data.iter_mut().enumerate().skip(dim) {
            let bits = splitmix64(seed ^ i as u64);
            *v = ((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
        Tensor::from_vec(data, vec![num_items + 1, dim])
    }

    #[test]
    fn unbounded_ef_is_exact_and_never_pads() {
        let table = toy_table(60, 8, 7);
        let idx = HnswIndex::build(&table, 60, &HnswConfig::default());
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).sin()).collect();
        let got = idx.search(&q, 10, usize::MAX);
        let want = idx.exact_top_k(&q, 10);
        assert_eq!(got, want);
        assert!(got.iter().all(|&(item, _)| (1..=60).contains(&item)));
    }

    #[test]
    fn build_is_deterministic() {
        let table = toy_table(40, 4, 3);
        let a = HnswIndex::build(&table, 40, &HnswConfig::default());
        let b = HnswIndex::build(&table, 40, &HnswConfig::default());
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
    }

    #[test]
    fn default_ef_recall_is_high_on_small_catalog() {
        let table = toy_table(200, 16, 11);
        let idx = HnswIndex::build(&table, 200, &HnswConfig::default());
        let mut hits = 0usize;
        let mut total = 0usize;
        for s in 0..20u64 {
            let q: Vec<f32> = (0..16)
                .map(|i| ((splitmix64(s * 31 + i) >> 40) as f32 / (1u64 << 24) as f32) - 0.5)
                .collect();
            let approx = idx.search(&q, 10, 0);
            let exact = idx.exact_top_k(&q, 10);
            total += exact.len();
            hits += exact
                .iter()
                .filter(|(item, _)| approx.iter().any(|(a, _)| a == item))
                .count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.95, "recall@10 {recall} < 0.95");
    }

    #[test]
    fn sidecar_roundtrip_and_stale_detection() {
        let dir = std::env::temp_dir().join("msgc_ann_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.hnsw");
        let table = toy_table(50, 6, 5);
        let cfg = HnswConfig::default();
        let idx = HnswIndex::build(&table, 50, &cfg);
        idx.save(&path).expect("save sidecar");
        let loaded = HnswIndex::load(&path, &table, 50, &cfg).expect("fresh sidecar loads");
        assert_eq!(loaded.links, idx.links);
        assert_eq!(loaded.entry, idx.entry);
        let q: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
        assert_eq!(loaded.search(&q, 5, 0), idx.search(&q, 5, 0));
        // Different table bytes → stale, caller must rebuild.
        let other = toy_table(50, 6, 6);
        assert!(HnswIndex::load(&path, &other, 50, &cfg).is_none());
        // Different build params → stale.
        let other_cfg = HnswConfig {
            m: 8,
            ..HnswConfig::default()
        };
        assert!(HnswIndex::load(&path, &table, 50, &other_cfg).is_none());
        std::fs::remove_file(&path).ok();
    }
}
